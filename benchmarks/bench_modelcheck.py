"""M-memo — snap-safety model checker: memoized vs direct enumeration.

The exhaustive snap-safety check enumerates every initiation
configuration and every daemon selection; PR 2 added a shared
:class:`~repro.verification.model_check.ModelCheckMemo` engine whose
local-view memo caches guard/statement/join evaluation per
``(node, 1-hop view)`` across the whole sweep (see docs/API.md
«Model-checker memoization»).

This bench runs ``check_snap_safety`` twice per case — memo off, memo
on — on the standard small networks, asserts the two runs produce
bit-identical verdicts and coverage counters, and reports wall-clock
plus states/second for both.  The speedup is locality-dependent: sparse
topologies (lines) are the headline cases, ``complete-3`` is the dense
reference where 1-hop views span the whole configuration and the memo
approaches parity.  Results go to ``BENCH_modelcheck.json`` at the
repository root::

    pytest benchmarks/bench_modelcheck.py --benchmark-only -q
"""

from __future__ import annotations

import time
import tracemalloc

import pytest

from repro.graphs import complete, line
from repro.verification import ModelCheckResult, check_snap_safety

from benchmarks.common import JSON_REPORTS, TableCollector

TABLE = TableCollector(
    "M-memo — snap-safety checker: wall-clock, memo vs direct",
    columns=[
        "case", "engine", "configs", "states", "seconds", "states/sec",
    ],
)

#: ``case -> (network factory, max_configurations cap)``.  ``None`` means
#: the full initiation-configuration sweep.
CASES: dict[str, tuple] = {
    "line-3-full": (lambda: line(3), None),
    "line-5-cap300": (lambda: line(5), 300),
    "line-4-cap1200": (lambda: line(4), 1200),
    "complete-3-full": (lambda: complete(3), None),
}

#: Per-run timing repeats; best-of is reported to damp scheduler noise.
REPEATS = 3

#: ``(case, engine) -> {"seconds", "states_per_sec", result fields...}``
RESULTS: dict[tuple[str, str], dict] = {}


def _counterexample_key(result: ModelCheckResult) -> list[tuple]:
    return [
        (c.initial, c.schedule, c.message) for c in result.counterexamples
    ]


def _measure(case: str, memo: bool) -> dict:
    build, cap = CASES[case]
    best: ModelCheckResult | None = None
    seconds = float("inf")
    for _ in range(REPEATS):
        net = build()
        start = time.perf_counter()
        result = check_snap_safety(
            net, max_configurations=cap, memo=memo
        )
        elapsed = time.perf_counter() - start
        if elapsed < seconds:
            seconds = elapsed
            best = result
    assert best is not None
    return {
        "seconds": seconds,
        "states_per_sec": (
            best.states_explored / seconds if seconds > 0 else 0.0
        ),
        "result": best,
    }


def _memory_probe(case: str) -> int:
    """Peak allocation of one memoized run (outside the timing loop —
    tracemalloc's tracking overhead would skew the clock)."""
    build, cap = CASES[case]
    net = build()
    tracemalloc.start()
    try:
        check_snap_safety(net, max_configurations=cap, memo=True)
        _, peak_bytes = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak_bytes


@pytest.mark.parametrize("case", list(CASES))
def test_modelcheck_memo_speedup(case: str, benchmark) -> None:
    direct = _measure(case, memo=False)
    memoized = benchmark.pedantic(
        lambda: _measure(case, memo=True), rounds=1, iterations=1
    )
    peak_bytes = _memory_probe(case)

    on: ModelCheckResult = memoized["result"]
    off: ModelCheckResult = direct["result"]

    # Bit-identical semantics: the memo may only change the clock.
    assert on.ok == off.ok
    assert on.complete == off.complete
    assert on.truncation == off.truncation
    assert on.configurations_checked == off.configurations_checked
    assert on.states_explored == off.states_explored
    assert on.transitions_explored == off.transitions_explored
    assert _counterexample_key(on) == _counterexample_key(off)
    assert on.ok  # the unablated protocol is snap-safe

    # Satellite 2: schedule reconstruction keeps only compact
    # (parent id, step) pairs — bounded by the states actually explored.
    assert on.stats is not None
    assert on.stats.peak_parent_entries <= on.states_explored + 1
    # The whole memoized sweep (memo tables included) stays small.
    assert peak_bytes < 256 * 1024 * 1024

    for engine, m in (("direct", direct), ("memo", memoized)):
        result: ModelCheckResult = m["result"]
        RESULTS[(case, engine)] = {
            "seconds": m["seconds"],
            "states_per_sec": m["states_per_sec"],
            "ok": result.ok,
            "complete": result.complete,
            "configurations_checked": result.configurations_checked,
            "states_explored": result.states_explored,
            "transitions_explored": result.transitions_explored,
            "view_hit_rate": (
                result.stats.view_hit_rate if engine == "memo" else None
            ),
            "interning_ratio": (
                result.stats.interning_ratio if engine == "memo" else None
            ),
        }
        TABLE.add(
            {
                "case": case,
                "engine": engine,
                "configs": result.configurations_checked,
                "states": result.states_explored,
                "seconds": round(m["seconds"], 4),
                "states/sec": round(m["states_per_sec"]),
            }
        )

    # Loose in-bench floor (CI-noise tolerant); the recorded baselines
    # and benchmarks/check_regression.py guard the real ≥2× headline.
    speedup = direct["seconds"] / memoized["seconds"]
    assert speedup > 1.0, f"{case}: memo slower than direct ({speedup:.2f}x)"


def _build_report() -> dict | None:
    if not RESULTS:
        return None
    cases = [
        {"case": case, "engine": engine, **m}
        for (case, engine), m in sorted(RESULTS.items())
    ]
    speedups = {}
    for case, engine in RESULTS:
        if engine != "memo":
            continue
        direct = RESULTS.get((case, "direct"))
        if direct is None or direct["seconds"] == 0:
            continue
        speedups[case] = round(
            direct["seconds"] / RESULTS[(case, "memo")]["seconds"], 2
        )
    return {
        "benchmark": "snap-safety model checker (memo vs direct)",
        "workload": (
            f"check_snap_safety, best of {REPEATS} runs per engine, "
            "bit-identical results asserted"
        ),
        "cases": cases,
        "speedup_memo_over_direct": speedups,
    }


JSON_REPORTS.append(("BENCH_modelcheck.json", _build_report))
