"""E2/E3/E4 — Property 3, Theorem 1, Theorem 3: error-correction bounds.

Paper claims, starting from **any** configuration:

* ``GoodCount`` holds everywhere forever after ≤ ``L_max + 1`` rounds
  (Property 3);
* every processor is normal forever after ≤ ``3·L_max + 3`` rounds
  (Theorem 1);
* the GoodLegalTree exists after ≤ ``8·L_max + 7`` rounds (Theorem 3).

The bench samples adversarial initial configurations from every fault
model, under synchronous and asynchronous daemons, and reports the
*worst* measured convergence rounds per (topology, fault mode) against
the bounds.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import measure_stabilization
from repro.analysis.faults import FAULT_MODES
from repro.graphs import line, lollipop, random_connected, ring
from repro.runtime.daemons import DistributedRandomDaemon

from benchmarks.common import TableCollector

TABLE = TableCollector(
    "E2/E3/E4 — stabilization rounds vs bounds "
    "(worst over seeds; L+1 / 3L+3 / 8L+7)",
    columns=[
        "topology",
        "fault mode",
        "daemon",
        "GoodCount",
        "bound L+1",
        "Normal",
        "bound 3L+3",
        "GLT",
        "bound 8L+7",
        "within",
    ],
)

NETWORKS = [line(10), ring(10), lollipop(5, 5), random_connected(10, 0.2, seed=9)]
SEEDS = range(4)


@pytest.mark.parametrize("net", NETWORKS, ids=lambda n: n.name)
@pytest.mark.parametrize("mode", FAULT_MODES)
@pytest.mark.parametrize(
    "daemon_name", ["synchronous", "async-0.5"], ids=str
)
def test_stabilization_within_bounds(net, mode, daemon_name, benchmark) -> None:
    def run_all():
        results = []
        for seed in SEEDS:
            daemon = (
                None
                if daemon_name == "synchronous"
                else DistributedRandomDaemon(0.5)
            )
            results.append(
                measure_stabilization(
                    net, fault_mode=mode, seed=seed, daemon=daemon
                )
            )
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    worst_gc = max(r.rounds_to_good_count for r in results)
    worst_normal = max(r.rounds_to_normal for r in results)
    worst_glt = max(r.rounds_to_good_configuration for r in results)
    sample = results[0]
    within = (
        worst_gc <= sample.good_count_bound
        and worst_normal <= sample.normalization_bound
        and worst_glt <= sample.glt_bound
    )
    TABLE.add(
        {
            "topology": net.name,
            "fault mode": mode,
            "daemon": daemon_name,
            "GoodCount": worst_gc,
            "bound L+1": sample.good_count_bound,
            "Normal": worst_normal,
            "bound 3L+3": sample.normalization_bound,
            "GLT": worst_glt,
            "bound 8L+7": sample.glt_bound,
            "within": "yes" if within else "NO",
        }
    )
    assert within


SEARCH_TABLE = TableCollector(
    "E2/E3/E4 (search) — worst executions found by adversarial search",
    columns=[
        "topology",
        "objective",
        "worst rounds",
        "bound",
        "hardness",
        "recipe (fault / daemon)",
    ],
)


@pytest.mark.parametrize("net", [line(10), lollipop(5, 5)], ids=lambda n: n.name)
@pytest.mark.parametrize("objective", ["good_count", "normal", "glt"])
def test_adversarial_search_stays_within_bounds(net, objective, benchmark) -> None:
    from repro.analysis.search import search_worst_stabilization

    worst = benchmark.pedantic(
        lambda: search_worst_stabilization(
            net, objective=objective, attempts=30, seed=7
        ),
        rounds=1,
        iterations=1,
    )
    SEARCH_TABLE.add(
        {
            "topology": net.name,
            "objective": objective,
            "worst rounds": worst.value,
            "bound": worst.bound,
            "hardness": round(worst.hardness, 2),
            "recipe (fault / daemon)": f"{worst.fault_mode} / {worst.daemon}",
        }
    )
    assert worst.within_bound
