"""E10 — ablations: each design choice DESIGN.md calls out is load-bearing.

* Removing ``Leaf(p)`` from ``Broadcast(p)`` → the model checker finds a
  PIF violation (a stale child's count completes the root's total).
* Removing the corrections → garbage configurations never converge (the
  system deadlocks or stays abnormal forever).
* Removing ``¬Fok_q`` from ``Pre_Potential`` → late joiners can attach
  below frozen subtrees; randomized search looks for spec violations or
  non-termination (its effect needs a root-initiated wave racing stale
  Fok'd garbage, so this one is probed, not proven, here).

The full (non-ablated) protocol passes the identical checks — the
control rows.
"""

from __future__ import annotations

from random import Random

import pytest

from repro.core.monitor import PifCycleMonitor
from repro.core.pif import SnapPif
from repro.graphs import line, random_connected
from repro.runtime.daemons import DistributedRandomDaemon
from repro.runtime.simulator import Simulator
from repro.verification import check_snap_safety

from benchmarks.common import TableCollector

TABLE = TableCollector(
    "E10 — ablations (control = full protocol on the same check)",
    columns=["check", "variant", "result", "detail"],
)


def test_leaf_guard_ablation_breaks_snap(benchmark) -> None:
    net = line(3)

    def run():
        ablated = check_snap_safety(
            net,
            protocol=SnapPif.for_network(net, leaf_guard=False),
            stop_at_first=True,
        )
        control = check_snap_safety(net)
        return ablated, control

    ablated, control = benchmark.pedantic(run, rounds=1, iterations=1)
    TABLE.add(
        {
            "check": "exhaustive snap safety (line-3)",
            "variant": "no Leaf guard",
            "result": "VIOLATED" if not ablated.ok else "ok",
            "detail": (
                ablated.counterexamples[0].message
                if ablated.counterexamples
                else ""
            ),
        }
    )
    TABLE.add(
        {
            "check": "exhaustive snap safety (line-3)",
            "variant": "full protocol",
            "result": "ok" if control.ok else "VIOLATED",
            "detail": f"{control.configurations_checked} configurations",
        }
    )
    assert not ablated.ok, "leaf-guard ablation should break snap safety"
    assert control.ok


def test_corrections_ablation_breaks_convergence(benchmark) -> None:
    net = random_connected(8, 0.25, seed=5)

    def stuck_fraction(corrections: bool) -> int:
        protocol = SnapPif.for_network(net, corrections=corrections)
        monitor = PifCycleMonitor(protocol, net)
        stuck = 0
        for seed in range(12):
            monitor = PifCycleMonitor(protocol, net)
            sim = Simulator(
                protocol,
                net,
                DistributedRandomDaemon(0.6),
                configuration=protocol.random_configuration(net, Random(seed)),
                seed=seed,
                monitors=[monitor],
            )
            sim.run(
                until=lambda _c: len(monitor.completed_cycles) >= 1,
                max_steps=20_000,
            )
            if not monitor.completed_cycles:
                stuck += 1
        return stuck

    def run():
        return stuck_fraction(False), stuck_fraction(True)

    stuck_ablated, stuck_control = benchmark.pedantic(run, rounds=1, iterations=1)
    TABLE.add(
        {
            "check": "wave completes from random garbage (12 seeds)",
            "variant": "no corrections",
            "result": f"{stuck_ablated}/12 stuck",
            "detail": "garbage is never cleaned without corrections",
        }
    )
    TABLE.add(
        {
            "check": "wave completes from random garbage (12 seeds)",
            "variant": "full protocol",
            "result": f"{stuck_control}/12 stuck",
            "detail": "",
        }
    )
    assert stuck_ablated > 0
    assert stuck_control == 0


def test_fok_join_guard_ablation_probe(benchmark) -> None:
    """Probe the ¬Fok_q joining guard: the ablated protocol must at
    minimum keep failing the *other* safety net (the checker or the
    randomized monitor); record whether a violation was observed."""
    net = line(3)

    def run():
        return check_snap_safety(
            net,
            protocol=SnapPif.for_network(net, fok_join_guard=False),
            stop_at_first=True,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    TABLE.add(
        {
            "check": "exhaustive snap safety (line-3)",
            "variant": "no ¬Fok_q join guard",
            "result": "VIOLATED" if not result.ok else "ok (guard not load-bearing at n=3)",
            "detail": (
                result.counterexamples[0].message
                if result.counterexamples
                else f"{result.configurations_checked} configurations"
            ),
        }
    )
    # Document the outcome either way; the assertion is only that the
    # checker ran to completion.
    assert result.complete or result.counterexamples
