"""C-service — sustained wave-service throughput under concurrent clients.

Runs the asyncio wave service (:mod:`repro.service`) on stars of
increasing size with the columnar engine and 16 concurrent clients
submitting a deterministic mixed workload (pif / snapshot / infimum /
census / reset), and reports **sustained wave requests per second** —
submission through streamed completion, including coalescing, executor
hand-off, and event fan-out.

Each cell is the median of 5 repeats (:func:`benchmarks.common.repeat_median`).
Every repeat also asserts the service contract: all requests complete,
none fail, every wave satisfies the PIF specification, and coalescing
actually fired (served > waves), so the throughput number cannot come
from a silently degraded run.

Results are written to ``BENCH_service.json`` at the repository root
and gated by ``benchmarks/check_regression.py``::

    pytest benchmarks/bench_service.py --benchmark-only -q
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.graphs import star
from repro.service import WaveService, make_workload

from benchmarks.common import JSON_REPORTS, TableCollector, repeat_median

TABLE = TableCollector(
    "C-service — sustained wave requests/sec vs topology size",
    columns=[
        "network", "requests", "clients", "waves", "coalesced",
        "req/sec", "repeats",
    ],
)

SIZES = (256, 1024, 4096)
#: Requests per run, scaled down as waves get slower so a repeat stays
#: a few seconds even at N=4096.
REQUESTS = {256: 120, 1024: 48, 4096: 16}
CLIENTS = 16
REPEATS = 5
SEED = 0

#: ``"star-N" -> repeat_median(...) result for requests_per_sec``.
RESULTS: dict[str, dict] = {}


async def _serve(n: int) -> dict[str, float]:
    count = REQUESTS[n]
    script = make_workload(count, seed=SEED)
    async with WaveService(seed=SEED, engine="columnar") as service:
        name = f"star-{n}"
        service.add_topology(name, star(n))

        async def client(handles) -> int:
            completions = 0
            for handle in handles:
                async for event in handle.events():
                    if event.phase == "completed":
                        completions += 1
            return completions

        start = time.perf_counter()
        # One synchronous submission burst (deterministic order), then
        # every client consumes its own completion streams concurrently.
        slices = [script[c::CLIENTS] for c in range(CLIENTS)]
        per_client = [
            [service.submit(kind, name, args) for kind, args in chunk]
            for chunk in slices
        ]
        streamed = await asyncio.gather(
            *(client(handles) for handles in per_client)
        )
        elapsed = time.perf_counter() - start
        stats = service.stats()
    topo = stats["topologies"][name]
    assert sum(streamed) == count, (n, streamed)
    assert topo["requests_served"] == count
    assert stats["rejected"] == 0
    assert topo["waves_run"] < count, "coalescing never fired"
    return {
        "requests": count,
        "waves": topo["waves_run"],
        "coalesced": count - topo["waves_run"],
        "seconds": elapsed,
        "requests_per_sec": count / elapsed if elapsed > 0 else 0.0,
    }


def _measure(n: int) -> dict[str, float]:
    return asyncio.run(_serve(n))


@pytest.mark.parametrize("n", SIZES)
def test_service_throughput(n: int, benchmark) -> None:
    stats = benchmark.pedantic(
        lambda: repeat_median(
            lambda: _measure(n), key="requests_per_sec", repeats=REPEATS
        ),
        rounds=1,
        iterations=1,
    )
    RESULTS[f"star-{n}"] = stats
    sample = stats["sample"]
    TABLE.add(
        {
            "network": f"star-{n}",
            "requests": int(sample["requests"]),
            "clients": CLIENTS,
            "waves": int(sample["waves"]),
            "coalesced": int(sample["coalesced"]),
            "req/sec": round(stats["median"], 1),
            "repeats": stats["repeats"],
        }
    )
    assert stats["median"] > 0


def _build_report() -> dict | None:
    if not RESULTS:
        return None
    return {
        "benchmark": "asyncio wave-service sustained throughput",
        "workload": (
            f"mixed wave requests (make_workload seed {SEED}) on star-N "
            f"for N in {list(SIZES)}, columnar engine, {CLIENTS} concurrent "
            f"clients, requests per run {REQUESTS}, "
            f"median of {REPEATS} repeats"
        ),
        "cases": [
            {
                "case": case,
                "median_requests_per_sec": stats["median"],
                "min_requests_per_sec": stats["min"],
                "max_requests_per_sec": stats["max"],
                "repeats": stats["repeats"],
                "requests": int(stats["sample"]["requests"]),
                "waves": int(stats["sample"]["waves"]),
                "coalesced": int(stats["sample"]["coalesced"]),
                "seconds": stats["sample"]["seconds"],
            }
            for case, stats in sorted(RESULTS.items())
        ],
        "wave_requests_per_sec": {
            case: round(stats["median"], 2)
            for case, stats in sorted(RESULTS.items())
        },
    }


JSON_REPORTS.append(("BENCH_service.json", _build_report))
