"""E5 — Theorem 2: phase convergence from each root state.

Paper claims (given a non-empty GoodLegalTree):

1. from ``Pif_r = F``, an SB configuration within ``4·L_max + 4`` rounds;
2. from ``Pif_r = B ∧ Fok_r``, an EF configuration within ``5·L_max + 4``;
3. from ``Pif_r = B ∧ ¬Fok_r``, an EBN configuration within ``5·L_max + 4``.

For cases 2/3 a pre-existing wave may instead be aborted by a correction
(reaching SB); both outcomes are tallied, and the measured worst rounds
are compared against the bound.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import measure_theorem2
from repro.graphs import line, random_connected, ring

from benchmarks.common import TableCollector

TABLE = TableCollector(
    "E5 / Theorem 2 — rounds to target configuration (worst over seeds)",
    columns=[
        "topology",
        "case",
        "target",
        "worst rounds",
        "bound",
        "outcomes",
        "within",
    ],
)

NETWORKS = [line(9), ring(9), random_connected(9, 0.25, seed=4)]
CASE_TARGETS = {1: "SB", 2: "EF", 3: "EBN"}
SEEDS = range(6)


@pytest.mark.parametrize("net", NETWORKS, ids=lambda n: n.name)
@pytest.mark.parametrize("case", [1, 2, 3])
def test_theorem2_case(net, case, benchmark) -> None:
    def run_all():
        return [measure_theorem2(net, case, seed=s) for s in SEEDS]

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    worst = max(r.rounds_to_target for r in results)
    bound = results[0].bound
    outcomes: dict[str, int] = {}
    for r in results:
        outcomes[r.reached] = outcomes.get(r.reached, 0) + 1
    TABLE.add(
        {
            "topology": net.name,
            "case": case,
            "target": CASE_TARGETS[case],
            "worst rounds": worst,
            "bound": bound,
            "outcomes": ", ".join(f"{k}x{v}" for k, v in sorted(outcomes.items())),
            "within": "yes" if worst <= bound else "NO",
        }
    )
    assert worst <= bound
