"""C-parallel — process-pool speedup and determinism across the jobs axis.

Runs the two heaviest wired workloads — a chaos campaign grid and the
sharded snap-safety sweep — serially and at ``jobs`` ∈ {1, 2, 4}, and
reports wall-clock seconds plus parallel-over-serial speedup per case.
Every measurement doubles as the determinism canary: the parallel
results must be *identical* to the serial ones (same runs, tapes and
violations for the campaign; same verdict, counterexamples and coverage
for the sweep), so a scheduling bug can never hide behind a speedup.

Speedups are only meaningful relative to the host (a single-core
container cannot beat serial), which is why every report embeds the
host shape (see ``benchmarks/common.host_metadata``) and
``check_regression.py`` compares against baselines from the same shape.

Results are written to ``BENCH_parallel.json`` at the repository root
and gated by ``benchmarks/check_regression.py``::

    pytest benchmarks/bench_parallel.py --benchmark-only -q
"""

from __future__ import annotations

import time

import pytest

from repro.chaos import SCENARIO_SHAPES, run_campaign
from repro.graphs import line, random_connected, ring
from repro.verification import check_snap_safety

from benchmarks.common import JSON_REPORTS, TableCollector

TABLE = TableCollector(
    "C-parallel — parallel vs serial across the jobs axis",
    columns=["case", "jobs", "seconds", "speedup vs serial", "identical"],
)

#: The jobs axis every workload is measured on (serial is the baseline).
JOBS_AXIS = (1, 2, 4)

CAMPAIGN_NETWORKS = [ring(12), random_connected(16, 0.2, seed=7)]
CAMPAIGN_DAEMONS = ("central", "distributed-random")
CAMPAIGN_SEEDS = (0, 1)
CAMPAIGN_BUDGET = 400

SAFETY_NETWORK = line(3)
SAFETY_MAX_STATES = 200_000

#: ``case -> {"serial_seconds": ..., "jobs": {j: seconds}}``
RESULTS: dict[str, dict] = {}


def _campaign_sig(result):
    return [
        (r.scenario, r.topology, r.daemon, r.seed, r.steps, r.violation, r.tape)
        for r in result.runs
    ]


def _run_campaign(jobs=None):
    scenario = SCENARIO_SHAPES["corruption-burst"]().seeded(0)
    return run_campaign(
        None,
        CAMPAIGN_NETWORKS,
        [scenario],
        daemons=CAMPAIGN_DAEMONS,
        seeds=CAMPAIGN_SEEDS,
        budget=CAMPAIGN_BUDGET,
        jobs=jobs,
    )


def _safety_sig(result):
    return (
        result.complete,
        result.configurations_checked,
        [(c.initial, c.schedule, c.message) for c in result.counterexamples],
    )


def _run_safety(jobs=None):
    return check_snap_safety(
        SAFETY_NETWORK, max_states=SAFETY_MAX_STATES, jobs=jobs
    )


WORKLOADS = {
    "campaign": (_run_campaign, _campaign_sig),
    "snap-safety": (_run_safety, _safety_sig),
}


@pytest.mark.parametrize("case", sorted(WORKLOADS))
def test_jobs_axis(case: str, benchmark) -> None:
    run, sig = WORKLOADS[case]

    def measure():
        start = time.perf_counter()
        serial = run()
        serial_seconds = time.perf_counter() - start
        timings = {}
        identical = True
        reference = sig(serial)
        for jobs in JOBS_AXIS:
            start = time.perf_counter()
            result = run(jobs=jobs)
            timings[jobs] = time.perf_counter() - start
            identical = identical and sig(result) == reference
        return {
            "serial_seconds": serial_seconds,
            "jobs": timings,
            "identical": identical,
        }

    measurement = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert measurement["identical"], f"{case}: parallel != serial"
    RESULTS[case] = measurement
    for jobs in JOBS_AXIS:
        seconds = measurement["jobs"][jobs]
        TABLE.add(
            {
                "case": case,
                "jobs": jobs,
                "seconds": round(seconds, 4),
                "speedup vs serial": round(
                    measurement["serial_seconds"] / seconds, 2
                )
                if seconds > 0
                else 0.0,
                "identical": measurement["identical"],
            }
        )


def _build_report() -> dict | None:
    if not RESULTS:
        return None
    speedups = {}
    cases = []
    for case, m in sorted(RESULTS.items()):
        for jobs in JOBS_AXIS:
            seconds = m["jobs"][jobs]
            speedup = m["serial_seconds"] / seconds if seconds > 0 else 0.0
            cases.append(
                {
                    "case": case,
                    "jobs": jobs,
                    "seconds": seconds,
                    "serial_seconds": m["serial_seconds"],
                    "speedup_over_serial": speedup,
                    "identical_to_serial": m["identical"],
                }
            )
            speedups[f"{case}_jobs{jobs}"] = round(speedup, 2)
    return {
        "benchmark": "process-pool parallelism across the jobs axis",
        "workload": (
            "campaign: ring-12 + random-16, corruption-burst, "
            f"daemons {list(CAMPAIGN_DAEMONS)}, seeds {list(CAMPAIGN_SEEDS)}, "
            f"budget {CAMPAIGN_BUDGET}; snap-safety: {SAFETY_NETWORK.name}, "
            f"max_states {SAFETY_MAX_STATES}"
        ),
        "jobs_axis": list(JOBS_AXIS),
        "cases": cases,
        "speedup_parallel_over_serial": speedups,
    }


JSON_REPORTS.append(("BENCH_parallel.json", _build_report))
