"""C-parallel — process-pool speedup and determinism across the jobs axis.

Runs the two heaviest wired workloads — a chaos campaign grid and the
sharded snap-safety sweep — serially and at ``jobs`` ∈ {1, 2, 4}, and
reports the parallel-over-serial speedup per case as a **median over
repeats** with min/max spread (single-shot speedups on a shared host
are noise; see :func:`benchmarks.common.repeat_median`).
Every measurement doubles as the determinism canary: the parallel
results must be *identical* to the serial ones (same runs, tapes and
violations for the campaign; same verdict, counterexamples and coverage
for the sweep), so a scheduling bug can never hide behind a speedup.

Speedups are only meaningful relative to the host (a single-core
container cannot beat serial), which is why every report embeds the
host shape (see ``benchmarks/common.host_metadata``) and
``check_regression.py`` compares against baselines from the same shape.

Results are written to ``BENCH_parallel.json`` at the repository root
and gated by ``benchmarks/check_regression.py``::

    pytest benchmarks/bench_parallel.py --benchmark-only -q
"""

from __future__ import annotations

import time

import pytest

from repro.chaos import SCENARIO_SHAPES, run_campaign
from repro.graphs import line, random_connected, ring
from repro.verification import check_snap_safety

from benchmarks.common import JSON_REPORTS, TableCollector, repeat_median

TABLE = TableCollector(
    "C-parallel — parallel vs serial across the jobs axis",
    columns=[
        "case", "jobs", "seconds", "speedup vs serial",
        "speedup min", "speedup max", "identical",
    ],
)

#: The jobs axis every workload is measured on (serial is the baseline).
JOBS_AXIS = (1, 2, 4)

#: Samples per case; reported numbers are medians with min/max spread.
REPEATS = 5

CAMPAIGN_NETWORKS = [ring(12), random_connected(16, 0.2, seed=7)]
CAMPAIGN_DAEMONS = ("central", "distributed-random")
CAMPAIGN_SEEDS = (0, 1)
CAMPAIGN_BUDGET = 400

SAFETY_NETWORK = line(3)
SAFETY_MAX_STATES = 200_000

#: ``case -> {"identical": ..., "jobs": {j: repeat_median stats}}``
RESULTS: dict[str, dict] = {}


def _campaign_sig(result):
    return [
        (r.scenario, r.topology, r.daemon, r.seed, r.steps, r.violation, r.tape)
        for r in result.runs
    ]


def _run_campaign(jobs=None):
    scenario = SCENARIO_SHAPES["corruption-burst"]().seeded(0)
    return run_campaign(
        None,
        CAMPAIGN_NETWORKS,
        [scenario],
        daemons=CAMPAIGN_DAEMONS,
        seeds=CAMPAIGN_SEEDS,
        budget=CAMPAIGN_BUDGET,
        jobs=jobs,
    )


def _safety_sig(result):
    return (
        result.complete,
        result.configurations_checked,
        [(c.initial, c.schedule, c.message) for c in result.counterexamples],
    )


def _run_safety(jobs=None):
    return check_snap_safety(
        SAFETY_NETWORK, max_states=SAFETY_MAX_STATES, jobs=jobs
    )


WORKLOADS = {
    "campaign": (_run_campaign, _campaign_sig),
    "snap-safety": (_run_safety, _safety_sig),
}


@pytest.mark.parametrize("case", sorted(WORKLOADS))
def test_jobs_axis(case: str, benchmark) -> None:
    run, sig = WORKLOADS[case]

    def measure():
        start = time.perf_counter()
        serial = run()
        serial_seconds = time.perf_counter() - start
        identical = True
        reference = sig(serial)
        sample = {"serial_seconds": serial_seconds}
        for jobs in JOBS_AXIS:
            start = time.perf_counter()
            result = run(jobs=jobs)
            seconds = time.perf_counter() - start
            sample[f"seconds_jobs{jobs}"] = seconds
            sample[f"speedup_jobs{jobs}"] = (
                serial_seconds / seconds if seconds > 0 else 0.0
            )
            identical = identical and sig(result) == reference
        sample["identical"] = identical
        return sample

    # One set of heavy samples per case; repeat_median then computes the
    # per-jobs spread over those same samples (the iterator closure hands
    # it one precollected sample per "run").
    samples = benchmark.pedantic(
        lambda: [measure() for _ in range(REPEATS)], rounds=1, iterations=1
    )
    assert all(s["identical"] for s in samples), f"{case}: parallel != serial"
    per_jobs = {}
    for jobs in JOBS_AXIS:
        replay = iter(samples)
        stats = repeat_median(
            lambda: next(replay), key=f"speedup_jobs{jobs}", repeats=REPEATS
        )
        per_jobs[jobs] = stats
        TABLE.add(
            {
                "case": case,
                "jobs": jobs,
                "seconds": round(stats["sample"][f"seconds_jobs{jobs}"], 4),
                "speedup vs serial": round(stats["median"], 2),
                "speedup min": round(stats["min"], 2),
                "speedup max": round(stats["max"], 2),
                "identical": True,
            }
        )
    RESULTS[case] = {"identical": True, "jobs": per_jobs}


def _build_report() -> dict | None:
    if not RESULTS:
        return None
    speedups = {}
    cases = []
    for case, m in sorted(RESULTS.items()):
        for jobs in JOBS_AXIS:
            stats = m["jobs"][jobs]
            sample = stats["sample"]
            cases.append(
                {
                    "case": case,
                    "jobs": jobs,
                    "seconds": sample[f"seconds_jobs{jobs}"],
                    "serial_seconds": sample["serial_seconds"],
                    "speedup_over_serial": stats["median"],
                    "speedup_min": stats["min"],
                    "speedup_max": stats["max"],
                    "repeats": stats["repeats"],
                    "identical_to_serial": m["identical"],
                }
            )
            speedups[f"{case}_jobs{jobs}"] = round(stats["median"], 2)
    return {
        "benchmark": "process-pool parallelism across the jobs axis",
        "workload": (
            "campaign: ring-12 + random-16, corruption-burst, "
            f"daemons {list(CAMPAIGN_DAEMONS)}, seeds {list(CAMPAIGN_SEEDS)}, "
            f"budget {CAMPAIGN_BUDGET}; snap-safety: {SAFETY_NETWORK.name}, "
            f"max_states {SAFETY_MAX_STATES}; "
            f"speedups are medians over {REPEATS} repeats"
        ),
        "jobs_axis": list(JOBS_AXIS),
        "cases": cases,
        "speedup_parallel_over_serial": speedups,
    }


JSON_REPORTS.append(("BENCH_parallel.json", _build_report))
