"""Benchmark-suite conftest: print every experiment table in the summary."""

from __future__ import annotations

from benchmarks.common import ALL_TABLES


def pytest_terminal_summary(terminalreporter, exitstatus, config) -> None:
    printed_header = False
    for collector in ALL_TABLES:
        rendered = collector.render()
        if rendered is None:
            continue
        if not printed_header:
            terminalreporter.section("paper-vs-measured experiment tables")
            printed_header = True
        terminalreporter.write_line("")
        terminalreporter.write_line(rendered)
