"""Benchmark-suite conftest: print experiment tables, write JSON reports."""

from __future__ import annotations

import json
from pathlib import Path

from benchmarks.common import ALL_TABLES, JSON_REPORTS, host_metadata
from repro import telemetry

#: JSON reports land at the repository root so their trajectory is
#: tracked PR over PR (BENCH_engine.json et al.).
REPO_ROOT = Path(__file__).resolve().parent.parent


def pytest_configure(config) -> None:
    # ``repro bench --telemetry PATH`` forwards the trace path to this
    # subprocess via REPRO_TELEMETRY; benchmarks then run instrumented.
    telemetry.enable_from_env()


def pytest_terminal_summary(terminalreporter, exitstatus, config) -> None:
    if telemetry.enabled:
        telemetry.write_snapshot(label="bench-final")
        if telemetry.sink is not None:
            terminalreporter.write_line(
                f"telemetry trace: {telemetry.sink.path}"
            )
        telemetry.disable()
    printed_header = False
    for collector in ALL_TABLES:
        rendered = collector.render()
        if rendered is None:
            continue
        if not printed_header:
            terminalreporter.section("paper-vs-measured experiment tables")
            printed_header = True
        terminalreporter.write_line("")
        terminalreporter.write_line(rendered)

    for filename, build in JSON_REPORTS:
        payload = build()
        if payload is None:
            continue
        # Every report carries the host shape it was measured on —
        # injected here so no bench module can forget it.
        payload.setdefault("host", host_metadata())
        path = REPO_ROOT / filename
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        terminalreporter.write_line(f"wrote {path}")
