"""E7 — the contribution claim: snap vs merely self-stabilizing PIF.

"Using a self-stabilizing algorithm, when a processor p starts a PIF
wave to propagate a value V, it is not guaranteed that every processor
will receive V. […] Removing this particular drawback is the goal of our
snap-stabilizing PIF."

The bench starts both protocols from the same corrupted configurations
(the ``stale_feedback``-style states that fool completion detection) and
counts, over many seeds and daemons, how often the **first** completed
wave violates [PIF1]/[PIF2].  Expected shape: a positive failure rate
for the self-stabilizing baseline, *exactly zero* for the snap PIF —
while both deliver correctly once stabilized (their last waves are
clean).

E7b is the scale leg: since the generic guard-expression compiler,
the [12]-style baseline runs spec-compiled on the columnar engine, so
the snap-vs-baseline comparison can finally be driven *like for like*
at N = 16 384 / 65 536 — same topology, same daemon, same engine, both
protocols on compiled kernels (steady-state wave steps/sec; numbers
quoted in EXPERIMENTS.md E7).
"""

from __future__ import annotations

from random import Random

import pytest

from repro.core.monitor import PifCycleMonitor
from repro.core.pif import SnapPif
from repro.core.state import Phase, PifState
from repro.graphs import line, random_connected, ring
from repro.protocols import SelfStabPif
from repro.runtime.daemons import (
    AdversarialDaemon,
    CentralDaemon,
    DistributedRandomDaemon,
    WeaklyFairDaemon,
)
from repro.runtime.simulator import Simulator
from repro.runtime.state import Configuration

from benchmarks.common import TableCollector

TABLE = TableCollector(
    "E7 — first-wave delivery from corrupted starts "
    "(self-stabilizing baseline vs snap PIF)",
    columns=[
        "network",
        "protocol",
        "runs",
        "first wave violated PIF1/2",
        "last wave violated",
    ],
)

NETWORKS = [line(8), ring(8), random_connected(8, 0.2, seed=3)]
RUNS = 40


def _stale_feedback_config(protocol, net, seed: int) -> Configuration:
    """Mostly stale-F states (with consistent levels along a BFS order),
    the adversarial pattern that fools completion detection, with the
    root's neighborhood clean so a wave can start immediately."""
    rng = Random(seed)
    levels = net.bfs_levels(0)
    states: list[PifState] = []
    base = protocol.initial_configuration(net)
    for p in net.nodes:
        template = base[p]
        assert isinstance(template, PifState)
        if p == 0 or 0 in net.neighbors(p):
            states.append(template)  # clean: root + its neighbors
            continue
        parent = min(
            (q for q in net.neighbors(p) if levels[q] == levels[p] - 1),
            default=net.neighbors(p)[0],
        )
        states.append(
            template.replace(
                pif=Phase.F if rng.random() < 0.8 else Phase.C,
                par=parent,
                level=max(1, levels[p]),
            )
        )
    return Configuration(tuple(states))


def _daemon(seed: int):
    return [
        lambda: DistributedRandomDaemon(0.5),
        lambda: WeaklyFairDaemon(AdversarialDaemon(patience=3), patience=6),
        lambda: CentralDaemon(choice="random"),
    ][seed % 3]()


def _measure(protocol_factory, net) -> tuple[int, int, int]:
    runs = first_bad = last_bad = 0
    for seed in range(RUNS):
        protocol = protocol_factory()
        config = _stale_feedback_config(protocol, net, seed)
        monitor = PifCycleMonitor(protocol, net)
        sim = Simulator(
            protocol,
            net,
            _daemon(seed),
            configuration=config,
            seed=seed,
            monitors=[monitor],
        )
        sim.run(
            until=lambda _c: len(monitor.completed_cycles) >= 5,
            max_steps=80_000,
        )
        cycles = monitor.completed_cycles
        if not cycles:
            continue
        runs += 1
        if not cycles[0].ok:
            first_bad += 1
        if not cycles[-1].ok:
            last_bad += 1
    return runs, first_bad, last_bad


@pytest.mark.parametrize("net", NETWORKS, ids=lambda n: n.name)
def test_selfstab_baseline_first_wave_failures(net, benchmark) -> None:
    runs, first_bad, last_bad = benchmark.pedantic(
        lambda: _measure(lambda: SelfStabPif(0, net.n), net),
        rounds=1,
        iterations=1,
    )
    TABLE.add(
        {
            "network": net.name,
            "protocol": "self-stab [12]-style",
            "runs": runs,
            "first wave violated PIF1/2": first_bad,
            "last wave violated": last_bad,
        }
    )
    assert runs >= RUNS * 3 // 4
    # The baseline *self-stabilizes*: late waves are correct.
    assert last_bad == 0
    # The drawback the paper removes: some first waves fail.
    assert first_bad > 0, (
        "expected the non-snap baseline to drop at least one first wave"
    )


@pytest.mark.parametrize("net", NETWORKS, ids=lambda n: n.name)
def test_snap_pif_never_fails(net, benchmark) -> None:
    runs, first_bad, last_bad = benchmark.pedantic(
        lambda: _measure(lambda: SnapPif.for_network(net), net),
        rounds=1,
        iterations=1,
    )
    TABLE.add(
        {
            "network": net.name,
            "protocol": "snap PIF (this paper)",
            "runs": runs,
            "first wave violated PIF1/2": first_bad,
            "last wave violated": last_bad,
        }
    )
    assert runs >= RUNS * 3 // 4
    assert first_bad == 0
    assert last_bad == 0


LARGE_TABLE = TableCollector(
    "E7b — like-for-like at scale: steady-state wave steps/sec, "
    "snap PIF vs self-stab baseline (both spec-compiled)",
    columns=["network", "protocol", "engine", "steps", "steps/sec"],
)

#: Steady-state step budgets, matching ``bench_engine.py``'s sizes.
LARGE_CASES = [(16_384, 80), (65_536, 30)]


def _throughput(protocol, net, engine: str, budget: int) -> dict:
    import time

    sim = Simulator(
        protocol,
        net,
        CentralDaemon(choice="random"),
        seed=1,
        engine=engine,
    )
    start = time.perf_counter()
    done = 0
    for _ in range(budget):
        if sim.step() is None:
            break
        done += 1
    elapsed = time.perf_counter() - start
    return {
        "steps": done,
        "steps_per_sec": done / elapsed if elapsed > 0 else 0.0,
    }


@pytest.mark.parametrize(
    "n,budget", LARGE_CASES, ids=[f"ring-{n}" for n, _ in LARGE_CASES]
)
def test_like_for_like_at_scale(n: int, budget: int, benchmark) -> None:
    net = ring(n)
    factories = [
        ("snap PIF", lambda: SnapPif.for_network(net)),
        ("self-stab [12]-style", lambda: SelfStabPif(0, net.n)),
    ]

    def run() -> list[dict]:
        rows = []
        for label, factory in factories:
            for engine in ("incremental", "columnar"):
                m = _throughput(factory(), net, engine, budget)
                rows.append(
                    {
                        "network": net.name,
                        "protocol": label,
                        "engine": engine,
                        "steps": int(m["steps"]),
                        "steps/sec": round(m["steps_per_sec"]),
                    }
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for row in rows:
        LARGE_TABLE.add(row)
        # Both protocols sustain their wave cycles at this size.
        assert row["steps"] == budget
