"""E11 — the prior-art regime: PIF over a pre-constructed spanning tree.

"These protocols assume an underlying self-stabilizing rooted spanning
tree construction algorithm."  The bench measures the *service gap*:
after a transient fault, the tree-based stack must first re-stabilize
its spanning tree (during which its waves are meaningless), while the
snap PIF delivers its first wave correctly immediately.

Reported per topology: rounds before the tree substrate is correct, the
tree PIF's wave cost after that, and the snap PIF's first-wave cost from
an equally corrupted state (its substrate *is* the wave).

E11c is the scale leg: the [9]-style tree PIF now runs spec-compiled
on the columnar engine (its frozen tree enters as a static column), so
tree-PIF-vs-snap-PIF throughput is measurable like for like on a
65 536-node random tree — same network, same daemon, same engine
(numbers quoted in EXPERIMENTS.md E11).
"""

from __future__ import annotations

from random import Random

import pytest

from repro.core.monitor import PifCycleMonitor
from repro.core.pif import SnapPif
from repro.graphs import grid, line, random_connected, ring
from repro.protocols import SpanningTree, TreePif
from repro.runtime.daemons import DistributedRandomDaemon
from repro.runtime.simulator import Simulator

from benchmarks.common import TableCollector

TABLE = TableCollector(
    "E11 — service delay after a transient fault: tree-based PIF vs snap PIF",
    columns=[
        "topology",
        "tree stabilization rounds",
        "tree wave rounds",
        "tree total",
        "snap first-wave rounds",
    ],
)

NETWORKS = [line(10), ring(10), grid(3, 4), random_connected(10, 0.25, seed=6)]


@pytest.mark.parametrize("net", NETWORKS, ids=lambda n: n.name)
def test_service_delay_comparison(net, benchmark) -> None:
    def run() -> tuple[int, int, int]:
        # --- tree-based stack: stabilize substrate, then run one wave.
        substrate = SpanningTree(0, net.n)
        sub_sim = Simulator(
            substrate,
            net,
            DistributedRandomDaemon(0.6),
            configuration=substrate.random_configuration(net, Random(17)),
            seed=17,
        )
        sub_result = sub_sim.run(max_steps=100_000)
        assert sub_result.terminated
        tree_rounds = sub_result.rounds

        tree_pif = TreePif(0, substrate.parent_map(sub_result.final))
        monitor = PifCycleMonitor(tree_pif, net)
        wave_sim = Simulator(
            tree_pif,
            net,
            DistributedRandomDaemon(0.6),
            seed=18,
            monitors=[monitor],
        )
        wave_sim.run(
            until=lambda _c: len(monitor.completed_cycles) >= 1,
            max_steps=50_000,
        )
        assert monitor.completed_cycles and monitor.completed_cycles[0].ok
        wave_rounds = monitor.completed_cycles[0].rounds

        # --- snap PIF: first wave straight from a corrupted state.
        snap = SnapPif.for_network(net)
        snap_monitor = PifCycleMonitor(snap, net)
        snap_sim = Simulator(
            snap,
            net,
            DistributedRandomDaemon(0.6),
            configuration=snap.random_configuration(net, Random(17)),
            seed=17,
            monitors=[snap_monitor],
        )
        snap_sim.run(
            until=lambda _c: len(snap_monitor.completed_cycles) >= 1,
            max_steps=100_000,
        )
        assert snap_monitor.completed_cycles
        assert snap_monitor.completed_cycles[0].ok
        snap_rounds = snap_sim.rounds

        return tree_rounds, wave_rounds, snap_rounds

    tree_rounds, wave_rounds, snap_rounds = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    TABLE.add(
        {
            "topology": net.name,
            "tree stabilization rounds": tree_rounds,
            "tree wave rounds": wave_rounds,
            "tree total": tree_rounds + wave_rounds,
            "snap first-wave rounds": snap_rounds,
        }
    )
    # The relevant shape: the snap PIF needs no substrate stabilization
    # phase at all — its first wave is already correct.  (Totals can be
    # close on small graphs; the guarantee, not the constant, is the gap.)
    assert tree_rounds > 0


STACK_TABLE = TableCollector(
    "E11b — live tree substrate: first-wave delivery, tree stack vs snap PIF",
    columns=["network", "protocol", "runs", "first wave violated", "last wave violated"],
)


def _first_wave_failures(protocol_factory, net, runs: int = 30):
    from random import Random

    total = first_bad = last_bad = 0
    for seed in range(runs):
        protocol = protocol_factory()
        config = protocol.random_configuration(net, Random(seed))
        monitor = PifCycleMonitor(protocol, net)
        sim = Simulator(
            protocol,
            net,
            DistributedRandomDaemon(0.6),
            configuration=config,
            seed=seed,
            monitors=[monitor],
        )
        sim.run(
            until=lambda _c: len(monitor.completed_cycles) >= 4,
            max_steps=120_000,
        )
        cycles = monitor.completed_cycles
        if not cycles:
            continue
        total += 1
        if not cycles[0].ok:
            first_bad += 1
        if not cycles[-1].ok:
            last_bad += 1
    return total, first_bad, last_bad


@pytest.mark.parametrize(
    "net",
    [random_connected(10, 0.25, seed=s) for s in (6, 7, 8)],
    ids=lambda n: n.name,
)
def test_tree_stack_first_wave_failures(net, benchmark) -> None:
    from repro.protocols import TreeStackPif

    total, first_bad, last_bad = benchmark.pedantic(
        lambda: _first_wave_failures(lambda: TreeStackPif(0, net.n), net),
        rounds=1,
        iterations=1,
    )
    STACK_TABLE.add(
        {
            "network": net.name,
            "protocol": "spanning-tree + tree PIF stack",
            "runs": total,
            "first wave violated": first_bad,
            "last wave violated": last_bad,
        }
    )
    assert total >= 20
    assert last_bad == 0  # the stack self-stabilizes


@pytest.mark.parametrize(
    "net",
    [random_connected(10, 0.25, seed=s) for s in (6, 7, 8)],
    ids=lambda n: n.name,
)
def test_snap_pif_no_failures_same_setting(net, benchmark) -> None:
    total, first_bad, last_bad = benchmark.pedantic(
        lambda: _first_wave_failures(lambda: SnapPif.for_network(net), net),
        rounds=1,
        iterations=1,
    )
    STACK_TABLE.add(
        {
            "network": net.name,
            "protocol": "snap PIF (this paper)",
            "runs": total,
            "first wave violated": first_bad,
            "last wave violated": last_bad,
        }
    )
    assert total >= 20
    assert first_bad == 0
    assert last_bad == 0


SCALE_TABLE = TableCollector(
    "E11c — like-for-like at scale: steady-state wave steps/sec on a "
    "random tree, tree PIF vs snap PIF (both spec-compiled)",
    columns=["network", "protocol", "engine", "steps", "steps/sec"],
)

SCALE_CASES = [(16_384, 80), (65_536, 30)]


def _bfs_parents(net) -> dict[int, int | None]:
    levels = net.bfs_levels(0)
    return {
        p: (
            None
            if p == 0
            else next(q for q in net.neighbors(p) if levels[q] == levels[p] - 1)
        )
        for p in net.nodes
    }


def _wave_throughput(protocol, net, engine: str, budget: int) -> dict:
    import time

    from repro.runtime.daemons import CentralDaemon

    sim = Simulator(
        protocol,
        net,
        CentralDaemon(choice="random"),
        seed=1,
        engine=engine,
    )
    start = time.perf_counter()
    done = 0
    for _ in range(budget):
        if sim.step() is None:
            break
        done += 1
    elapsed = time.perf_counter() - start
    return {
        "steps": done,
        "steps_per_sec": done / elapsed if elapsed > 0 else 0.0,
    }


@pytest.mark.parametrize(
    "n,budget", SCALE_CASES, ids=[f"tree-{n}" for n, _ in SCALE_CASES]
)
def test_tree_pif_like_for_like_at_scale(n: int, budget: int, benchmark) -> None:
    from repro.graphs import random_tree

    net = random_tree(n, seed=n)
    parents = _bfs_parents(net)
    factories = [
        ("snap PIF", lambda: SnapPif.for_network(net)),
        ("tree PIF [9]-style", lambda: TreePif(0, parents)),
    ]

    def run() -> list[dict]:
        rows = []
        for label, factory in factories:
            for engine in ("incremental", "columnar"):
                m = _wave_throughput(factory(), net, engine, budget)
                rows.append(
                    {
                        "network": net.name,
                        "protocol": label,
                        "engine": engine,
                        "steps": int(m["steps"]),
                        "steps/sec": round(m["steps_per_sec"]),
                    }
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for row in rows:
        SCALE_TABLE.add(row)
        assert row["steps"] == budget
