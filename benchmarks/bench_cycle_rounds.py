"""E1 — Theorem 4: a PIF cycle from the clean configuration takes ≤ 5h+5 rounds.

Paper claim: starting from an SBN configuration, the protocol executes a
PIF cycle in at most ``5·h + 5`` rounds, where ``h`` is the height of
the tree built during the cycle, ``h ≥ ecc(r)`` and ``h`` is bounded by
the longest elementary chordless path from the root.

This bench runs full cycles on every topology family, under the
synchronous daemon (the round-exact scheduler), and reports measured
rounds vs the ``5h+5`` bound, plus the chordless upper bound on ``h``.
"""

from __future__ import annotations

import pytest

from repro.analysis import bounds
from repro.analysis.experiments import measure_cycles
from repro.graphs import (
    caterpillar,
    complete,
    compute_metrics,
    grid,
    hypercube,
    line,
    lollipop,
    petersen,
    random_connected,
    random_tree,
    ring,
    star,
    wheel,
)

from benchmarks.common import TableCollector

TABLE = TableCollector(
    "E1 / Theorem 4 — PIF cycle rounds vs 5h+5 (synchronous daemon)",
    columns=[
        "topology",
        "n",
        "h (built)",
        "h upper (chordless)",
        "rounds",
        "bound 5h+5",
        "within",
    ],
)

TOPOLOGIES = [
    line(16),
    ring(16),
    star(16),
    complete(12),
    grid(4, 4),
    hypercube(4),
    random_tree(16, seed=3),
    caterpillar(8, 1),
    lollipop(8, 8),
    wheel(16),
    petersen(),
    random_connected(16, 0.15, seed=5),
    random_connected(16, 0.4, seed=5),
]


@pytest.mark.parametrize("net", TOPOLOGIES, ids=lambda n: n.name)
def test_cycle_rounds_within_theorem4(net, benchmark) -> None:
    metrics = compute_metrics(net)

    measurement = benchmark.pedantic(
        lambda: measure_cycles(net, cycles=1), rounds=2, iterations=1
    )

    rounds = measurement.cycle_rounds[0]
    height = measurement.heights[0]
    bound = bounds.cycle_bound(height)
    TABLE.add(
        {
            "topology": net.name,
            "n": net.n,
            "h (built)": height,
            "h upper (chordless)": metrics.longest_chordless_from_root,
            "rounds": rounds,
            "bound 5h+5": bound,
            "within": "yes" if rounds <= bound else "NO",
        }
    )

    assert measurement.all_cycles_ok
    assert rounds <= bound, f"{net.name}: {rounds} > {bound}"
    # Theorem 4's structural bound on the built height.
    assert metrics.root_eccentricity <= height
    assert height <= metrics.longest_chordless_from_root
