"""E-engine — enabled-set engine throughput: full vs incremental vs columnar.

Every layer of the reproduction bottlenecks on computing the enabled
map after each computation step.  The full engine re-evaluates every
guard at every node; the incremental engine exploits the 1-hop locality
of the guarded-action model and re-evaluates only the dirty region
``U ∪ N(U)`` of the nodes a step actually rewrote; the columnar engine
additionally stores the configuration as flat per-variable arrays, so a
step writes O(dirty) array cells instead of copying the O(N) state
tuple (see docs/API.md «Columnar engine»).

This bench drives the snap PIF through steady-state wave cycles under a
central daemon (one activation per step — the regime where locality
matters most).  All three engines run on rings and sparse random graphs
at N ∈ {16, 64, 256, 1024}; the full engine is capped there (its
O(N·deg) per-step guard sweep is already ~100× off the pace at 1024),
while incremental and columnar continue to N ∈ {4096, 16384, 65536} on
O(N)-constructible topologies (rings and random trees — the O(N²)
``random_connected`` builder is the bottleneck at those sizes, not the
engines).

Since the generic guard-expression compiler landed, every baseline
protocol runs compiled — so the large sizes also sweep the three newly
compiled protocols (``self-stab-pif``, ``tree-pif``,
``spanning-tree``), incremental vs columnar, each on an
O(N)-constructible family that suits it.

The *region axis* measures parallel daemon stepping (``repro.regions``):
the configuration is seeded with 16 well-separated corruption blobs, so
every step's dirty footprint splits into many independent regions, and
region-partitioned columnar stepping (thread pool, default thread
count) runs against serial columnar under synchronous and distributed
daemons.  The tracked ``speedup_parallel_regions_over_serial`` ratio is
honest parallelism: both modes share the same vectorized kernels, so it
isolates partition overhead vs multi-core win (≈1.0 or below expected
on 1-CPU hosts, where the key is still recorded).  A companion
benchmark asserts in-bench that traces are bit-identical across thread
counts {1, 2, 4} and against serial.  Results are written to
``BENCH_engine.json`` at the repository root so the perf trajectory is
tracked PR over PR::

    pytest benchmarks/bench_engine.py --benchmark-only -q
"""

from __future__ import annotations

import time
from random import Random

import pytest

from repro.core.pif import SnapPif
from repro.graphs import random_connected, random_tree, ring
from repro.protocols import SelfStabPif, SpanningTree, TreePif
from repro.runtime.daemons import (
    CentralDaemon,
    DistributedRandomDaemon,
    SynchronousDaemon,
)
from repro.runtime.network import Network
from repro.runtime.simulator import Simulator

from benchmarks.common import JSON_REPORTS, TableCollector

TABLE = TableCollector(
    "E-engine — enabled-set engine: steps/sec, full vs incremental vs columnar",
    columns=["topology", "n", "engine", "steps", "seconds", "steps/sec"],
)

PROTOCOL_TABLE = TableCollector(
    "E-engine — spec-compiled protocols: steps/sec, incremental vs columnar",
    columns=[
        "protocol",
        "topology",
        "n",
        "engine",
        "steps",
        "seconds",
        "steps/sec",
    ],
)

#: Steps per timing run, scaled down as the per-step cost grows with N.
STEPS = {
    16: 2000,
    64: 1000,
    256: 500,
    1024: 200,
    4096: 150,
    16384: 80,
    65536: 30,
}

#: Sizes every engine runs (the full engine's O(N·deg) sweep caps here).
SIZES = (16, 64, 256, 1024)

#: Sizes only the dirty-region engines run, on O(N)-constructible graphs.
LARGE_SIZES = (4096, 16384, 65536)

TOPOLOGIES = {
    "ring": lambda n: ring(n),
    "random": lambda n: random_connected(n, 0.05, seed=n),
    "tree": lambda n: random_tree(n, seed=n),
}

#: ``(family, n, engine)`` benchmark grid.
CASES = [
    (family, n, engine)
    for engine in ("full", "incremental", "columnar")
    for family in ("ring", "random")
    for n in SIZES
] + [
    (family, n, engine)
    for engine in ("incremental", "columnar")
    for family in ("ring", "tree")
    for n in LARGE_SIZES
]

#: The newly spec-compiled protocols, each on one O(N)-constructible
#: family: wave protocols cycle forever (like the snap PIF), while the
#: spanning tree is silent — its run is the convergence prefix from the
#: default initial configuration, far longer than any budget here.
PROTOCOL_FAMILIES = {
    "self-stab-pif": "ring",
    "tree-pif": "tree",
    "spanning-tree": "ring",
}

#: ``(protocol, family, n, engine)`` grid for the compiled protocols.
PROTOCOL_CASES = [
    (protocol, family, n, engine)
    for engine in ("incremental", "columnar")
    for protocol, family in PROTOCOL_FAMILIES.items()
    for n in LARGE_SIZES
]

#: ``(family, n, engine) -> {"steps": ..., "seconds": ..., "steps_per_sec": ...}``
RESULTS: dict[tuple[str, int, str], dict[str, float]] = {}

#: ``(protocol, family, n, engine) -> same measurement shape``.
PROTOCOL_RESULTS: dict[tuple[str, str, int, str], dict[str, float]] = {}

# ----------------------------------------------------------------------
# Region axis: parallel daemon over disjoint dirty regions
# ----------------------------------------------------------------------

REGION_TABLE = TableCollector(
    "E-engine — parallel regions: steps/sec, serial vs region-partitioned",
    columns=[
        "topology",
        "n",
        "daemon",
        "mode",
        "steps",
        "seconds",
        "steps/sec",
    ],
)

#: Step budgets chosen so the 16 corruption blobs (spaced ``n // 16``
#: apart) cannot grow into one another within the run — enabled
#: activity spreads at most one hop per step per side, so the selection
#: stays genuinely multi-region for the whole measurement.
REGION_STEPS = {4096: 60, 16384: 40, 65536: 20}

REGION_SIZES = (4096, 16384, 65536)
REGION_FAMILIES = ("ring", "tree")
REGION_DAEMONS = {
    "synchronous": lambda: SynchronousDaemon(),
    "distributed": lambda: DistributedRandomDaemon(0.5),
}
REGION_MODES = ("serial", "regions")

#: ``(family, n, daemon)`` grid for the region axis — each cell
#: measures *both* modes back to back on the same constructed
#: workload, so the speedup ratio is a paired comparison (unpaired
#: cells drift with process age: allocator state and warmed caches
#: skew whichever mode happens to run first by tens of percent).
REGION_CASES = [
    (family, n, daemon)
    for family in REGION_FAMILIES
    for n in REGION_SIZES
    for daemon in REGION_DAEMONS
]

#: ``(family, n, daemon, mode) -> measurement``.
REGION_RESULTS: dict[tuple[str, int, str, str], dict[str, float]] = {}


def _region_blobs(protocol, net: Network, n: int) -> dict:
    """16 corruption windows, ``n // 16`` apart — the multi-region seed."""
    donor = protocol.random_configuration(net, Random(9))
    width = max(1, n // 128)
    spacing = max(width + 8, n // 16)
    updates = {}
    for k in range(16):
        start = (k * spacing) % n
        for p in range(start, min(start + width, n)):
            updates[p] = donor[p]
    return updates


def _bfs_parents(net: Network, root: int = 0) -> dict[int, int | None]:
    levels = net.bfs_levels(root)
    return {
        p: (
            None
            if p == root
            else next(q for q in net.neighbors(p) if levels[q] == levels[p] - 1)
        )
        for p in net.nodes
    }


def _make_protocol(kind: str, net: Network):
    if kind == "snap-pif":
        return SnapPif.for_network(net)
    if kind == "self-stab-pif":
        return SelfStabPif(0, net.n)
    if kind == "tree-pif":
        return TreePif(0, _bfs_parents(net))
    return SpanningTree(0, net.n)


def _measure(
    family: str, n: int, engine: str, protocol_kind: str = "snap-pif"
) -> dict[str, float]:
    net = TOPOLOGIES[family](n)
    protocol = _make_protocol(protocol_kind, net)
    sim = Simulator(
        protocol,
        net,
        CentralDaemon(choice="random"),
        seed=1,
        engine=engine,
    )
    budget = STEPS[n]
    start = time.perf_counter()
    done = 0
    for _ in range(budget):
        if sim.step() is None:
            break
        done += 1
    elapsed = time.perf_counter() - start
    return {
        "steps": done,
        "seconds": elapsed,
        "steps_per_sec": done / elapsed if elapsed > 0 else 0.0,
    }


@pytest.mark.parametrize(
    "family,n,engine", CASES, ids=[f"{f}-{n}-{e}" for f, n, e in CASES]
)
def test_engine_throughput(family: str, n: int, engine: str, benchmark) -> None:
    measurement = benchmark.pedantic(
        lambda: _measure(family, n, engine), rounds=1, iterations=1
    )
    RESULTS[(family, n, engine)] = measurement
    TABLE.add(
        {
            "topology": family,
            "n": n,
            "engine": engine,
            "steps": int(measurement["steps"]),
            "seconds": round(measurement["seconds"], 4),
            "steps/sec": round(measurement["steps_per_sec"]),
        }
    )
    assert measurement["steps"] == STEPS[n]  # a PIF run never terminates


@pytest.mark.parametrize(
    "protocol,family,n,engine",
    PROTOCOL_CASES,
    ids=[f"{p}-{f}-{n}-{e}" for p, f, n, e in PROTOCOL_CASES],
)
def test_compiled_protocol_throughput(
    protocol: str, family: str, n: int, engine: str, benchmark
) -> None:
    measurement = benchmark.pedantic(
        lambda: _measure(family, n, engine, protocol_kind=protocol),
        rounds=1,
        iterations=1,
    )
    PROTOCOL_RESULTS[(protocol, family, n, engine)] = measurement
    PROTOCOL_TABLE.add(
        {
            "protocol": protocol,
            "topology": family,
            "n": n,
            "engine": engine,
            "steps": int(measurement["steps"]),
            "seconds": round(measurement["seconds"], 4),
            "steps/sec": round(measurement["steps_per_sec"]),
        }
    )
    # The wave protocols never terminate; the (silent) spanning tree's
    # convergence prefix from the default initial configuration is far
    # longer than any budget here, but only the waves get the exact
    # assertion.
    if protocol == "spanning-tree":
        assert measurement["steps"] > 0
    else:
        assert measurement["steps"] == STEPS[n]


def _measure_region(
    family: str, n: int, daemon_name: str
) -> dict[str, dict[str, float]]:
    """Measure serial and region-parallel back to back, paired."""
    net = TOPOLOGIES[family](n)
    protocol = SnapPif.for_network(net)
    blobs = _region_blobs(protocol, net, n)
    budget = REGION_STEPS[n]
    measurements = {}
    for mode in REGION_MODES:
        sim = Simulator(
            protocol,
            net,
            REGION_DAEMONS[daemon_name](),
            seed=1,
            engine="columnar",
            region_parallel=(mode == "regions"),
        )
        sim.perturb_configuration(blobs)
        start = time.perf_counter()
        done = 0
        for _ in range(budget):
            if sim.step() is None:
                break
            done += 1
        elapsed = time.perf_counter() - start
        measurements[mode] = {
            "steps": done,
            "seconds": elapsed,
            "steps_per_sec": done / elapsed if elapsed > 0 else 0.0,
        }
    return measurements


@pytest.mark.parametrize(
    "family,n,daemon",
    REGION_CASES,
    ids=[f"{f}-{n}-{d}" for f, n, d in REGION_CASES],
)
def test_region_throughput(
    family: str, n: int, daemon: str, benchmark
) -> None:
    measurements = benchmark.pedantic(
        lambda: _measure_region(family, n, daemon),
        rounds=1,
        iterations=1,
    )
    for mode in REGION_MODES:
        measurement = measurements[mode]
        REGION_RESULTS[(family, n, daemon, mode)] = measurement
        REGION_TABLE.add(
            {
                "topology": family,
                "n": n,
                "daemon": daemon,
                "mode": mode,
                "steps": int(measurement["steps"]),
                "seconds": round(measurement["seconds"], 4),
                "steps/sec": round(measurement["steps_per_sec"]),
            }
        )
        assert measurement["steps"] == REGION_STEPS[n]


def test_region_determinism_across_thread_counts(benchmark) -> None:
    # Uses the benchmark fixture so it runs under --benchmark-only: the
    # speedup key is only trustworthy if the parallel trace is the
    # serial trace, so the bench asserts it in the same session.
    n = 1024
    net = ring(n)
    protocol = SnapPif.for_network(net)
    blobs = _region_blobs(protocol, net, n)

    def run(region_parallel: bool, threads: int | None = None) -> tuple:
        sim = Simulator(
            protocol,
            net,
            DistributedRandomDaemon(0.5),
            seed=3,
            engine="columnar",
            trace_level="selections",
            region_parallel=region_parallel,
            region_threads=threads,
        )
        sim.perturb_configuration(blobs)
        for _ in range(40):
            if sim.step() is None:
                break
        return (
            sim.steps,
            sim.moves,
            sim.trace.schedule(),
            sim.configuration,
        )

    outcomes = benchmark.pedantic(
        lambda: [run(False)] + [run(True, t) for t in (1, 2, 4)],
        rounds=1,
        iterations=1,
    )
    serial, *parallel = outcomes
    for index, outcome in enumerate(parallel):
        assert outcome == serial, f"threads={(1, 2, 4)[index]}"


def _region_speedups() -> dict[str, float]:
    """``family-n-daemon -> region-parallel steps/sec over serial``."""
    out = {}
    for family, n, daemon, mode in REGION_RESULTS:
        if mode != "regions":
            continue
        base = REGION_RESULTS.get((family, n, daemon, "serial"))
        if base is None or base["steps_per_sec"] == 0:
            continue
        out[f"{family}-{n}-{daemon}"] = round(
            REGION_RESULTS[(family, n, daemon, "regions")]["steps_per_sec"]
            / base["steps_per_sec"],
            2,
        )
    return out


def _speedups(numerator: str, denominator: str) -> dict[str, float]:
    """``family-n -> numerator steps/sec over denominator steps/sec``."""
    out = {}
    for family, n, engine in RESULTS:
        if engine != numerator:
            continue
        base = RESULTS.get((family, n, denominator))
        if base is None or base["steps_per_sec"] == 0:
            continue
        out[f"{family}-{n}"] = round(
            RESULTS[(family, n, numerator)]["steps_per_sec"]
            / base["steps_per_sec"],
            2,
        )
    return out


def _protocol_speedups() -> dict[str, float]:
    """``protocol-family-n -> columnar steps/sec over incremental``."""
    out = {}
    for protocol, family, n, engine in PROTOCOL_RESULTS:
        if engine != "columnar":
            continue
        base = PROTOCOL_RESULTS.get((protocol, family, n, "incremental"))
        if base is None or base["steps_per_sec"] == 0:
            continue
        out[f"{protocol}-{family}-{n}"] = round(
            PROTOCOL_RESULTS[(protocol, family, n, "columnar")][
                "steps_per_sec"
            ]
            / base["steps_per_sec"],
            2,
        )
    return out


def _build_report() -> dict | None:
    if not RESULTS:
        return None
    cases = [
        {
            "topology": family,
            "n": n,
            "engine": engine,
            "steps": int(m["steps"]),
            "seconds": m["seconds"],
            "steps_per_sec": m["steps_per_sec"],
        }
        for (family, n, engine), m in sorted(RESULTS.items())
    ]
    protocol_cases = [
        {
            "protocol": protocol,
            "topology": family,
            "n": n,
            "engine": engine,
            "steps": int(m["steps"]),
            "seconds": m["seconds"],
            "steps_per_sec": m["steps_per_sec"],
        }
        for (protocol, family, n, engine), m in sorted(
            PROTOCOL_RESULTS.items()
        )
    ]
    region_cases = [
        {
            "topology": family,
            "n": n,
            "daemon": daemon,
            "mode": mode,
            "steps": int(m["steps"]),
            "seconds": m["seconds"],
            "steps_per_sec": m["steps_per_sec"],
        }
        for (family, n, daemon, mode), m in sorted(REGION_RESULTS.items())
    ]
    return {
        "benchmark": "enabled-set engine (full vs incremental vs columnar)",
        "workload": "snap PIF cycles, central daemon (choice=random), seed 1",
        "steps_per_size": {str(n): s for n, s in STEPS.items()},
        "cases": cases,
        "compiled_protocol_cases": protocol_cases,
        "speedup_incremental_over_full": _speedups("incremental", "full"),
        "speedup_columnar_over_incremental": _speedups(
            "columnar", "incremental"
        ),
        "speedup_columnar_over_incremental_by_protocol": (
            _protocol_speedups()
        ),
        "region_cases": region_cases,
        "speedup_parallel_regions_over_serial": _region_speedups(),
    }


JSON_REPORTS.append(("BENCH_engine.json", _build_report))
