"""C-messaging — message-passing runtime throughput and wave latency.

Runs the genuine snap PIF over the message-passing transform
(:class:`~repro.messaging.MessageSimulator`) on stars of increasing
size under three ambient publication-loss rates, and reports

* **delivered messages per second** — the throughput of the per-link
  channel machinery (send, seeded delivery, version filtering), and
* **wave-completion latency** — steps from the root's initiating
  B-action to the cycle's closing C-action, averaged over the measured
  waves (loss stretches this: lost joins and acknowledgments wait for
  the heartbeat retransmission to heal the link).

Each cell is the median of 5 repeats (see
:func:`benchmarks.common.repeat_median`); the reliable (0% loss) cells
double as correctness canaries — every completed cycle must satisfy
[PIF1]/[PIF2], exactly as in shared memory (DESIGN.md §13).  Lossy
cells only assert that the waves completed: under loss the eager
transform is *not* conformance-preserving, which is the point of
measuring it.

Results are written to ``BENCH_messaging.json`` at the repository root
and gated by ``benchmarks/check_regression.py``::

    pytest benchmarks/bench_messaging.py --benchmark-only -q
"""

from __future__ import annotations

import time

import pytest

from repro.core.monitor import PifCycleMonitor
from repro.core.pif import SnapPif
from repro.graphs import star
from repro.messaging import MessageSimulator
from repro.runtime.daemons import SynchronousDaemon

from benchmarks.common import JSON_REPORTS, TableCollector, repeat_median

TABLE = TableCollector(
    "C-messaging — delivered msgs/sec and wave latency vs size and loss",
    columns=[
        "network", "loss", "steps", "delivered", "msgs/sec",
        "steps/wave", "repeats",
    ],
)

SIZES = (256, 1024, 4096)
LOSS_RATES = (0.0, 0.01, 0.10)
WAVES = 3
REPEATS = 5
MAX_STEPS = 5000

#: ``"star-N@loss" -> repeat_median(...) result for delivered_per_sec``.
RESULTS: dict[str, dict] = {}


def _case_name(n: int, loss: float) -> str:
    return f"star-{n}@loss-{loss:g}"


def _measure(n: int, loss: float) -> dict[str, float]:
    network = star(n)
    protocol = SnapPif.for_network(network)
    monitor = PifCycleMonitor(protocol, network)
    sim = MessageSimulator(
        protocol,
        network,
        SynchronousDaemon(),
        seed=0,
        monitors=[monitor],
        loss_rate=loss,
    )
    start = time.perf_counter()
    sim.run(
        until=lambda _c: len(monitor.completed_cycles) >= WAVES,
        max_steps=MAX_STEPS,
    )
    elapsed = time.perf_counter() - start
    cycles = monitor.completed_cycles
    assert len(cycles) >= WAVES, (n, loss, sim.steps)
    if loss == 0.0:
        # Reliable + eager ⇒ step-for-step shared-memory equivalence,
        # so every cycle must satisfy the PIF specification.
        assert monitor.all_cycles_ok(), [c.violations for c in cycles]
    latency = sum(c.end_step - c.start_step for c in cycles) / len(cycles)
    delivered = sim.counters["delivered"]
    return {
        "steps": sim.steps,
        "delivered": delivered,
        "dropped_loss": sim.counters["dropped_loss"],
        "heartbeats": sim.counters["heartbeats"],
        "seconds": elapsed,
        "delivered_per_sec": delivered / elapsed if elapsed > 0 else 0.0,
        "steps_per_wave": latency,
    }


@pytest.mark.parametrize("loss", LOSS_RATES, ids=lambda r: f"loss-{r:g}")
@pytest.mark.parametrize("n", SIZES)
def test_messaging_throughput(n: int, loss: float, benchmark) -> None:
    stats = benchmark.pedantic(
        lambda: repeat_median(
            lambda: _measure(n, loss),
            key="delivered_per_sec",
            repeats=REPEATS,
        ),
        rounds=1,
        iterations=1,
    )
    RESULTS[_case_name(n, loss)] = stats
    sample = stats["sample"]
    TABLE.add(
        {
            "network": f"star-{n}",
            "loss": f"{loss:g}",
            "steps": int(sample["steps"]),
            "delivered": int(sample["delivered"]),
            "msgs/sec": round(stats["median"]),
            "steps/wave": round(sample["steps_per_wave"], 1),
            "repeats": stats["repeats"],
        }
    )
    assert stats["median"] > 0
    if loss > 0.0:
        assert sample["dropped_loss"] > 0
        assert sample["heartbeats"] > 0


def _build_report() -> dict | None:
    if not RESULTS:
        return None
    return {
        "benchmark": "message-passing runtime throughput and wave latency",
        "workload": (
            f"snap PIF over MessageSimulator, star-N for N in {list(SIZES)}, "
            f"synchronous daemon, seed 0, {WAVES} waves/run, "
            f"loss rates {list(LOSS_RATES)}, median of {REPEATS} repeats"
        ),
        "cases": [
            {
                "case": case,
                "median_delivered_per_sec": stats["median"],
                "min_delivered_per_sec": stats["min"],
                "max_delivered_per_sec": stats["max"],
                "repeats": stats["repeats"],
                "steps": int(stats["sample"]["steps"]),
                "delivered": int(stats["sample"]["delivered"]),
                "dropped_loss": int(stats["sample"]["dropped_loss"]),
                "heartbeats": int(stats["sample"]["heartbeats"]),
                "seconds": stats["sample"]["seconds"],
                "steps_per_wave": stats["sample"]["steps_per_wave"],
            }
            for case, stats in sorted(RESULTS.items())
        ],
        "delivered_messages_per_sec": {
            case: round(stats["median"], 2)
            for case, stats in sorted(RESULTS.items())
        },
        "wave_completion_steps": {
            case: round(stats["sample"]["steps_per_wave"], 2)
            for case, stats in sorted(RESULTS.items())
        },
    }


JSON_REPORTS.append(("BENCH_messaging.json", _build_report))
