"""E-telemetry — instrumentation overhead: disabled vs enabled.

The telemetry contract is that disabled instrumentation costs ~one
module-attribute check per call site, so the hot paths instrumented in
PR 5 (``Simulator.step``, the model-check memo counters) must run at
effectively the pre-instrumentation throughput when telemetry is off.
This bench measures the two hottest workloads in both modes:

* **engine** — snap PIF steady-state cycles on ``ring(64)`` under a
  central daemon (the BENCH_engine regime, where ``Simulator.step``
  dominates);
* **modelcheck** — an exhaustive ``check_snap_safety`` sweep on
  ``line(3)`` (where the memo counters dominate).

Each mode is measured as a median over repeats
(:func:`benchmarks.common.repeat_median`), and the report records the
disabled-mode throughput (gated by ``check_regression.py`` — a >10%
drop in the disabled hot path fails CI) plus the enabled-vs-disabled
overhead percentage.  The enabled runs also assert the recorded
counters match the work actually performed, and the disabled runs
assert the registry stays untouched — overhead numbers for
instrumentation that did not record anything would be meaningless::

    pytest benchmarks/bench_telemetry.py --benchmark-only -q
"""

from __future__ import annotations

import time

import pytest

from repro import telemetry
from repro.core.pif import SnapPif
from repro.graphs import line, ring
from repro.runtime.daemons import CentralDaemon
from repro.runtime.simulator import Simulator
from repro.verification.model_check import check_snap_safety

from benchmarks.common import JSON_REPORTS, TableCollector, repeat_median

TABLE = TableCollector(
    "E-telemetry — instrumentation overhead: disabled vs enabled",
    columns=["workload", "mode", "metric/sec", "min", "max", "overhead %"],
)

ENGINE_N = 64
ENGINE_STEPS = 1000
SAFETY_MAX_STATES = 4000
REPEATS = 5

#: ``(workload, mode) -> repeat_median result``
RESULTS: dict[tuple[str, str], dict] = {}


def _measure_engine() -> dict:
    net = ring(ENGINE_N)
    protocol = SnapPif.for_network(net)
    sim = Simulator(
        protocol, net, CentralDaemon(choice="random"), seed=1
    )
    start = time.perf_counter()
    done = 0
    for _ in range(ENGINE_STEPS):
        if sim.step() is None:
            break
        done += 1
    elapsed = time.perf_counter() - start
    return {
        "steps": done,
        "seconds": elapsed,
        "per_sec": done / elapsed if elapsed > 0 else 0.0,
    }


def _measure_modelcheck() -> dict:
    start = time.perf_counter()
    result = check_snap_safety(line(3), max_states=SAFETY_MAX_STATES)
    elapsed = time.perf_counter() - start
    return {
        "states": result.states_explored,
        "seconds": elapsed,
        "per_sec": (
            result.states_explored / elapsed if elapsed > 0 else 0.0
        ),
    }


WORKLOADS = {
    "engine": _measure_engine,
    "modelcheck": _measure_modelcheck,
}


class _telemetry_mode:
    """Force telemetry on/off for one measurement, restoring prior state."""

    def __init__(self, enabled: bool) -> None:
        self.target = enabled

    def __enter__(self) -> None:
        self.was_enabled = telemetry.enabled
        self.prior_registry = telemetry.registry
        telemetry.enabled = self.target
        telemetry.registry = telemetry.MetricsRegistry()

    def __exit__(self, *exc) -> None:
        telemetry.enabled = self.was_enabled
        telemetry.registry = self.prior_registry


@pytest.mark.parametrize("mode", ["disabled", "enabled"])
@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_telemetry_overhead(workload: str, mode: str, benchmark) -> None:
    measure = WORKLOADS[workload]

    def instrumented() -> dict:
        with _telemetry_mode(mode == "enabled"):
            sample = measure()
            snapshot = telemetry.registry.snapshot()
        sample["metrics"] = snapshot.metrics
        return sample

    stats = benchmark.pedantic(
        lambda: repeat_median(instrumented, key="per_sec", repeats=REPEATS),
        rounds=1,
        iterations=1,
    )
    sample = stats["sample"]
    if mode == "enabled":
        # The run must actually have recorded: counters match the work.
        if workload == "engine":
            assert sample["metrics"]["sim.steps"]["value"] == sample["steps"]
        else:
            key = "check.snap-safety (PIF1 ∧ PIF2).states_explored"
            assert sample["metrics"][key]["value"] == sample["states"]
    else:
        assert sample["metrics"] == {}, "disabled telemetry recorded metrics"
    RESULTS[(workload, mode)] = stats

    disabled = RESULTS.get((workload, "disabled"))
    overhead = ""
    if mode == "enabled" and disabled is not None:
        overhead = round(
            100.0 * (1.0 - stats["median"] / disabled["median"]), 2
        )
    TABLE.add(
        {
            "workload": workload,
            "mode": mode,
            "metric/sec": round(stats["median"]),
            "min": round(stats["min"]),
            "max": round(stats["max"]),
            "overhead %": overhead,
        }
    )


def _build_report() -> dict | None:
    if not RESULTS:
        return None
    cases = []
    throughput = {}
    for (workload, mode), stats in sorted(RESULTS.items()):
        cases.append(
            {
                "workload": workload,
                "mode": mode,
                "median_per_sec": stats["median"],
                "min_per_sec": stats["min"],
                "max_per_sec": stats["max"],
                "repeats": stats["repeats"],
            }
        )
        if mode == "disabled":
            throughput[workload] = round(stats["median"], 2)
    overhead = {}
    for workload in WORKLOADS:
        disabled = RESULTS.get((workload, "disabled"))
        enabled = RESULTS.get((workload, "enabled"))
        if disabled and enabled and disabled["median"] > 0:
            overhead[workload] = round(
                100.0 * (1.0 - enabled["median"] / disabled["median"]), 2
            )
    return {
        "benchmark": "telemetry overhead (disabled vs enabled)",
        "workload": (
            f"engine: ring({ENGINE_N}) central daemon {ENGINE_STEPS} steps; "
            f"modelcheck: snap safety line(3) "
            f"max_states={SAFETY_MAX_STATES}; medians over {REPEATS} repeats"
        ),
        "cases": cases,
        "telemetry_throughput": throughput,
        "overhead_enabled_pct": overhead,
    }


JSON_REPORTS.append(("BENCH_telemetry.json", _build_report))
