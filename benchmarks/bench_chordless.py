"""E9 — Theorem 4's structural lemma: parent paths are always chordless.

"Macro ``Potential_p`` implies that our algorithm creates only chordless
ParentPaths."  The bench runs waves on chord-rich topologies under an
asynchronous daemon, checks *every* root-anchored parent path in *every*
traversed configuration for chordlessness, and reports the built height
against the chordless-path upper bound.
"""

from __future__ import annotations

import pytest

from repro.core import definitions as defs
from repro.core.monitor import PifCycleMonitor
from repro.core.pif import SnapPif
from repro.core.state import Phase
from repro.graphs import (
    complete,
    compute_metrics,
    is_chordless_path,
    lollipop,
    petersen,
    random_connected,
    wheel,
)
from repro.runtime.daemons import DistributedRandomDaemon
from repro.runtime.simulator import Simulator

from benchmarks.common import TableCollector

TABLE = TableCollector(
    "E9 — chordless parent paths (checked on every traversed configuration)",
    columns=[
        "topology",
        "paths checked",
        "chord violations",
        "max h built",
        "chordless bound",
    ],
)

NETWORKS = [
    complete(10),
    wheel(12),
    petersen(),
    lollipop(6, 6),
    random_connected(12, 0.35, seed=7),
    random_connected(12, 0.6, seed=7),
]


@pytest.mark.parametrize("net", NETWORKS, ids=lambda n: n.name)
def test_parent_paths_chordless(net, benchmark) -> None:
    protocol = SnapPif.for_network(net)
    metrics = compute_metrics(net)

    def run() -> tuple[int, int, int]:
        checked = violations = 0
        max_height = 0
        monitor = PifCycleMonitor(protocol, net)
        sim = Simulator(
            protocol,
            net,
            DistributedRandomDaemon(0.6),
            seed=13,
            monitors=[monitor],
        )
        while len(monitor.completed_cycles) < 3 and sim.steps < 30_000:
            sim.step()
            config = sim.configuration
            for node in net.nodes:
                state = config[node]
                if state.pif is Phase.C:  # type: ignore[union-attr]
                    continue
                path = defs.parent_path(config, net, protocol.constants, node)
                if path is None or path[-1] != protocol.root:
                    continue
                checked += 1
                if not is_chordless_path(net, path):
                    violations += 1
        for cycle in monitor.completed_cycles:
            max_height = max(max_height, cycle.height)
        return checked, violations, max_height

    checked, violations, max_height = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    TABLE.add(
        {
            "topology": net.name,
            "paths checked": checked,
            "chord violations": violations,
            "max h built": max_height,
            "chordless bound": metrics.longest_chordless_from_root,
        }
    )
    assert checked > 0
    assert violations == 0
    assert max_height <= metrics.longest_chordless_from_root
