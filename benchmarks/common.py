"""Shared plumbing for the benchmark/experiment suite.

Each ``bench_*.py`` file regenerates one experiment of EXPERIMENTS.md
(the paper's proved bounds, re-measured).  Tests use pytest-benchmark to
time the underlying simulation; every test also contributes a row to a
module-level :class:`TableCollector`.  The collectors register
themselves in a global registry, and ``benchmarks/conftest.py`` prints
every collected table in the terminal summary, so running::

    pytest benchmarks/ --benchmark-only

produces both the timing tables and the reproduction tables.
"""

from __future__ import annotations

import os
import platform
from typing import Callable

from repro.reporting import render_table

__all__ = [
    "TableCollector",
    "ALL_TABLES",
    "JSON_REPORTS",
    "host_metadata",
    "repeat_median",
]


def _cpu_model() -> str:
    """Best-effort CPU model string (``/proc/cpuinfo`` on Linux)."""
    try:
        with open("/proc/cpuinfo", encoding="utf-8") as fh:
            for line in fh:
                if line.lower().startswith("model name"):
                    return line.split(":", 1)[1].strip()
    except OSError:
        pass
    return platform.processor() or platform.machine()


def host_metadata() -> dict:
    """The host shape a benchmark ran on, embedded in every report.

    Speedup numbers — especially the parallel ones — are only
    interpretable relative to the machine that produced them;
    ``check_regression.py`` warns (without failing) when the current
    host shape differs from the baseline's.
    """
    return {
        "cpu_count": os.cpu_count(),
        "cpu_model": _cpu_model(),
        "python": platform.python_version(),
        "platform": platform.platform(),
    }

def repeat_median(
    measure: Callable[[], dict], *, key: str, repeats: int = 5
) -> dict:
    """Run a measurement several times and report the median of ``key``.

    Single-shot timings on multi-core hosts are noisy — scheduler
    interference, turbo states, page-cache effects — so speedup claims
    need medians over repeats (the ROADMAP's multi-run statistical
    benchmarking item).  ``measure`` returns a measurement dict whose
    ``key`` entry is the metric of interest; the result carries the
    median/min/max of that metric across ``repeats`` runs, all raw
    values, and ``sample`` — the run whose metric is closest to the
    median (use its other fields for reporting, so every reported
    number comes from one actual run).
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    samples = [measure() for _ in range(repeats)]
    values = sorted(float(s[key]) for s in samples)
    mid = len(values) // 2
    if len(values) % 2:
        median = values[mid]
    else:
        median = (values[mid - 1] + values[mid]) / 2
    sample = min(samples, key=lambda s: abs(float(s[key]) - median))
    return {
        "median": median,
        "min": values[0],
        "max": values[-1],
        "repeats": repeats,
        "values": values,
        "sample": sample,
    }


#: Global registry of experiment tables, printed by the conftest hook.
ALL_TABLES: list["TableCollector"] = []

#: Machine-readable reports: ``(filename, build)`` pairs.  At session
#: end, ``benchmarks/conftest.py`` calls each ``build()`` and writes the
#: returned payload as JSON to ``<repo root>/<filename>``; a ``None``
#: payload (no rows collected this session) is skipped.
JSON_REPORTS: list[tuple[str, Callable[[], dict | None]]] = []


class TableCollector:
    """Accumulates paper-vs-measured rows for one experiment."""

    def __init__(self, title: str, columns: list[str] | None = None) -> None:
        self.title = title
        self.columns = columns
        self.rows: list[dict[str, object]] = []
        ALL_TABLES.append(self)

    def add(self, row: dict[str, object]) -> None:
        self.rows.append(row)

    def render(self) -> str | None:
        if not self.rows:
            return None
        return render_table(self.rows, self.columns, title=self.title)
