"""Performance-regression gate over the committed benchmark baselines.

Compares freshly generated benchmark reports (``BENCH_engine.json``,
``BENCH_modelcheck.json`` at the repository root) against the committed
baselines in ``benchmarks/baselines/`` and exits non-zero when any
tracked speedup dropped by more than the threshold (default 10%)::

    pytest benchmarks/ --benchmark-only -q     # regenerate the reports
    python benchmarks/check_regression.py      # gate against baselines

Only *drops* fail the gate — a faster-than-baseline run passes (refresh
the baselines with ``--update-baselines`` when an improvement is
intentional).  A report or speedup key present in the baseline but
missing from the fresh run also fails: silently losing coverage is
itself a regression.

Reports embed the host shape they were measured on; when the current
host differs from the baseline's (different CPU model or core count)
the gate still runs but prints a warning — cross-host comparisons are
informative, not authoritative.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: ``report filename -> keys of its tracked speedup dicts``.  A report
#: may track several independent ratios (the engine report gates both
#: the incremental/full and the columnar/incremental speedups).
TRACKED: dict[str, tuple[str, ...]] = {
    "BENCH_engine.json": (
        "speedup_incremental_over_full",
        "speedup_columnar_over_incremental",
        "speedup_columnar_over_incremental_by_protocol",
        "speedup_parallel_regions_over_serial",
    ),
    "BENCH_modelcheck.json": ("speedup_memo_over_direct",),
    "BENCH_chaos.json": ("campaign_steps_per_sec",),
    "BENCH_parallel.json": ("speedup_parallel_over_serial",),
    "BENCH_telemetry.json": ("telemetry_throughput",),
    "BENCH_messaging.json": ("delivered_messages_per_sec",),
    "BENCH_service.json": ("wave_requests_per_sec",),
}

__all__ = ["compare_speedups", "host_mismatch", "main"]


def compare_speedups(
    baseline: dict[str, float],
    current: dict[str, float],
    threshold: float,
) -> list[str]:
    """Return one failure message per regressed or missing case."""
    failures = []
    for case in sorted(baseline):
        base = baseline[case]
        if case not in current:
            failures.append(f"{case}: missing from current report")
            continue
        now = current[case]
        if base <= 0:
            continue
        drop = (base - now) / base
        if drop > threshold:
            failures.append(
                f"{case}: {base:.2f}x -> {now:.2f}x ({drop:.0%} drop)"
            )
    return failures


def host_mismatch(baseline: dict, current: dict) -> list[str]:
    """Human-readable differences between two reports' host shapes.

    Compares the fields that change what a speedup means (CPU model,
    core count, python version).  Either report missing its ``host``
    block counts as a mismatch — old baselines predate the metadata.
    """
    base_host = baseline.get("host")
    cur_host = current.get("host")
    if not isinstance(base_host, dict) or not isinstance(cur_host, dict):
        return ["host metadata missing from baseline or current report"]
    notes = []
    for field in ("cpu_model", "cpu_count", "python"):
        base, cur = base_host.get(field), cur_host.get(field)
        if base != cur:
            notes.append(f"{field}: baseline {base!r} vs current {cur!r}")
    return notes


def _load_payload(path: Path) -> dict | None:
    if not path.exists():
        return None
    payload = json.loads(path.read_text())
    return payload if isinstance(payload, dict) else None


def _load(path: Path, key: str) -> dict[str, float] | None:
    payload = _load_payload(path)
    if payload is None:
        return None
    speedups = payload.get(key)
    if not isinstance(speedups, dict):
        return None
    return speedups


def update_baselines(baseline_dir: Path, current_dir: Path) -> int:
    """Copy every tracked fresh report over its committed baseline.

    A report is copied only when it carries *every* tracked key — a
    partial report would silently shrink the gate's coverage.
    """
    baseline_dir.mkdir(parents=True, exist_ok=True)
    copied = 0
    for filename, keys in TRACKED.items():
        source = current_dir / filename
        missing = [key for key in keys if _load(source, key) is None]
        if missing:
            print(
                f"{filename}: no fresh report with {missing[0]!r}; not updated"
            )
            continue
        shutil.copyfile(source, baseline_dir / filename)
        print(f"{filename}: baseline updated from {source}")
        copied += 1
    return copied


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="fail on >threshold benchmark speedup regressions"
    )
    parser.add_argument(
        "--baseline-dir",
        type=Path,
        default=REPO_ROOT / "benchmarks" / "baselines",
        help="directory holding the committed baseline reports",
    )
    parser.add_argument(
        "--current-dir",
        type=Path,
        default=REPO_ROOT,
        help="directory holding the freshly generated reports",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        help="maximum tolerated fractional drop (default: 0.10)",
    )
    parser.add_argument(
        "--update-baselines",
        action="store_true",
        help="copy the fresh tracked reports over the committed baselines "
        "instead of gating",
    )
    args = parser.parse_args(argv)

    if args.update_baselines:
        update_baselines(args.baseline_dir, args.current_dir)
        return 0

    exit_code = 0
    for filename, keys in TRACKED.items():
        host_checked = False
        for key in keys:
            baseline = _load(args.baseline_dir / filename, key)
            if baseline is None:
                print(f"{filename}: no baseline with {key!r}; skipped")
                continue
            current = _load(args.current_dir / filename, key)
            if current is None:
                print(
                    f"{filename}: FAIL — no current report with {key!r} "
                    f"in {args.current_dir} (run the benchmarks first)"
                )
                exit_code = 1
                continue
            if not host_checked:
                host_checked = True
                mismatches = host_mismatch(
                    _load_payload(args.baseline_dir / filename) or {},
                    _load_payload(args.current_dir / filename) or {},
                )
                for note in mismatches:
                    print(f"{filename}: WARNING host shape differs — {note}")
            failures = compare_speedups(baseline, current, args.threshold)
            if failures:
                print(f"{filename}: FAIL ({key})")
                for line in failures:
                    print(f"  {line}")
                exit_code = 1
            else:
                print(
                    f"{filename}: ok ({key}, {len(baseline)} cases "
                    f"within threshold)"
                )
    return exit_code


if __name__ == "__main__":
    raise SystemExit(main())
