"""Performance-regression gate over the committed benchmark baselines.

Compares freshly generated benchmark reports (``BENCH_engine.json``,
``BENCH_modelcheck.json`` at the repository root) against the committed
baselines in ``benchmarks/baselines/`` and exits non-zero when any
tracked speedup dropped by more than the threshold (default 10%)::

    pytest benchmarks/ --benchmark-only -q     # regenerate the reports
    python benchmarks/check_regression.py      # gate against baselines

Only *drops* fail the gate — a faster-than-baseline run passes (refresh
the baseline when an improvement is intentional).  A report or speedup
key present in the baseline but missing from the fresh run also fails:
silently losing coverage is itself a regression.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: ``report filename -> key of its tracked speedup dict``.
TRACKED: dict[str, str] = {
    "BENCH_engine.json": "speedup_incremental_over_full",
    "BENCH_modelcheck.json": "speedup_memo_over_direct",
    "BENCH_chaos.json": "campaign_steps_per_sec",
}

__all__ = ["compare_speedups", "main"]


def compare_speedups(
    baseline: dict[str, float],
    current: dict[str, float],
    threshold: float,
) -> list[str]:
    """Return one failure message per regressed or missing case."""
    failures = []
    for case in sorted(baseline):
        base = baseline[case]
        if case not in current:
            failures.append(f"{case}: missing from current report")
            continue
        now = current[case]
        if base <= 0:
            continue
        drop = (base - now) / base
        if drop > threshold:
            failures.append(
                f"{case}: {base:.2f}x -> {now:.2f}x ({drop:.0%} drop)"
            )
    return failures


def _load(path: Path, key: str) -> dict[str, float] | None:
    if not path.exists():
        return None
    payload = json.loads(path.read_text())
    speedups = payload.get(key)
    if not isinstance(speedups, dict):
        return None
    return speedups


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="fail on >threshold benchmark speedup regressions"
    )
    parser.add_argument(
        "--baseline-dir",
        type=Path,
        default=REPO_ROOT / "benchmarks" / "baselines",
        help="directory holding the committed baseline reports",
    )
    parser.add_argument(
        "--current-dir",
        type=Path,
        default=REPO_ROOT,
        help="directory holding the freshly generated reports",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        help="maximum tolerated fractional drop (default: 0.10)",
    )
    args = parser.parse_args(argv)

    exit_code = 0
    for filename, key in TRACKED.items():
        baseline = _load(args.baseline_dir / filename, key)
        if baseline is None:
            print(f"{filename}: no baseline with {key!r}; skipped")
            continue
        current = _load(args.current_dir / filename, key)
        if current is None:
            print(
                f"{filename}: FAIL — no current report with {key!r} "
                f"in {args.current_dir} (run the benchmarks first)"
            )
            exit_code = 1
            continue
        failures = compare_speedups(baseline, current, args.threshold)
        if failures:
            print(f"{filename}: FAIL ({key})")
            for line in failures:
                print(f"  {line}")
            exit_code = 1
        else:
            print(f"{filename}: ok ({len(baseline)} cases within threshold)")
    return exit_code


if __name__ == "__main__":
    raise SystemExit(main())
