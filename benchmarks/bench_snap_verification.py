"""E6 — the snap property itself (Definition 1 + Specification 1).

Two regimes:

* **Exhaustive** (model checking): on 3-processor networks, every
  initiation configuration × every daemon choice is explored; PIF1/PIF2
  must hold on every path.  On 4-processor networks a capped prefix of
  the configuration space is explored.
* **Randomized**: on larger networks, thousands of corrupted starts
  under asynchronous daemons; every completed root-initiated wave must
  satisfy the specification.

The paper's claim is zero violations — the table reports the counts.
"""

from __future__ import annotations

from random import Random

import pytest

from repro.core.monitor import PifCycleMonitor
from repro.core.pif import SnapPif
from repro.graphs import complete, line, random_connected, ring, star
from repro.runtime.daemons import (
    AdversarialDaemon,
    DistributedRandomDaemon,
    WeaklyFairDaemon,
)
from repro.runtime.simulator import Simulator
from repro.verification import check_snap_safety

from benchmarks.common import TableCollector

TABLE = TableCollector(
    "E6 — snap property: PIF1 ∧ PIF2 for every initiated wave",
    columns=[
        "regime",
        "network",
        "initial configurations",
        "states / waves",
        "violations",
    ],
)


@pytest.mark.parametrize(
    "net", [line(3), complete(3)], ids=lambda n: n.name
)
def test_exhaustive_snap_safety(net, benchmark) -> None:
    result = benchmark.pedantic(
        lambda: check_snap_safety(net), rounds=1, iterations=1
    )
    TABLE.add(
        {
            "regime": "exhaustive",
            "network": net.name,
            "initial configurations": result.configurations_checked,
            "states / waves": result.states_explored,
            "violations": len(result.counterexamples),
        }
    )
    assert result.ok and result.complete


def test_exhaustive_snap_safety_line4_capped(benchmark) -> None:
    net = line(4)
    result = benchmark.pedantic(
        lambda: check_snap_safety(net, max_configurations=4000),
        rounds=1,
        iterations=1,
    )
    TABLE.add(
        {
            "regime": "exhaustive (capped)",
            "network": net.name,
            "initial configurations": result.configurations_checked,
            "states / waves": result.states_explored,
            "violations": len(result.counterexamples),
        }
    )
    assert result.ok


@pytest.mark.parametrize(
    "net",
    [ring(8), star(10), random_connected(10, 0.25, seed=2)],
    ids=lambda n: n.name,
)
def test_randomized_snap_safety(net, benchmark) -> None:
    protocol = SnapPif.for_network(net)
    daemons = [
        lambda: DistributedRandomDaemon(0.5),
        lambda: WeaklyFairDaemon(AdversarialDaemon(patience=4), patience=8),
    ]

    def run_many() -> tuple[int, int]:
        waves = 0
        violations = 0
        for seed in range(60):
            config = protocol.random_configuration(net, Random(seed))
            monitor = PifCycleMonitor(protocol, net)
            sim = Simulator(
                protocol,
                net,
                daemons[seed % 2](),
                configuration=config,
                seed=seed,
                monitors=[monitor],
            )
            sim.run(
                until=lambda _c: len(monitor.completed_cycles) >= 2,
                max_steps=40_000,
            )
            waves += len(monitor.completed_cycles)
            violations += sum(
                1 for c in monitor.completed_cycles if not c.ok
            )
        return waves, violations

    waves, violations = benchmark.pedantic(run_many, rounds=1, iterations=1)
    TABLE.add(
        {
            "regime": "randomized",
            "network": net.name,
            "initial configurations": 60,
            "states / waves": waves,
            "violations": violations,
        }
    )
    assert waves >= 120
    assert violations == 0


CONV_TABLE = TableCollector(
    "E6b — exhaustive convergence & closure (synchronous; full state space)",
    columns=["check", "network", "configurations", "violations"],
)


@pytest.mark.parametrize("net", [line(3), complete(3)], ids=lambda n: n.name)
def test_exhaustive_convergence(net, benchmark) -> None:
    from repro.verification import check_convergence_synchronous

    result = benchmark.pedantic(
        lambda: check_convergence_synchronous(net, stride=3),
        rounds=1,
        iterations=1,
    )
    CONV_TABLE.add(
        {
            "check": "convergence to SBN (stride 3)",
            "network": net.name,
            "configurations": result.configurations_checked,
            "violations": len(result.counterexamples),
        }
    )
    assert result.ok


@pytest.mark.parametrize("net", [line(3), complete(3)], ids=lambda n: n.name)
def test_exhaustive_normal_closure(net, benchmark) -> None:
    from repro.verification import check_normal_closure

    result = benchmark.pedantic(
        lambda: check_normal_closure(net), rounds=1, iterations=1
    )
    CONV_TABLE.add(
        {
            "check": "closure of normal configurations",
            "network": net.name,
            "configurations": result.configurations_checked,
            "violations": len(result.counterexamples),
        }
    )
    assert result.ok and result.complete
