"""E8 — complexity shape: cycle rounds and moves vs N across topology families.

The paper's analysis predicts cycle cost linear in the built tree height
``h``: ~``N`` rounds on deep topologies (line), ~constant rounds on
shallow ones (star, complete), ~``√N`` on grids, ~``log N`` on
hypercubes.  This bench sweeps sizes per family and reports rounds,
moves, and the rounds/h ratio (which should be a small constant ≤ 5 per
Theorem 4).
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import measure_cycles
from repro.graphs import by_name

from benchmarks.common import TableCollector

TABLE = TableCollector(
    "E8 — scalability: one PIF cycle per (family, N), synchronous daemon",
    columns=["family", "n", "h", "rounds", "rounds/h", "moves"],
)

SWEEP = [
    ("line", [8, 16, 32, 64]),
    ("ring", [8, 16, 32, 64]),
    ("star", [8, 16, 32, 64]),
    ("complete", [8, 16, 24]),
    ("grid", [9, 16, 36, 64]),
    ("hypercube", [8, 16, 32, 64]),
    ("random-tree", [8, 16, 32, 64]),
    ("random-sparse", [8, 16, 32, 64]),
    ("random-dense", [8, 16, 32]),
]

CASES = [(family, n) for family, sizes in SWEEP for n in sizes]


@pytest.mark.parametrize(
    "family,n", CASES, ids=[f"{f}-{n}" for f, n in CASES]
)
def test_cycle_cost_scaling(family: str, n: int, benchmark) -> None:
    net = by_name(family, n)

    def run():
        protocol_run = measure_cycles(net, cycles=1)
        return protocol_run

    measurement = benchmark.pedantic(run, rounds=1, iterations=1)
    rounds = measurement.cycle_rounds[0]
    height = measurement.heights[0]

    # Moves for the measured cycle: re-run quickly via the monitor data.
    from repro.core.monitor import PifCycleMonitor
    from repro.core.pif import SnapPif
    from repro.runtime.simulator import Simulator

    protocol = SnapPif.for_network(net)
    monitor = PifCycleMonitor(protocol, net)
    sim = Simulator(protocol, net, monitors=[monitor])
    sim.run(until=lambda _c: len(monitor.completed_cycles) >= 1)
    moves = monitor.completed_cycles[0].moves

    TABLE.add(
        {
            "family": family,
            "n": net.n,
            "h": height,
            "rounds": rounds,
            "rounds/h": round(rounds / max(1, height), 2),
            "moves": moves,
        }
    )
    assert measurement.within_bound
    assert rounds / max(1, height) <= 5 + 5 / max(1, height)


STATS_TABLE = TableCollector(
    "E8b — cycle cost under asynchrony (10 seeds per row)",
    columns=[
        "topology",
        "daemon",
        "samples",
        "rounds min/mean/max",
        "moves min/mean/max",
        "h max",
        "bound 5h+5",
        "within",
    ],
)


@pytest.mark.parametrize(
    "family,n", [("line", 16), ("grid", 16), ("random-dense", 16)],
    ids=lambda v: str(v),
)
@pytest.mark.parametrize("probability", [0.3, 0.7])
def test_async_cycle_statistics(family, n, probability, benchmark) -> None:
    from repro.analysis.complexity import collect_cycle_stats
    from repro.runtime.daemons import DistributedRandomDaemon

    net = by_name(family, n)
    stats = benchmark.pedantic(
        lambda: collect_cycle_stats(
            net,
            daemon_factory=lambda: DistributedRandomDaemon(probability),
            seeds=range(10),
        ),
        rounds=1,
        iterations=1,
    )
    row = stats.row()
    row["daemon"] = f"async-{probability}"
    STATS_TABLE.add(row)
    assert stats.within_bound
