"""C-chaos — chaos campaign throughput per scenario shape.

Drives the genuine snap PIF through every standard fault-scenario shape
(mid-run corruption, crash/recover, link churn, daemon swaps, rolling
outage, full chaos) under two daemons on a ring and a sparse random
graph, and reports campaign steps/second per shape.  Each measurement is
also a correctness canary: the campaign must finish with zero
specification violations — snap stabilization under fire, at benchmark
scale.

Results are written to ``BENCH_chaos.json`` at the repository root and
gated by ``benchmarks/check_regression.py``::

    pytest benchmarks/bench_chaos.py --benchmark-only -q

The campaigns honor the ``REPRO_JOBS`` jobs axis (``repro bench chaos
--jobs N`` sets it), fanning grid cells across a process pool with
results identical to the serial run; ``benchmarks/bench_parallel.py``
measures that axis explicitly.
"""

from __future__ import annotations

import time

import pytest

from repro.chaos import SCENARIO_SHAPES, run_campaign
from repro.graphs import random_connected, ring

from benchmarks.common import JSON_REPORTS, TableCollector

TABLE = TableCollector(
    "C-chaos — campaign throughput per fault-scenario shape",
    columns=[
        "scenario", "runs", "steps", "faults", "seconds", "steps/sec",
    ],
)

NETWORKS = [ring(12), random_connected(16, 0.2, seed=7)]
DAEMONS = ("central", "distributed-random")
BUDGET = 400

#: ``scenario -> {"steps": ..., "seconds": ..., "steps_per_sec": ...}``
RESULTS: dict[str, dict[str, float]] = {}


def _measure(shape_name: str) -> dict[str, float]:
    scenario = SCENARIO_SHAPES[shape_name]().seeded(0)
    start = time.perf_counter()
    result = run_campaign(
        None,
        NETWORKS,
        [scenario],
        daemons=DAEMONS,
        seeds=(0,),
        budget=BUDGET,
    )
    elapsed = time.perf_counter() - start
    assert result.ok, [r.violation for r in result.violations]
    return {
        "runs": len(result.runs),
        "steps": result.total_steps,
        "faults": result.total_faults,
        "seconds": elapsed,
        "steps_per_sec": result.total_steps / elapsed if elapsed > 0 else 0.0,
    }


@pytest.mark.parametrize("shape", sorted(SCENARIO_SHAPES))
def test_campaign_throughput(shape: str, benchmark) -> None:
    measurement = benchmark.pedantic(
        lambda: _measure(shape), rounds=1, iterations=1
    )
    RESULTS[shape] = measurement
    TABLE.add(
        {
            "scenario": shape,
            "runs": int(measurement["runs"]),
            "steps": int(measurement["steps"]),
            "faults": int(measurement["faults"]),
            "seconds": round(measurement["seconds"], 4),
            "steps/sec": round(measurement["steps_per_sec"]),
        }
    )
    assert measurement["steps"] > 0 and measurement["faults"] > 0


def _build_report() -> dict | None:
    if not RESULTS:
        return None
    return {
        "benchmark": "chaos campaign throughput per scenario shape",
        "workload": (
            f"snap PIF, ring-12 + random-16, daemons {list(DAEMONS)}, "
            f"budget {BUDGET} steps/run, seed 0"
        ),
        "cases": [
            {
                "scenario": shape,
                "runs": int(m["runs"]),
                "steps": int(m["steps"]),
                "faults": int(m["faults"]),
                "seconds": m["seconds"],
                "steps_per_sec": m["steps_per_sec"],
            }
            for shape, m in sorted(RESULTS.items())
        ],
        "campaign_steps_per_sec": {
            shape: round(m["steps_per_sec"], 2)
            for shape, m in sorted(RESULTS.items())
        },
    }


JSON_REPORTS.append(("BENCH_chaos.json", _build_report))
