"""Regenerate the chaos regression corpus under ``tests/corpus/``.

For every broken protocol mutant, hunt the standard falsification grid
for a violation, shrink its tape with ddmin, and persist the reproducer
as ``tests/corpus/<mutant>.json``.  Tier-1
(``tests/chaos/test_corpus.py``) replays every file in that directory
forever after, so a once-found bug signature can never silently return.

Run from the repo root::

    PYTHONPATH=src:. python tools/make_corpus.py
"""

from __future__ import annotations

import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))
sys.path.insert(0, str(ROOT))

from repro.chaos import (
    falsify,
    message_chaos,
    replay_repro,
    save_repro,
    standard_scenarios,
)
from repro.graphs import line, random_connected, ring, star

from tests.mutants.protocols import MUTANT_FACTORIES, REGISTRY

NETWORKS = [line(5), ring(6), random_connected(7, 0.4, seed=2)]

#: Mutants whose planted bug only manifests under lossy message passing:
#: hunted over the message transport on a star (where the reliable run
#: is provably latent) under the synchronous daemon.
MESSAGE_MUTANTS = {"mutant-lossy-count"}
MESSAGE_NETWORKS = [star(6), star(8)]


def main() -> int:
    corpus = ROOT / "tests" / "corpus"
    corpus.mkdir(parents=True, exist_ok=True)
    failed = False
    for name, factory in sorted(MUTANT_FACTORIES.items()):
        if name in MESSAGE_MUTANTS:
            repro = falsify(
                factory,
                MESSAGE_NETWORKS,
                [message_chaos().seeded(s) for s in range(4)],
                daemons=("synchronous", "central"),
                seeds=(0, 1, 2),
                budget=400,
                max_tests=3000,
                transport="message",
            )
        else:
            repro = falsify(
                factory,
                NETWORKS,
                standard_scenarios(),
                budget=400,
                max_tests=3000,
            )
        if repro is None:
            print(f"{name}: falsification FAILED — no shrinkable violation")
            failed = True
            continue
        replayed = replay_repro(repro, REGISTRY)
        assert replayed == repro.violation, (name, replayed)
        path = corpus / f"{name}.json"
        save_repro(repro, path)
        print(
            f"{name}: {repro.original_entries} -> {repro.shrunk_entries} "
            f"entries ({repro.shrink_tests} tests) on {repro.topology} / "
            f"{repro.daemon} / {repro.scenario} seed {repro.seed} -> {path}"
        )
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
