"""Table renderers for telemetry traces and metric snapshots.

``repro stats`` feeds a JSONL trace (written by the telemetry sink)
through these helpers; benchmarks and tests can call them directly on a
live :class:`~repro.telemetry.MetricsSnapshot`.
"""

from __future__ import annotations

from repro.reporting.tables import render_table
from repro.telemetry import MetricsSnapshot

__all__ = ["render_metrics", "render_spans", "render_trace", "merge_trace"]


def render_metrics(
    snapshot: MetricsSnapshot, *, title: str | None = "metrics"
) -> str:
    """Render a metrics snapshot as one table, one row per metric.

    Counters show their value; gauges their last value; histograms
    their observation count, mean, and total.
    """
    rows = []
    for name in sorted(snapshot.metrics):
        payload = snapshot.metrics[name]
        kind = payload.get("kind")
        if kind == "counter":
            rows.append({"metric": name, "kind": kind,
                         "value": payload["value"]})
        elif kind == "gauge":
            rows.append({"metric": name, "kind": kind,
                         "value": payload["value"]})
        elif kind == "histogram":
            count = payload["count"]
            mean = payload["total"] / count if count else 0.0
            rows.append({
                "metric": name,
                "kind": kind,
                "value": count,
                "mean": f"{mean:.6g}",
                "total": f"{payload['total']:.6g}",
            })
        else:
            rows.append({"metric": name, "kind": str(kind), "value": "?"})
    if not rows:
        return f"{title}: (empty)" if title else "(empty)"
    return render_table(
        rows, columns=["metric", "kind", "value", "mean", "total"],
        title=title,
    )


def render_spans(records: list[dict], *, title: str | None = "spans") -> str:
    """Aggregate span records from a trace into a per-name table."""
    by_name: dict[str, dict] = {}
    for record in records:
        if record.get("type") != "span":
            continue
        name = record.get("name", "?")
        agg = by_name.setdefault(
            name, {"count": 0, "total": 0.0, "max": 0.0}
        )
        seconds = float(record.get("seconds", 0.0))
        agg["count"] += 1
        agg["total"] += seconds
        agg["max"] = max(agg["max"], seconds)
    rows = [
        {
            "span": name,
            "count": agg["count"],
            "mean s": f"{agg['total'] / agg['count']:.6g}",
            "max s": f"{agg['max']:.6g}",
            "total s": f"{agg['total']:.6g}",
        }
        for name, agg in sorted(by_name.items())
    ]
    if not rows:
        return f"{title}: (none)" if title else "(none)"
    return render_table(rows, title=title)


def merge_trace(records: list[dict]) -> MetricsSnapshot:
    """Merge every metrics record in a trace, in file order.

    Traces usually hold one final snapshot per command, but a long
    session may append several; merging in file order follows the same
    serial-order rule as the cross-shard aggregation.
    """
    merged = MetricsSnapshot()
    for record in records:
        if record.get("type") == "metrics":
            merged.merge(MetricsSnapshot(metrics=record.get("metrics", {})))
    return merged


def render_trace(records: list[dict]) -> str:
    """Render a whole JSONL trace: merged metrics plus span aggregates."""
    sections = [render_metrics(merge_trace(records))]
    spans = render_spans(records)
    sections.append(spans)
    return "\n\n".join(sections)
