"""Reporting helpers shared by benchmarks and examples."""

from repro.reporting.checks import render_model_check
from repro.reporting.tables import format_check, render_table

__all__ = ["format_check", "render_model_check", "render_table"]

from repro.reporting.render import (
    PhaseTimeline,
    render_configuration,
    render_forest,
    render_phases,
)

__all__ += [
    "PhaseTimeline",
    "render_configuration",
    "render_forest",
    "render_phases",
]

from repro.reporting.campaign import campaign_to_dict, render_campaign

__all__ += ["campaign_to_dict", "render_campaign"]

from repro.reporting.telemetry import (
    merge_trace,
    render_metrics,
    render_spans,
    render_trace,
)

__all__ += ["merge_trace", "render_metrics", "render_spans", "render_trace"]

from repro.reporting.service import render_service

__all__ += ["render_service"]
