"""Rendering of model-check results and their instrumentation.

The verification CLI (``repro verify``) and examples print
:class:`~repro.verification.model_check.ModelCheckResult` objects with
:func:`render_model_check`: one verdict line, the coverage counters, and
— when the checker collected a stats block — the memo/interning/
throughput instrumentation of the run.
"""

from __future__ import annotations

from repro.verification.model_check import ModelCheckResult

__all__ = ["render_model_check"]


def render_model_check(result: ModelCheckResult) -> str:
    """Render a model-check result as a small multi-line report."""
    verdict = "PASS" if result.ok else "FAIL"
    lines = [
        f"{result.property_name}: {verdict}"
        + ("" if result.complete else " (incomplete)")
    ]
    lines.append(
        f"  configurations={result.configurations_checked} "
        f"states={result.states_explored} "
        f"transitions={result.transitions_explored}"
    )
    if result.truncation:
        lines.append(f"  truncated: {result.truncation}")
    if not result.ok:
        lines.append(f"  counterexamples: {len(result.counterexamples)}")
    stats = result.stats
    if stats is not None:
        lines.append(
            f"  time={stats.elapsed_seconds:.2f}s "
            f"states/s={stats.states_per_second:,.0f} "
            f"memo={'on' if stats.memo_enabled else 'off'}"
        )
        if stats.memo_enabled:
            lines.append(
                f"  transition memo: {stats.memo_entries} entries "
                f"(cap {stats.memo_capacity}), "
                f"hit rate {stats.memo_hit_rate:.1%}, "
                f"{stats.memo_evictions} evictions"
            )
            lines.append(
                f"  view memo: hit rate {stats.view_hit_rate:.1%}; "
                f"interned {stats.interned_configurations} configurations "
                f"(dedup ratio {stats.interning_ratio:.1%})"
            )
            if stats.peak_parent_entries:
                lines.append(
                    f"  peak schedule-reconstruction entries: "
                    f"{stats.peak_parent_entries}"
                )
    return "\n".join(lines)
