"""Human-readable rendering of PIF configurations and executions.

Debugging a self-stabilizing protocol is mostly *reading
configurations*; this module renders them:

* :func:`render_phases` — one-line ``B F C …`` phase map;
* :func:`render_configuration` — per-node variable table with a
  normality verdict per processor;
* :func:`render_forest` — the parent-pointer forest (legal tree plus
  stale trees), drawn as an indented ASCII tree;
* :class:`PhaseTimeline` — a simulation monitor collecting one phase map
  per round, rendered as a waterfall (used by the examples).
"""

from __future__ import annotations

from repro.core import definitions as defs
from repro.core.state import Phase, PifConstants
from repro.runtime.network import Network
from repro.runtime.state import Configuration
from repro.runtime.trace import StepRecord

__all__ = [
    "render_phases",
    "render_configuration",
    "render_forest",
    "PhaseTimeline",
]


def render_phases(configuration: Configuration) -> str:
    """One character per processor: its current phase."""
    return " ".join(
        defs.pif_state(configuration, p).pif.value
        for p in range(len(configuration))
    )


def render_configuration(
    configuration: Configuration, network: Network, k: PifConstants
) -> str:
    """A per-node variable table with normality verdicts."""
    abnormal = defs.abnormal_nodes(configuration, network, k)
    members = defs.legal_tree(configuration, network, k)
    lines = ["node | Pif | Par | L | Count | Fok | status"]
    lines.append("-----+-----+-----+---+-------+-----+--------")
    for p in network.nodes:
        s = defs.pif_state(configuration, p)
        par = "⊥" if s.par is None else str(s.par)
        fok = "T" if s.fok else "f"
        status = "ABNORMAL" if p in abnormal else (
            "legal-tree" if p in members else ""
        )
        marker = "r" if p == k.root else " "
        lines.append(
            f"{p:3d}{marker} |  {s.pif.value}  | {par:>3s} | {s.level} | "
            f"{s.count:5d} |  {fok}  | {status}"
        )
    return "\n".join(lines)


def _draw_tree(
    configuration: Configuration,
    network: Network,
    members: frozenset[int],
    node: int,
    prefix: str,
    lines: list[str],
) -> None:
    children = sorted(
        defs.tree_children(configuration, network, members, node)
    )
    for i, child in enumerate(children):
        last = i == len(children) - 1
        state = defs.pif_state(configuration, child)
        lines.append(
            f"{prefix}{'└── ' if last else '├── '}{child} "
            f"[{state.pif.value} L{state.level} c{state.count}"
            f"{' Fok' if state.fok else ''}]"
        )
        _draw_tree(
            configuration,
            network,
            members,
            child,
            prefix + ("    " if last else "│   "),
            lines,
        )


def render_forest(
    configuration: Configuration, network: Network, k: PifConstants
) -> str:
    """Draw the legal tree and every stale tree of the configuration."""
    lines: list[str] = []
    trees = defs.all_trees(configuration, network, k)
    for extremity in sorted(trees):
        members = trees[extremity]
        state = defs.pif_state(configuration, extremity)
        kind = "LegalTree" if extremity == k.root else "stale tree"
        lines.append(
            f"{kind} rooted at {extremity} "
            f"[{state.pif.value} L{state.level} c{state.count}"
            f"{' Fok' if state.fok else ''}] ({len(members)} nodes)"
        )
        _draw_tree(configuration, network, members, extremity, "  ", lines)
    clean = [
        p
        for p in network.nodes
        if defs.pif_state(configuration, p).pif is Phase.C
        and all(p not in t for t in trees.values())
    ]
    if clean:
        lines.append(f"clean (phase C): {clean}")
    if not lines:
        lines.append("(empty forest)")
    return "\n".join(lines)


class PhaseTimeline:
    """Simulation monitor: one phase map per completed round.

    Attach to a :class:`~repro.runtime.simulator.Simulator`; render with
    :meth:`render`.
    """

    def __init__(self) -> None:
        self.rows: list[tuple[int, str]] = []
        self._round = 0

    def on_start(self, configuration: Configuration) -> None:
        self.rows = [(0, render_phases(configuration))]
        self._round = 0

    def on_step(
        self, before: Configuration, record: StepRecord, after: Configuration
    ) -> None:
        if record.rounds_completed:
            self._round += record.rounds_completed
            self.rows.append((self._round, render_phases(after)))

    def render(self) -> str:
        """The waterfall: ``round | phases``."""
        lines = ["round | phases"]
        lines.append("------+" + "-" * max(
            (len(r[1]) for r in self.rows), default=8
        ))
        lines.extend(f"{rnd:5d} | {phases}" for rnd, phases in self.rows)
        return "\n".join(lines)
