"""Minimal ASCII table rendering for benchmark and experiment output.

The benches print the paper-vs-measured tables with these helpers so
every experiment's output has the same shape, and EXPERIMENTS.md rows
can be pasted from the bench output directly.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

__all__ = ["render_table", "format_check"]


def format_check(ok: bool) -> str:
    """Render a within-bound verdict."""
    return "yes" if ok else "NO"


def render_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    *,
    title: str | None = None,
) -> str:
    """Render dict rows as a fixed-width ASCII table.

    ``columns`` defaults to the union of keys in first-seen order.
    """
    if columns is None:
        seen: dict[str, None] = {}
        for row in rows:
            for key in row:
                seen.setdefault(key)
        columns = list(seen)

    def cell(row: Mapping[str, object], col: str) -> str:
        value = row.get(col, "")
        if isinstance(value, float):
            return f"{value:.2f}"
        return str(value)

    widths = {
        col: max(len(col), *(len(cell(r, col)) for r in rows)) if rows else len(col)
        for col in columns
    }
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(col.ljust(widths[col]) for col in columns)
    lines.append(header)
    lines.append("-+-".join("-" * widths[col] for col in columns))
    for row in rows:
        lines.append(
            " | ".join(cell(row, col).ljust(widths[col]) for col in columns)
        )
    return "\n".join(lines)
