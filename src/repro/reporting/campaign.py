"""Rendering of chaos-campaign results.

The chaos CLI (``repro chaos``) and the examples print
:class:`~repro.chaos.campaign.CampaignResult` objects with
:func:`render_campaign`: one verdict line, a scenario × daemon summary
table aggregating the sweep, and a detail line per violating run (the
data a reader needs to re-run :func:`~repro.chaos.shrink.shrink_run`).
"""

from __future__ import annotations

from repro.chaos.campaign import CampaignResult
from repro.reporting.tables import render_table

__all__ = ["render_campaign", "campaign_to_dict"]


def render_campaign(result: CampaignResult, *, title: str | None = None) -> str:
    """Render a campaign result as a verdict plus a summary table."""
    verdict = "PASS" if result.ok else "FAIL"
    lines = [
        f"chaos campaign: {verdict} — {len(result.runs)} runs, "
        f"{len(result.violations)} violation(s), "
        f"{result.total_steps} steps, {result.total_faults} faults applied"
    ]

    grouped: dict[tuple[str, str], dict[str, int]] = {}
    for run in result.runs:
        agg = grouped.setdefault(
            (run.scenario, run.daemon),
            {
                "runs": 0,
                "violations": 0,
                "steps": 0,
                "faults": 0,
                "cycles": 0,
            },
        )
        agg["runs"] += 1
        agg["violations"] += 0 if run.ok else 1
        agg["steps"] += run.steps
        agg["faults"] += run.faults_applied
        agg["cycles"] += run.cycles_completed
    rows = [
        {
            "scenario": scenario,
            "daemon": daemon,
            "runs": agg["runs"],
            "violations": agg["violations"],
            "steps": agg["steps"],
            "faults": agg["faults"],
            "cycles": agg["cycles"],
        }
        for (scenario, daemon), agg in sorted(grouped.items())
    ]
    if rows:
        lines.append(render_table(rows, title=title))

    for run in result.violations:
        lines.append(
            f"  VIOLATION [{run.scenario} × {run.daemon} × {run.topology} "
            f"× seed {run.seed}] at step {run.violation_step}: {run.violation}"
        )
    return "\n".join(lines)


def campaign_to_dict(result: CampaignResult) -> dict:
    """JSON-friendly summary of a campaign (``repro chaos --json``)."""
    return {
        "ok": result.ok,
        "runs": len(result.runs),
        "violations": len(result.violations),
        "total_steps": result.total_steps,
        "total_faults": result.total_faults,
        "per_run": [
            {
                "scenario": run.scenario,
                "topology": run.topology,
                "daemon": run.daemon,
                "seed": run.seed,
                "transport": run.transport,
                "protocol": run.protocol_name,
                "steps": run.steps,
                "faults_applied": run.faults_applied,
                "faults_skipped": run.faults_skipped,
                "cycles_completed": run.cycles_completed,
                "violation": run.violation,
                "violation_step": run.violation_step,
            }
            for run in result.runs
        ],
    }
