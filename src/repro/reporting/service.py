"""Render the wave service's stats endpoint payload as tables.

``repro serve`` prints this at the end of a serving session (and on
demand); the input is exactly the JSON-able dict returned by
:meth:`repro.service.WaveService.stats`, so anything a remote stats
endpoint would expose renders the same way locally.
"""

from __future__ import annotations

from typing import Mapping

from repro.reporting.tables import render_table

__all__ = ["render_service"]


def render_service(stats: Mapping[str, object]) -> str:
    """Render a ``WaveService.stats()`` payload as ASCII tables."""
    knobs = stats.get("knobs", {})
    header_rows = [
        {
            "accepted": stats.get("accepted", 0),
            "rejected": stats.get("rejected", 0),
            "coalesced": stats.get("requests_coalesced", 0),
            "events": stats.get("events_published", 0),
            "uptime (s)": float(stats.get("uptime_seconds", 0.0)),
        }
    ]
    knob_rows = [
        {
            "batch_window": knobs.get("batch_window"),
            "max_in_flight": knobs.get("max_in_flight"),
            "queue_bound": knobs.get("queue_bound"),
            "jobs": knobs.get("jobs"),
        }
    ]
    topo_rows = [
        {
            "topology": name,
            "nodes": info.get("nodes"),
            "queue": info.get("queue_depth"),
            "waves": info.get("waves_run"),
            "served": info.get("requests_served"),
        }
        for name, info in sorted(stats.get("topologies", {}).items())  # type: ignore[union-attr]
    ]
    parts = [
        render_table(header_rows, title="wave service"),
        render_table(knob_rows, title="knobs"),
    ]
    if topo_rows:
        parts.append(render_table(topo_rows, title="topologies"))
    return "\n\n".join(parts)
