"""Exception hierarchy for the repro package.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch library failures without also
swallowing programming errors such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class TopologyError(ReproError):
    """The supplied network topology is malformed.

    Raised for non-symmetric adjacency, self loops, unknown node
    identifiers, or disconnected graphs where connectivity is required.
    """


class ProtocolError(ReproError):
    """A protocol definition or protocol state is inconsistent.

    Raised, for example, when a statement writes a state for the wrong
    node, or when an action is executed while its guard is false.
    """


class ScheduleError(ReproError):
    """A daemon produced an illegal selection.

    Selections must be non-empty subsets of the enabled processors, and
    each selected processor must execute one of its enabled actions.
    """


class FairnessError(ReproError):
    """Weak fairness was violated by a schedule.

    A continuously enabled processor must eventually execute an action;
    this error reports a processor starved past the configured patience.
    """


class SimulationLimitError(ReproError):
    """A simulation exceeded its step or round budget without finishing."""


class SpecificationViolation(ReproError):
    """An executable specification monitor observed a violation.

    Used by the PIF cycle monitor (conditions [PIF1] and [PIF2]) and by
    invariant checkers when run in assertion mode.
    """


class VerificationError(ReproError):
    """The exhaustive model checker found a counterexample."""
