"""Exception hierarchy for the repro package.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch library failures without also
swallowing programming errors such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class TopologyError(ReproError):
    """The supplied network topology is malformed.

    Raised for non-symmetric adjacency, self loops, unknown node
    identifiers, or disconnected graphs where connectivity is required.
    """


class ProtocolError(ReproError):
    """A protocol definition or protocol state is inconsistent.

    Raised, for example, when a statement writes a state for the wrong
    node, or when an action is executed while its guard is false.
    """


class ScheduleError(ReproError):
    """A daemon produced an illegal selection.

    Selections must be non-empty subsets of the enabled processors, and
    each selected processor must execute one of its enabled actions.
    """


class ReplayError(ScheduleError):
    """A recorded schedule could not be replayed against the live run.

    Carries enough structure for tooling (the chaos shrinker, corpus
    replay) to distinguish a genuinely divergent reproducer from a
    candidate that merely drifted: the 0-based ``step_index`` into the
    schedule, a machine-readable ``reason`` (``"exhausted"``,
    ``"node-not-enabled"``, ``"action-not-enabled"``, ``"empty-step"``
    or ``"stalled"``), the offending ``node``/``action`` when
    applicable, and the ``enabled`` map (node → enabled action names)
    observed at the point of divergence.
    """

    def __init__(
        self,
        message: str,
        *,
        step_index: int,
        reason: str,
        node: int | None = None,
        action: str | None = None,
        enabled: dict[int, list[str]] | None = None,
    ) -> None:
        super().__init__(message)
        self.step_index = step_index
        self.reason = reason
        self.node = node
        self.action = action
        self.enabled = {} if enabled is None else enabled


class FairnessError(ReproError):
    """Weak fairness was violated by a schedule.

    A continuously enabled processor must eventually execute an action;
    this error reports a processor starved past the configured patience.
    """


class SimulationLimitError(ReproError):
    """A simulation exceeded its step or round budget without finishing."""


class SpecificationViolation(ReproError):
    """An executable specification monitor observed a violation.

    Used by the PIF cycle monitor (conditions [PIF1] and [PIF2]) and by
    invariant checkers when run in assertion mode.
    """


class VerificationError(ReproError):
    """The exhaustive model checker found a counterexample."""


class ServiceError(ReproError):
    """A wave-service request or lifecycle operation is invalid.

    Base class for the typed rejections of :mod:`repro.service` — the
    asyncio wave-service layer.  Subclasses distinguish the conditions
    clients are expected to handle programmatically (overload versus
    shutdown versus a malformed request).
    """


class ServiceOverloadedError(ServiceError):
    """The service's bounded request queue is full (backpressure).

    Raised synchronously by ``WaveService.submit`` when a topology's
    pending queue already holds ``queue_bound`` requests.  Clients
    should back off and retry; nothing was enqueued.
    """


class ServiceClosedError(ServiceError):
    """The service is shutting down (or was never started).

    Raised by ``WaveService.submit`` after shutdown began, and set on
    the futures of pending requests abandoned by a non-draining
    shutdown.
    """


class WaveRequestError(ServiceError):
    """A wave request is malformed.

    Unknown request kind, unknown topology name, or invalid arguments
    (e.g. an unsupported infimum operation).  Raised synchronously at
    submission — a malformed request is never enqueued.
    """


class MessagingError(ReproError):
    """A message-passing runtime knob or channel operation is invalid.

    Raised for bad ``REPRO_MESSAGE_MODEL`` / ``REPRO_CHANNEL_CAPACITY``
    / ``REPRO_MESSAGE_HEARTBEAT`` values (zero, negative, non-integer,
    or garbage strings — the error names the offending value and where
    it came from), for out-of-range loss rates and delays, and for
    link-fault events applied to a simulator without channels.
    """
