"""CSR (compressed sparse row) neighbor index for columnar kernels.

A :class:`CSRIndex` flattens a :class:`~repro.runtime.network.Network`'s
per-node neighbor tuples into two flat arrays: ``indices`` concatenates
every node's neighbors *in local order* (the paper's ``≻_p``), and
``indptr[p] : indptr[p+1]`` delimits node ``p``'s slice.  One-hop guard
terms (``Leaf``, ``Sum``, ``Potential`` membership, parent-phase
comparisons) become contiguous scans — or, on the numpy backend,
gather + segment-reduce expressions — over these arrays.

Local order is preserved exactly so tie-breaks (the B-action picking
``min_{≻p}(Potential_p)``) match the object engine bit for bit.
"""

from __future__ import annotations

from array import array

from repro.runtime.network import Network

__all__ = ["CSRIndex"]


class CSRIndex:
    """Flat neighbor index of one network, built once per compile."""

    __slots__ = ("n", "indptr", "indices", "_np_indptr", "_np_indices")

    def __init__(self, network: Network) -> None:
        self.n = network.n
        indptr = array("q", [0])
        indices = array("q")
        for p in network.nodes:
            neighbors = network.neighbors(p)
            indices.extend(neighbors)
            indptr.append(len(indices))
        self.indptr = indptr
        self.indices = indices
        self._np_indptr = None
        self._np_indices = None

    def neighbors(self, p: int):
        """Node ``p``'s neighbor slice, in local order."""
        return self.indices[self.indptr[p] : self.indptr[p + 1]]

    def degree(self, p: int) -> int:
        return self.indptr[p + 1] - self.indptr[p]

    def as_numpy(self):
        """``(indptr, indices)`` as int64 ndarrays (cached)."""
        if self._np_indptr is None:
            import numpy as np

            self._np_indptr = np.asarray(self.indptr, dtype=np.int64)
            self._np_indices = np.asarray(self.indices, dtype=np.int64)
        return self._np_indptr, self._np_indices
