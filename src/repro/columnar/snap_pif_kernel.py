"""The compiled columnar kernel for the snap-stabilizing PIF.

This module translates the guards and statements of Algorithms 1 and 2
(:mod:`repro.core.predicates`, :mod:`repro.core.actions`) into straight
integer arithmetic over flat per-variable columns (``Pif``, ``Par``,
``L``, ``Count``, ``Fok``) plus a CSR neighbor index.  Compilation
happens once per ``(protocol, network)``; afterwards every enabledness
decision is a *mask* — bit ``i`` of node ``p``'s mask says whether
action ``i`` of ``p``'s program is enabled — maintained incrementally
on the dirty region ``U ∪ N(U)`` of each step, exactly like the
object engine's :meth:`~repro.runtime.protocol.Protocol.enabled_map_incremental`.

Why the masks agree with per-node ``Action.enabled`` (DESIGN.md §11):
every guard of Algorithms 1/2 is a boolean combination of (a) the
executing node's own variables, (b) its parent's variables (a gather
through the ``Par`` column, legal because ``Par_p ∈ Neig_p``), and
(c) neighborhood aggregates — existence tests (``Leaf``, ``BLeaf``,
``BFree``, ``Potential ≠ ∅``), a guarded sum (``Sum_p``) and a guarded
minimum (``Potential`` levels) — each a fold over the node's CSR slice.
The kernel evaluates the *same* boolean combination over the *same*
1-hop reads, so a mask bit is set iff the corresponding guard holds.

Two evaluation strategies share that definition:

* **scalar** — a per-node fold over the CSR slice, used by the pure
  backend always and by the numpy backend on small dirty regions
  (vectorization overhead dominates below ~tens of nodes);
* **vectorized** (numpy backend) — gather the neighbor columns for all
  affected rows at once and segment-reduce with ``np.*.reduceat``,
  used for large regions, full recomputes and transient-fault resets.

Both must produce identical masks; ``tests/columnar`` cross-checks
them against each other and against the object engine.

Statements always execute scalarly: selections are typically far
smaller than the mask region, and all statement reads happen against
the pre-step columns before any write is applied — the simultaneous-
write semantics of the model.
"""

from __future__ import annotations

import time
from typing import Mapping

from repro import telemetry as _telemetry
from repro.columnar.block import ColumnBlock
from repro.columnar.csr import CSRIndex
from repro.core.state import PIF_COLUMNS, PifConstants
from repro.errors import ProtocolError
from repro.runtime.network import Network
from repro.runtime.protocol import Action
from repro.runtime.state import Configuration, NodeState
from repro.telemetry.registry import TIME_BOUNDS

__all__ = ["SnapPifKernel", "VECTOR_MIN_NODES"]

#: Phase codes, fixed by the PIF column schema.
_B, _F, _C = 0, 1, 2

#: Below this many affected nodes the numpy backend evaluates masks
#: scalarly — gather/reduce setup costs more than the fold it replaces.
VECTOR_MIN_NODES = 48


class SnapPifKernel:
    """Columnar guard/statement kernel for one ``(SnapPif, Network)`` pair."""

    def __init__(self, protocol, network: Network, backend: str) -> None:
        self.protocol = protocol
        self.network = network
        self.backend = backend
        self.constants: PifConstants = protocol.constants
        self.csr = CSRIndex(network)
        self.n = network.n
        self.root = self.constants.root

        # Program tables: action name -> (mask bit, statement handler).
        root_program = protocol.node_actions(self.root, network)
        self._root_program = root_program
        self._root_dispatch = self._dispatch_table(
            root_program,
            {
                "B-action": self._stmt_b_root,
                "F-action": self._stmt_f,
                "C-action": self._stmt_c,
                "Count-action": self._stmt_count_root,
                "B-correction": self._stmt_c,
            },
        )
        if self.n > 1:
            non_root = 0 if self.root != 0 else 1
            nonroot_program = protocol.node_actions(non_root, network)
        else:
            nonroot_program = ()
        self._nonroot_program = nonroot_program
        self._nonroot_dispatch = self._dispatch_table(
            nonroot_program,
            {
                "B-action": self._stmt_b_nonroot,
                "Fok-action": self._stmt_fok,
                "F-action": self._stmt_f,
                "C-action": self._stmt_c,
                "Count-action": self._stmt_count_nonroot,
                "B-correction": self._stmt_f,
                "F-correction": self._stmt_c,
            },
        )
        self._root_mask_actions: dict[int, tuple[Action, ...]] = {}
        self._nonroot_mask_actions: dict[int, tuple[Action, ...]] = {}

        self.block: ColumnBlock | None = None
        self._masks: list[int] = [0] * self.n
        self._enabled: set[int] = set()

    @staticmethod
    def _dispatch_table(program, handlers) -> dict[str, tuple[int, object]]:
        table = {}
        for bit, action in enumerate(program):
            handler = handlers.get(action.name)
            if handler is None:
                raise ProtocolError(
                    f"no columnar statement for action {action.name!r}"
                )
            table[action.name] = (bit, handler)
        return table

    # ------------------------------------------------------------------
    # Kernel interface (used by ColumnarRuntime)
    # ------------------------------------------------------------------
    def load(self, configuration: Configuration) -> None:
        """(Re-)encode the columns and recompute every mask."""
        if self.block is None or len(configuration) != self.n:
            self.block = ColumnBlock(PIF_COLUMNS, self.backend, configuration)
        else:
            self.block.load(configuration)
        self._bind_columns()
        self._enabled.clear()
        self._recompute_masks(range(self.n))

    def _bind_columns(self) -> None:
        columns = self.block.columns
        self.pif = columns["pif"]
        self.par = columns["par"]
        self.level = columns["level"]
        self.count = columns["count"]
        self.fok = columns["fok"]

    def materialize(self) -> Configuration:
        return self.block.materialize()

    def enabled_map(self) -> dict[int, list[Action]]:
        """``{node: enabled actions}`` in ascending node order.

        Byte-identical (same keys, same order, same ``Action`` objects)
        to :meth:`Protocol.enabled_map` on the materialized
        configuration — the property the lockstep validator asserts.
        """
        masks = self._masks
        root = self.root
        out: dict[int, list[Action]] = {}
        for p in sorted(self._enabled):
            mask = masks[p]
            if p == root:
                actions = self._root_mask_actions.get(mask)
                if actions is None:
                    actions = self._actions_for(self._root_program, mask)
                    self._root_mask_actions[mask] = actions
            else:
                actions = self._nonroot_mask_actions.get(mask)
                if actions is None:
                    actions = self._actions_for(self._nonroot_program, mask)
                    self._nonroot_mask_actions[mask] = actions
            out[p] = list(actions)
        return out

    @staticmethod
    def _actions_for(program, mask: int) -> tuple[Action, ...]:
        return tuple(
            action for i, action in enumerate(program) if mask >> i & 1
        )

    def execute_selection(self, selection: Mapping[int, Action]) -> set[int]:
        """One computation step: simultaneous writes, dirty-region repair."""
        root = self.root
        masks = self._masks
        read_row = self.block.read_row
        pending: list[tuple[int, tuple[int, ...]]] = []
        # Phase 1: every statement reads the pre-step columns.
        for p, action in selection.items():
            dispatch = (
                self._root_dispatch if p == root else self._nonroot_dispatch
            )
            entry = dispatch.get(action.name)
            if entry is None:
                raise ProtocolError(
                    f"action {action.name!r} is not in node {p}'s program"
                )
            bit, handler = entry
            if not masks[p] >> bit & 1:
                raise ProtocolError(
                    f"action {action.name!r} executed at node {p} "
                    f"while its guard is false"
                )
            row = handler(p)
            if row != read_row(p):
                pending.append((p, row))
        # Phase 2: all writes land simultaneously.
        if not pending:
            return set()
        write_row = self.block.write_row
        dirty = set()
        for p, row in pending:
            write_row(p, row)
            dirty.add(p)
        self._refresh(dirty)
        return dirty

    def apply_updates(self, updates: Mapping[int, NodeState]) -> set[int]:
        """Overwrite a subset of node states (targeted transient fault)."""
        encode = PIF_COLUMNS.encode_state
        read_row = self.block.read_row
        write_row = self.block.write_row
        dirty = set()
        for p, state in updates.items():
            row = encode(state)
            if row != read_row(p):
                write_row(p, row)
                dirty.add(p)
        if dirty:
            self._refresh(dirty)
        return dirty

    # ------------------------------------------------------------------
    # Mask maintenance
    # ------------------------------------------------------------------
    def _refresh(self, dirty: set[int]) -> None:
        """Re-evaluate masks on ``dirty ∪ N(dirty)`` (1-hop locality)."""
        affected = set(dirty)
        indptr, indices = self.csr.indptr, self.csr.indices
        for p in dirty:
            affected.update(indices[indptr[p] : indptr[p + 1]])
        if _telemetry.enabled:
            start = time.perf_counter()
            self._recompute_masks(sorted(affected))
            reg = _telemetry.registry
            reg.observe("columnar.mask_eval_nodes", len(affected))
            reg.observe(
                "columnar.mask_eval.seconds",
                time.perf_counter() - start,
                TIME_BOUNDS,
            )
        else:
            self._recompute_masks(sorted(affected))

    def _recompute_masks(self, nodes) -> None:
        if (
            self.backend == "numpy"
            and self.n > 1
            and len(nodes) >= VECTOR_MIN_NODES
        ):
            new_masks = self._masks_vectorized(nodes)
        else:
            mask_of = self._mask_of
            new_masks = [mask_of(p) for p in nodes]
        masks = self._masks
        enabled = self._enabled
        for p, mask in zip(nodes, new_masks):
            masks[p] = mask
            if mask:
                enabled.add(p)
            else:
                enabled.discard(p)

    def _mask_of(self, p: int) -> int:
        if p == self.root:
            return self._mask_root(p)
        return self._mask_nonroot(p)

    def _mask_root(self, p: int) -> int:
        k = self.constants
        pif, par, level, count, fok = (
            self.pif, self.par, self.level, self.count, self.fok,
        )
        indptr, indices = self.csr.indptr, self.csr.indices
        ppif = pif[p]
        child_level = level[p] + 1
        all_clean = True
        has_b = False
        total = 1
        for i in range(indptr[p], indptr[p + 1]):
            q = indices[i]
            qpif = pif[q]
            if qpif != _C:
                all_clean = False
                if qpif == _B:
                    has_b = True
                    if par[q] == p and level[q] == child_level and not fok[q]:
                        total += count[q]
        if ppif == _C:
            return 1 if all_clean else 0  # B-action
        if ppif == _F:
            return 4 if all_clean else 0  # C-action
        # ppif == B
        pcnt = count[p]
        pfok = fok[p]
        good_fok = (not pfok) or pcnt == k.n
        good_count = pfok or pcnt <= total
        if good_fok and good_count:
            mask = 0
            if pfok:
                if not has_b:
                    mask |= 2  # F-action
            elif pcnt < min(total, k.n_prime) or total == k.n:
                mask |= 8  # Count-action (root variant raises Fok)
            return mask
        return 16 if k.corrections else 0  # B-correction

    def _mask_nonroot(self, p: int) -> int:
        k = self.constants
        pif, par, level, count, fok = (
            self.pif, self.par, self.level, self.count, self.fok,
        )
        indptr, indices = self.csr.indptr, self.csr.indices
        ppif = pif[p]
        plev = level[p]
        child_level = plev + 1
        fok_join = k.fok_join_guard
        l_max = k.l_max
        has_active_child = False
        has_b_child = False
        has_b = False
        has_prepot = False
        total = 1
        for i in range(indptr[p], indptr[p + 1]):
            q = indices[i]
            qpif = pif[q]
            if qpif == _B:
                has_b = True
                if par[q] == p:
                    has_active_child = True
                    has_b_child = True
                    if level[q] == child_level and not fok[q]:
                        total += count[q]
                elif level[q] < l_max and not (fok_join and fok[q]):
                    has_prepot = True
            elif qpif == _F and par[q] == p:
                has_active_child = True
        if ppif == _C:
            if has_prepot and not (k.leaf_guard and has_active_child):
                return 1  # B-action
            return 0
        parent = par[p]
        if parent < 0:
            raise ProtocolError(
                f"non-root node {p} has no parent while active "
                f"(out-of-domain state reached the columnar kernel)"
            )
        parent_pif = pif[parent]
        good_level = plev == level[parent] + 1
        parent_fok = fok[parent]
        pfok = fok[p]
        if ppif == _B:
            normal = (
                parent_pif == _B
                and good_level
                and not (pfok and not parent_fok)
                and (pfok or count[p] <= total)
            )
            if not normal:
                return 32 if k.corrections else 0  # B-correction
            mask = 0
            if (not pfok) != (not parent_fok):
                mask |= 2  # Fok-action
            if pfok:
                if not has_b_child:
                    mask |= 4  # F-action
            elif count[p] < min(total, k.n_prime):
                mask |= 16  # Count-action
            return mask
        # ppif == F
        normal = (
            (parent_pif == _F or parent_pif == _B)
            and good_level
            and not (parent_pif == _B and not parent_fok)
        )
        if not normal:
            return 64 if k.corrections else 0  # F-correction
        if not has_active_child and not has_b:
            return 8  # C-action
        return 0

    # ------------------------------------------------------------------
    # Vectorized mask evaluation (numpy backend, large regions)
    # ------------------------------------------------------------------
    def _masks_vectorized(self, nodes) -> list[int]:
        import numpy as np

        k = self.constants
        indptr, indices = self.csr.as_numpy()
        A = np.fromiter(nodes, dtype=np.int64, count=len(nodes))
        pif = np.asarray(self.pif)
        par = np.asarray(self.par)
        level = np.asarray(self.level)
        count = np.asarray(self.count)
        fok = np.asarray(self.fok)

        starts = indptr[A]
        counts = indptr[A + 1] - starts
        if int(counts.min()) == 0:
            # Empty CSR segments break reduceat semantics; degree-0
            # nodes are rare (disconnected churn states) — fold scalarly.
            mask_of = self._mask_of
            return [mask_of(p) for p in nodes]
        offsets = np.zeros(len(A), dtype=np.int64)
        np.cumsum(counts[:-1], out=offsets[1:])
        total_edges = int(offsets[-1] + counts[-1])
        # Edge positions: node i's CSR slice, concatenated in order.
        pos = (
            np.arange(total_edges, dtype=np.int64)
            - np.repeat(offsets, counts)
            + np.repeat(starts, counts)
        )
        nbr = indices[pos]
        owner = np.repeat(A, counts)

        npif = pif[nbr]
        npar = par[nbr]
        nlev = level[nbr]
        nfok = fok[nbr] != 0
        n_is_b = npif == _B
        is_child = npar == owner

        # Neighborhood aggregates, one segment-reduce per term.
        has_active_child = np.bitwise_or.reduceat(
            (npif != _C) & is_child, offsets
        )
        has_b = np.bitwise_or.reduceat(n_is_b, offsets)
        has_b_child = np.bitwise_or.reduceat(n_is_b & is_child, offsets)
        sum_member = (
            n_is_b & is_child & (nlev == level[owner] + 1) & ~nfok
        )
        sums = 1 + np.add.reduceat(
            np.where(sum_member, count[nbr], 0), offsets
        )
        prepot = n_is_b & ~is_child & (nlev < k.l_max)
        if k.fok_join_guard:
            prepot &= ~nfok
        has_prepot = np.bitwise_or.reduceat(prepot, offsets)

        # Own and parent-gather terms.
        pifA = pif[A]
        parA = par[A]
        levA = level[A]
        cntA = count[A]
        fokA = fok[A] != 0
        par_safe = np.where(parA < 0, 0, parA)
        parent_pif = pif[par_safe]
        parent_lev = level[par_safe]
        parent_fok = fok[par_safe] != 0

        is_b = pifA == _B
        is_f = pifA == _F
        is_c = pifA == _C
        good_pif = is_c | (parent_pif == pifA) | (parent_pif == _B)
        good_level = is_c | (levA == parent_lev + 1)
        good_fok = ~(is_b & fokA & ~parent_fok) & ~(
            is_f & (parent_pif == _B) & ~parent_fok
        )
        good_count = ~(is_b & ~fokA) | (cntA <= sums)
        normal = good_pif & good_level & good_fok & good_count

        leaf = ~has_active_child
        broadcast = is_c & has_prepot
        if k.leaf_guard:
            broadcast &= leaf
        changefok = is_b & (fokA != parent_fok) & normal
        feedback = is_b & fokA & ~has_b_child & normal
        cleaning = is_f & leaf & ~has_b & normal
        count_g = (
            is_b & ~fokA & (cntA < np.minimum(sums, k.n_prime)) & normal
        )
        masks = (
            broadcast.astype(np.int64)
            | (changefok.astype(np.int64) << 1)
            | (feedback.astype(np.int64) << 2)
            | (cleaning.astype(np.int64) << 3)
            | (count_g.astype(np.int64) << 4)
        )
        if k.corrections:
            masks |= ((is_b & ~normal).astype(np.int64) << 5) | (
                (is_f & ~normal).astype(np.int64) << 6
            )
        result = masks.tolist()
        # The root runs Algorithm 1, not Algorithm 2: overwrite scalarly.
        root_rows = np.nonzero(A == self.root)[0]
        if root_rows.size:
            result[int(root_rows[0])] = self._mask_root(self.root)
        return result

    # ------------------------------------------------------------------
    # Statements (scalar; all reads precede all writes — see
    # execute_selection)
    # ------------------------------------------------------------------
    def _sum_value(self, p: int) -> int:
        """``Sum_p`` over the columns (raw, unsaturated)."""
        pif, par, level, count, fok = (
            self.pif, self.par, self.level, self.count, self.fok,
        )
        indptr, indices = self.csr.indptr, self.csr.indices
        child_level = level[p] + 1
        total = 1
        for i in range(indptr[p], indptr[p + 1]):
            q = indices[i]
            if (
                pif[q] == _B
                and par[q] == p
                and level[q] == child_level
                and not fok[q]
            ):
                total += count[q]
        return total

    def _row(self, p: int) -> tuple[int, int, int, int, int]:
        return (
            int(self.pif[p]),
            int(self.par[p]),
            int(self.level[p]),
            int(self.count[p]),
            int(self.fok[p]),
        )

    def _stmt_b_root(self, p: int):
        k = self.constants
        row = self._row(p)
        return (_B, row[1], row[2], 1, 1 if k.n == 1 else 0)

    def _stmt_b_nonroot(self, p: int):
        k = self.constants
        pif, par, level, fok = self.pif, self.par, self.level, self.fok
        indptr, indices = self.csr.indptr, self.csr.indices
        fok_join = k.fok_join_guard
        best_level = None
        parent = -1
        # First neighbor (in local order ≻_p) of minimal level among
        # Pre_Potential_p — ``min_{≻p}(Potential_p)``.
        for i in range(indptr[p], indptr[p + 1]):
            q = indices[i]
            if pif[q] != _B or par[q] == p:
                continue
            qlev = level[q]
            if qlev >= k.l_max or (fok_join and fok[q]):
                continue
            if best_level is None or qlev < best_level:
                best_level = qlev
                parent = q
        if parent < 0:
            raise ProtocolError(
                f"B-action at node {p} with empty Potential set"
            )
        return (_B, parent, best_level + 1, 1, 0)

    def _stmt_fok(self, p: int):
        row = self._row(p)
        return (row[0], row[1], row[2], row[3], 1)

    def _stmt_f(self, p: int):
        row = self._row(p)
        return (_F, row[1], row[2], row[3], row[4])

    def _stmt_c(self, p: int):
        row = self._row(p)
        return (_C, row[1], row[2], row[3], row[4])

    def _stmt_count_root(self, p: int):
        k = self.constants
        raw = self._sum_value(p)
        row = self._row(p)
        return (
            row[0],
            row[1],
            row[2],
            min(raw, k.n_prime),
            1 if raw == k.n else 0,
        )

    def _stmt_count_nonroot(self, p: int):
        k = self.constants
        row = self._row(p)
        return (
            row[0],
            row[1],
            row[2],
            min(self._sum_value(p), k.n_prime),
            row[4],
        )
