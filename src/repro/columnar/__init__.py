"""repro.columnar — flat per-variable state kernel (the third engine).

The object engines (``full``, ``incremental``) evaluate guards by
constructing per-node :class:`~repro.runtime.protocol.Context` objects
over a tuple-of-dataclasses configuration; every step costs O(N) just
to copy the tuple and rebuild the enabled map.  The columnar engine
(``engine="columnar"``, ``REPRO_ENGINE=columnar``) instead stores the
configuration as one flat array per variable plus a CSR neighbor index,
compiles each protocol's guards once per ``(protocol, network)`` into
mask kernels, and repairs masks only on the 1-hop dirty region of each
step — O(dirty ∪ N(dirty)), independent of N.

Layering: ``schema`` (dependency-free field declarations) ← ``backend``
(pure ``array`` vs numpy storage) ← ``csr`` / ``block`` (flat storage)
← ``engine`` (runtime + object bridge).  Compiled kernels live with
their protocols (e.g. :mod:`repro.columnar.snap_pif_kernel` for
:class:`~repro.core.pif.SnapPif`) and are reached only through
:meth:`~repro.runtime.protocol.Protocol.compile_columnar`, so importing
this package never drags protocol modules in.
"""

from repro.columnar.backend import (
    BACKENDS,
    make_column,
    numpy_available,
    resolve_backend,
)
from repro.columnar.block import ColumnBlock
from repro.columnar.bridge import ObjectBridgeKernel
from repro.columnar.csr import CSRIndex
from repro.columnar.engine import ColumnarRuntime
from repro.columnar.schema import (
    ColumnField,
    ColumnSchema,
    bool_field,
    identity_int,
)

__all__ = [
    "BACKENDS",
    "ColumnBlock",
    "ColumnField",
    "ColumnSchema",
    "ColumnarRuntime",
    "CSRIndex",
    "ObjectBridgeKernel",
    "bool_field",
    "identity_int",
    "make_column",
    "numpy_available",
    "resolve_backend",
]
