"""repro.columnar — flat per-variable state kernel (the third engine).

The object engines (``full``, ``incremental``) evaluate guards by
constructing per-node :class:`~repro.runtime.protocol.Context` objects
over a tuple-of-dataclasses configuration; every step costs O(N) just
to copy the tuple and rebuild the enabled map.  The columnar engine
(``engine="columnar"``, ``REPRO_ENGINE=columnar``) instead stores the
configuration as one flat array per variable plus a CSR neighbor index,
compiles each protocol's guards once per ``(protocol, network)`` into
mask kernels, and repairs masks only on the 1-hop dirty region of each
step — O(dirty ∪ N(dirty)), independent of N.

Layering: ``schema`` / ``expr`` (dependency-free declarations — field
layouts and guard-expression IR) ← ``backend`` (pure ``array`` vs numpy
storage) ← ``csr`` / ``block`` (flat storage) ← ``compiler`` (generic
spec → kernel compilation) ← ``engine`` (runtime + object bridge).
Protocols declare a :class:`~repro.columnar.expr.ColumnarSpec` via
:meth:`~repro.runtime.protocol.Protocol.columnar_spec` and the compiler
builds both the scalar and the vectorized kernel from it — no
per-protocol kernel code; importing this package never drags protocol
modules in.
"""

from repro.columnar.backend import (
    BACKENDS,
    make_column,
    numpy_available,
    resolve_backend,
)
from repro.columnar.block import ColumnBlock
from repro.columnar.bridge import ObjectBridgeKernel
from repro.columnar.compiler import (
    CompiledSpecKernel,
    VECTOR_MIN_NODES,
    csr_for,
    segment_reduce,
)
from repro.columnar.csr import CSRIndex
from repro.columnar.engine import ColumnarRuntime
from repro.columnar.expr import ActionSpec, ColumnarSpec
from repro.columnar.schema import (
    ColumnField,
    ColumnSchema,
    bool_field,
    identity_int,
)

__all__ = [
    "ActionSpec",
    "BACKENDS",
    "ColumnBlock",
    "ColumnField",
    "ColumnSchema",
    "ColumnarRuntime",
    "ColumnarSpec",
    "CompiledSpecKernel",
    "CSRIndex",
    "ObjectBridgeKernel",
    "VECTOR_MIN_NODES",
    "bool_field",
    "csr_for",
    "identity_int",
    "make_column",
    "numpy_available",
    "resolve_backend",
    "segment_reduce",
]
