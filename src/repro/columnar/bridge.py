"""Per-node object bridge: the columnar engine's fallback kernel.

Protocols that do not implement
:meth:`~repro.runtime.protocol.Protocol.compile_columnar` still run
under ``engine="columnar"`` through this bridge, which satisfies the
kernel interface by delegating to the protocol's ordinary object path
(``enabled_map`` / ``enabled_map_incremental`` / ``execute_selection``).
Performance then matches the incremental engine — the bridge exists for
*uniformity*, so daemons, monitors, fault hooks and the lockstep
validator see one engine surface regardless of whether a compiled
kernel is available.
"""

from __future__ import annotations

from typing import Mapping

from repro.runtime.network import Network
from repro.runtime.protocol import Action, Protocol
from repro.runtime.state import Configuration, NodeState

__all__ = ["ObjectBridgeKernel"]


class ObjectBridgeKernel:
    """Kernel interface over the per-node object engine."""

    def __init__(self, protocol: Protocol, network: Network) -> None:
        self.protocol = protocol
        self.network = network
        self._config: Configuration | None = None
        self._entries: dict[int, list[Action]] = {}
        self._cache: dict = {}

    def load(self, configuration: Configuration) -> None:
        self._config = configuration
        self._cache = {}
        self._entries = self.protocol.enabled_map(
            configuration, self.network, cache=self._cache
        )

    def materialize(self) -> Configuration:
        assert self._config is not None, "kernel used before load()"
        return self._config

    def enabled_map(self) -> dict[int, list[Action]]:
        return {p: list(actions) for p, actions in self._entries.items()}

    def execute_selection(self, selection: Mapping[int, Action]) -> set[int]:
        after, dirty = self.protocol.execute_selection(
            self._config, self.network, selection, cache=self._cache
        )
        self._config = after
        if dirty:
            self._refresh(dirty)
        return dirty

    def apply_updates(self, updates: Mapping[int, NodeState]) -> set[int]:
        config = self.materialize()
        effective = {
            p: state for p, state in updates.items() if state != config[p]
        }
        if not effective:
            return set()
        self._config = config.replace(effective)
        dirty = set(effective)
        self._refresh(dirty)
        return dirty

    def _refresh(self, dirty: set[int]) -> None:
        cache: dict = {}
        self._entries = self.protocol.enabled_map_incremental(
            self._entries, self._config, self.network, dirty, cache=cache
        )
        self._cache = cache
