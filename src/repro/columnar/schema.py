"""Column schemas: the declarative bridge between node states and columns.

A :class:`ColumnSchema` describes how one frozen-dataclass
:class:`~repro.runtime.state.NodeState` type maps onto a set of flat
integer columns — one :class:`ColumnField` per variable, each with an
``encode`` (attribute value → int) and ``decode`` (int → attribute
value) pair.  Protocols declare their schema next to the state type it
describes (e.g. ``PIF_COLUMNS`` beside
:class:`~repro.core.state.PifState`), and the columnar engine uses it
for the bidirectional converters between object configurations and
:class:`~repro.columnar.block.ColumnBlock` storage.

The module is deliberately dependency-free (no imports from
``repro.core`` or ``repro.runtime``) so that core modules can declare
schemas without creating an import cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

__all__ = ["ColumnField", "ColumnSchema", "identity_int", "bool_field"]


def identity_int(value: Any) -> int:
    """The encode/decode pair for plain integer variables."""
    return int(value)


@dataclass(frozen=True)
class ColumnField:
    """One state variable laid out as a flat integer column.

    Parameters
    ----------
    name:
        Column name (also the keyword used to construct the state).
    typecode:
        ``array.array`` typecode for the pure-python backend (``"b"``
        for small enums/flags, ``"q"`` for full-range integers).  The
        numpy backend derives its dtype from the same code.
    encode, decode:
        Value ↔ int converters.  ``decode(encode(v)) == v`` must hold
        for every in-domain value ``v`` — the round-trip property the
        columnar equivalence tests assert.
    """

    name: str
    typecode: str = "q"
    encode: Callable[[Any], int] = identity_int
    decode: Callable[[int], Any] = identity_int


def bool_field(name: str) -> ColumnField:
    """A boolean variable stored as 0/1 in a signed-byte column."""
    return ColumnField(name, typecode="b", encode=int, decode=bool)


@dataclass(frozen=True)
class ColumnSchema:
    """How a node-state type maps onto per-variable columns.

    ``state_type`` is constructed by keyword from decoded field values
    (``state_type(**{field.name: field.decode(raw)})``), so the field
    names must match the dataclass's init parameters.
    """

    state_type: type
    fields: tuple[ColumnField, ...]

    def __post_init__(self) -> None:
        names = [f.name for f in self.fields]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate column names in schema: {names}")

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(f.name for f in self.fields)

    def encode_state(self, state: Any) -> tuple[int, ...]:
        """Encode one state object into its column row."""
        return tuple(f.encode(getattr(state, f.name)) for f in self.fields)

    def decode_row(self, row: Sequence[int]) -> Any:
        """Build a state object from one column row."""
        return self.state_type(
            **{f.name: f.decode(v) for f, v in zip(self.fields, row)}
        )
