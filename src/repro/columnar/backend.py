"""Columnar storage backends: pure-python ``array`` vs numpy.

The columnar kernel stores every variable as one flat array indexed by
node id.  Two interchangeable backends provide that storage:

* ``"pure"`` — :mod:`array` arrays, zero dependencies; guard kernels
  run as scalar loops over plain ints.
* ``"numpy"`` — numpy arrays; large guard re-evaluations additionally
  use the vectorized mask path (see
  :mod:`repro.columnar.compiler`).

``REPRO_COLUMNAR_BACKEND`` selects the backend when the caller does not
pass one explicitly: ``"auto"`` (default — numpy when importable, else
pure), ``"numpy"`` (require numpy, raise if missing) or ``"pure"``
(never touch numpy, the CI leg that proves the dependency is optional).

Both backends must produce bit-identical enabled maps and successors —
asserted by ``tests/columnar/`` and the ``REPRO_ENGINE_VALIDATE``
lockstep mode.
"""

from __future__ import annotations

import os
from array import array

from repro.errors import ReproError

__all__ = [
    "BACKENDS",
    "numpy_available",
    "resolve_backend",
    "make_column",
]

#: Recognized values of ``REPRO_COLUMNAR_BACKEND``.
BACKENDS = ("auto", "numpy", "pure")

_numpy = None
_numpy_checked = False


def _load_numpy():
    global _numpy, _numpy_checked
    if not _numpy_checked:
        _numpy_checked = True
        try:
            import numpy
        except ImportError:
            _numpy = None
        else:
            _numpy = numpy
    return _numpy


def numpy_available() -> bool:
    """Whether the numpy backend can be used in this interpreter."""
    return _load_numpy() is not None


def resolve_backend(backend: str | None = None) -> str:
    """Resolve a backend request to ``"numpy"`` or ``"pure"``.

    ``None`` falls back to the ``REPRO_COLUMNAR_BACKEND`` environment
    variable (empty means unset), then to ``"auto"``.
    """
    if backend is None:
        backend = os.environ.get("REPRO_COLUMNAR_BACKEND") or "auto"
    if backend not in BACKENDS:
        raise ReproError(
            f"unknown columnar backend {backend!r}; expected one of {BACKENDS}"
        )
    if backend == "auto":
        return "numpy" if numpy_available() else "pure"
    if backend == "numpy" and not numpy_available():
        raise ReproError(
            "REPRO_COLUMNAR_BACKEND=numpy but numpy is not importable"
        )
    return backend


#: ``array`` typecode → numpy dtype string.
_NUMPY_DTYPES = {
    "b": "int8",
    "B": "uint8",
    "h": "int16",
    "i": "int32",
    "l": "int64",
    "q": "int64",
}


def make_column(backend: str, typecode: str, values) -> "object":
    """Allocate one column holding ``values`` (a sequence of ints).

    Pure backend: an :class:`array.array` of the given typecode.  Numpy
    backend: an ndarray of the matching dtype.  Both support scalar
    ``col[i]`` reads/writes and ``len``; only numpy columns support the
    vectorized mask path.
    """
    if backend == "pure":
        return array(typecode, values)
    np = _load_numpy()
    assert np is not None, "numpy backend resolved without numpy"
    return np.array(list(values), dtype=_NUMPY_DTYPES[typecode])
