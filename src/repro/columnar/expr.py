"""Guard-expression IR: what a protocol's guards *are*, declaratively.

The hand-written snap-PIF kernel proved that every guard of the paper's
algorithm class is a boolean/arithmetic combination of three kinds of
1-hop reads:

* the executing node's **own** columns (:class:`Own`),
* a **parent gather** through a designated pointer column
  (:class:`Ptr` — legal because pointer domains are neighbor sets),
* **neighborhood folds** over the node's CSR slice — existence tests,
  guarded sums, guarded minima and first-minimal-neighbor selection
  (:class:`NbrExists`, :class:`NbrAll`, :class:`NbrSum`,
  :class:`NbrMin`, :class:`NbrArgMinFirst`).

This module makes that observation an API: protocols declare their
guards and statement updates as expression trees over encoded column
values, bundle them into a :class:`ColumnarSpec`, and the generic
compiler (:mod:`repro.columnar.compiler`) evaluates the same tree two
ways — a scalar fold per node (pure backend, small dirty regions) and a
numpy gather + ``reduceat`` pass (large regions) — replacing the
per-protocol hand transcription entirely.

Expressions are evaluated over the **encoded** integer domain of the
protocol's :class:`~repro.columnar.schema.ColumnSchema`: phases are
their fixed codes, booleans 0/1, optional node pointers ``-1`` for
"none".  Inside a fold, :class:`Nbr`/:class:`NbrId` refer to the
neighbor being folded over while :class:`Own`/:class:`NodeId` still
refer to the folding node; folds cannot nest.

The module is deliberately dependency-free (like
:mod:`repro.columnar.schema`) so protocol modules can build specs
without import cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping, Sequence

__all__ = [
    "Expr",
    "Own",
    "Const",
    "NodeId",
    "Ptr",
    "Nbr",
    "NbrId",
    "And",
    "Or",
    "Not",
    "Eq",
    "Ne",
    "Lt",
    "Le",
    "Gt",
    "Ge",
    "Add",
    "Sub",
    "Min2",
    "NbrExists",
    "NbrAll",
    "NbrSum",
    "NbrMin",
    "NbrArgMinFirst",
    "ActionSpec",
    "ColumnarSpec",
    "walk",
    "FOLDS",
]


class Expr:
    """Base class of all IR nodes (identity-compared, immutable by use)."""

    __slots__ = ()

    def children(self) -> tuple["Expr", ...]:
        return ()


# ----------------------------------------------------------------------
# Leaves
# ----------------------------------------------------------------------
class Own(Expr):
    """The folding/executing node's own value in column ``field``."""

    __slots__ = ("field",)

    def __init__(self, field: str) -> None:
        self.field = field


class Const(Expr):
    """An integer constant (encode booleans as 0/1, phases as codes)."""

    __slots__ = ("value",)

    def __init__(self, value: int) -> None:
        self.value = int(value)


class NodeId(Expr):
    """The folding/executing node's identifier."""

    __slots__ = ()


class Ptr(Expr):
    """Gather ``field`` through the pointer column ``ptr_field``.

    Reads ``column[field][column[ptr_field][p]]`` — the parent-gather of
    the paper's ``GoodPif``/``GoodLevel`` predicates.  A negative
    pointer (the encoded "no parent") is clamped to row 0, making the
    gather total; specs must guard pointer-dependent terms so the
    clamped read is never semantically load-bearing (in-domain pointers
    are always real neighbors — see DESIGN.md §12).
    """

    __slots__ = ("ptr_field", "field")

    def __init__(self, ptr_field: str, field: str) -> None:
        self.ptr_field = ptr_field
        self.field = field


class Nbr(Expr):
    """The folded-over neighbor's value in ``field`` (fold bodies only)."""

    __slots__ = ("field",)

    def __init__(self, field: str) -> None:
        self.field = field


class NbrId(Expr):
    """The folded-over neighbor's identifier (fold bodies only)."""

    __slots__ = ()


# ----------------------------------------------------------------------
# Combinators
# ----------------------------------------------------------------------
class And(Expr):
    """Logical conjunction (scalar evaluation short-circuits in order)."""

    __slots__ = ("args",)

    def __init__(self, *args: Expr) -> None:
        self.args = args

    def children(self) -> tuple[Expr, ...]:
        return self.args


class Or(Expr):
    """Logical disjunction (scalar evaluation short-circuits in order)."""

    __slots__ = ("args",)

    def __init__(self, *args: Expr) -> None:
        self.args = args

    def children(self) -> tuple[Expr, ...]:
        return self.args


class Not(Expr):
    __slots__ = ("arg",)

    def __init__(self, arg: Expr) -> None:
        self.arg = arg

    def children(self) -> tuple[Expr, ...]:
        return (self.arg,)


class _BinOp(Expr):
    __slots__ = ("a", "b")

    def __init__(self, a: Expr, b: Expr) -> None:
        self.a = a
        self.b = b

    def children(self) -> tuple[Expr, ...]:
        return (self.a, self.b)


class Eq(_BinOp):
    """``a == b``"""


class Ne(_BinOp):
    """``a != b``"""


class Lt(_BinOp):
    """``a < b``"""


class Le(_BinOp):
    """``a <= b``"""


class Gt(_BinOp):
    """``a > b``"""


class Ge(_BinOp):
    """``a >= b``"""


class Add(_BinOp):
    """``a + b``"""


class Sub(_BinOp):
    """``a - b``"""


class Min2(_BinOp):
    """``min(a, b)`` — the saturation primitive (``min(x, N')``)."""


# ----------------------------------------------------------------------
# Neighborhood folds
# ----------------------------------------------------------------------
class NbrExists(Expr):
    """``∃q ∈ Neig_p : pred(q)`` — e.g. ``Potential_p ≠ ∅``."""

    __slots__ = ("pred",)

    def __init__(self, pred: Expr) -> None:
        self.pred = pred

    def children(self) -> tuple[Expr, ...]:
        return (self.pred,)


class NbrAll(Expr):
    """``∀q ∈ Neig_p : pred(q)`` — e.g. ``Leaf``/``BFree`` shapes.

    Vacuously true on degree-0 nodes, matching an object-engine
    ``all()`` over an empty neighbor iterator.
    """

    __slots__ = ("pred",)

    def __init__(self, pred: Expr) -> None:
        self.pred = pred

    def children(self) -> tuple[Expr, ...]:
        return (self.pred,)


class NbrSum(Expr):
    """``Σ_{q : where(q)} value(q)`` — the paper's guarded ``Sum_p``."""

    __slots__ = ("value", "where")

    def __init__(self, value: Expr, where: Expr | None = None) -> None:
        self.value = value
        self.where = where

    def children(self) -> tuple[Expr, ...]:
        if self.where is None:
            return (self.value,)
        return (self.value, self.where)


class NbrMin(Expr):
    """``min_{q : where(q)} value(q)``, or ``default`` when no q matches.

    ``default`` is an (owner-scope) expression; ``None`` means the fold
    has no fallback and an empty match set is a protocol error at
    evaluation time.  Guards must always provide a default (enforced at
    compile time) so scalar and vectorized guard evaluation cannot
    diverge; statements may omit it when their guard already proves the
    match set non-empty (the B-action's ``Potential_p ≠ ∅``).
    """

    __slots__ = ("value", "where", "default")

    def __init__(
        self,
        value: Expr,
        where: Expr | None = None,
        default: Expr | None = None,
    ) -> None:
        self.value = value
        self.where = where
        self.default = default

    def children(self) -> tuple[Expr, ...]:
        out = [self.value]
        if self.where is not None:
            out.append(self.where)
        if self.default is not None:
            out.append(self.default)
        return tuple(out)


class NbrArgMinFirst(Expr):
    """The *first* neighbor in local order achieving the minimal value.

    Ties break toward the earliest neighbor in the node's local order
    ``≻_p`` (strict-``<`` scan), exactly like the object engines'
    ``candidates[0]`` idiom — the B-action's ``min_{≻p}(Potential_p)``
    and the spanning tree's parent choice.  Evaluates to ``-1`` (the
    encoded "no node") when no neighbor matches ``where``.
    """

    __slots__ = ("value", "where")

    def __init__(self, value: Expr, where: Expr | None = None) -> None:
        self.value = value
        self.where = where

    def children(self) -> tuple[Expr, ...]:
        if self.where is None:
            return (self.value,)
        return (self.value, self.where)


#: The fold node types (exactly one neighborhood pass each; cannot nest).
FOLDS = (NbrExists, NbrAll, NbrSum, NbrMin, NbrArgMinFirst)


def walk(expr: Expr) -> Iterator[Expr]:
    """Yield ``expr`` and every sub-expression (pre-order)."""
    yield expr
    for child in expr.children():
        yield from walk(child)


# ----------------------------------------------------------------------
# Specs
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ActionSpec:
    """One guarded action in IR form.

    ``name`` must match the corresponding object
    :class:`~repro.runtime.protocol.Action` (the compiler checks the
    per-role program against ``Protocol.node_actions``).  ``guard`` is
    an owner-scope boolean expression; ``updates`` maps column names to
    owner-scope expressions producing the *encoded* new value — columns
    absent from ``updates`` keep their pre-step value, mirroring
    ``state.replace(...)`` statements.
    """

    name: str
    guard: Expr
    updates: Mapping[str, Expr] = field(default_factory=dict)


@dataclass(frozen=True)
class ColumnarSpec:
    """A protocol's complete columnar declaration.

    Parameters
    ----------
    schema:
        The :class:`~repro.columnar.schema.ColumnSchema` mapping the
        protocol's state type onto columns.
    programs:
        ``{role: (ActionSpec, ...)}`` in program order — action ``i`` of
        a role owns mask bit ``i``, so the order must equal the object
        program's.
    roles:
        ``node id -> role key`` (e.g. root vs everyone else).
    bulk_role:
        The role the vectorized evaluator computes for the whole dirty
        region; nodes of other roles are overwritten scalarly (there is
        typically exactly one such node — the root).
    statics:
        Extra read-only columns derived from the network at compile
        time, ``{name: network -> values}`` — e.g. a fixed tree's
        parent pointers.  Names must not collide with schema columns.
    object_statements:
        When true, guards run compiled but statements execute through
        the protocol's object :class:`~repro.runtime.protocol.Action`
        path (for statements that are impure or carry non-columnar
        state, like the payload PIF's envelopes).  Successor lockstep
        validation is skipped for such kernels — re-executing impure
        statements would itself perturb application state.
    """

    schema: Any
    programs: Mapping[str, tuple[ActionSpec, ...]]
    roles: Callable[[int], str]
    bulk_role: str
    statics: Mapping[str, Callable[[Any], Sequence[int]]] | None = None
    object_statements: bool = False
