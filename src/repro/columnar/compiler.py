"""Generic guard-expression compiler: spec → columnar kernel.

:class:`CompiledSpecKernel` turns a protocol's declarative
:class:`~repro.columnar.expr.ColumnarSpec` into a kernel satisfying the
columnar engine interface (``load`` / ``enabled_map`` /
``execute_selection`` / ``apply_updates``), replacing the per-protocol
hand transcription the snap-PIF kernel used to be.  The same expression
tree is evaluated two ways:

* **scalar** — each IR node compiles once into a small closure
  (``fn(cols, p, memo)`` for owner scope, ``fn(cols, p, q)`` for fold
  bodies); neighborhood folds run as loops over the node's CSR slice
  and are memoized per node pass, so subexpressions shared between
  guards (``Sum_p``, ``Potential_p``…) are folded once.  Used by the
  pure backend always and by the numpy backend on small dirty regions.
* **vectorized** (numpy backend, regions ≥ :data:`VECTOR_MIN_NODES`) —
  the tree is interpreted over whole-region arrays: own reads become
  fancy indexing, parent gathers a clamped take, and folds one
  :func:`segment_reduce` over the gathered edge arrays.

Mask-bit ``i`` of a node equals guard ``i`` of its role's program —
DESIGN.md §12 argues why both evaluators agree with per-node
``Action.enabled``, and ``tests/columnar`` cross-checks all three.

Degree-0 nodes (churn can isolate a node mid-run) are handled in
:func:`segment_reduce` itself: empty CSR segments are dropped from the
``reduceat`` index list and patched with the fold identity, instead of
aliasing the next segment's result (``np.ufunc.reduceat`` gives an
empty segment the *single element* at its offset, and clamping offsets
corrupts the preceding segment).

Statements always execute scalarly: selections are far smaller than
mask regions, and all statement reads happen against the pre-step
columns before any write lands — the simultaneous-write semantics of
the model.  Specs with ``object_statements=True`` (impure statements,
e.g. payload envelopes) run compiled guards but delegate statements to
the protocol's object :class:`~repro.runtime.protocol.Action` path and
opt out of successor lockstep validation (``validates_successor``).
"""

from __future__ import annotations

import time
import weakref
from typing import Callable, Mapping, Sequence

from repro import telemetry as _telemetry
from repro.columnar.backend import make_column
from repro.columnar.block import ColumnBlock
from repro.columnar.csr import CSRIndex
from repro.columnar.expr import (
    Add,
    And,
    ColumnarSpec,
    Const,
    Eq,
    Expr,
    FOLDS,
    Ge,
    Gt,
    Le,
    Lt,
    Min2,
    Nbr,
    NbrAll,
    NbrArgMinFirst,
    NbrExists,
    NbrId,
    NbrMin,
    NbrSum,
    Ne,
    NodeId,
    Not,
    Or,
    Own,
    Ptr,
    Sub,
)
from repro.errors import ProtocolError
from repro.runtime.network import Network
from repro.runtime.protocol import Action, Context, Protocol
from repro.runtime.state import Configuration, NodeState
from repro.telemetry.registry import TIME_BOUNDS

__all__ = [
    "CompiledSpecKernel",
    "VECTOR_MIN_NODES",
    "csr_for",
    "segment_reduce",
]

#: Below this many affected nodes the numpy backend evaluates masks
#: scalarly — gather/reduce setup costs more than the fold it replaces.
VECTOR_MIN_NODES = 48

#: Sentinel larger than any in-domain column value (levels, counts and
#: node ids are all bounded by N' ≤ 2^62); min folds use it as identity.
_BIG = 1 << 62

_MISSING = object()

#: One CSR index per Network, shared by every kernel compiled for it.
#: Weakly keyed — Network objects are immutable (topology churn swaps
#: the whole Network, and the runtime recompiles), so a cached index
#: can never go stale, and transient networks do not leak.
_CSR_CACHE: "weakref.WeakKeyDictionary[Network, CSRIndex]" = (
    weakref.WeakKeyDictionary()
)


def csr_for(network: Network) -> CSRIndex:
    """The (cached) CSR neighbor index of ``network``."""
    csr = _CSR_CACHE.get(network)
    if csr is None:
        csr = CSRIndex(network)
        _CSR_CACHE[network] = csr
    return csr


def segment_reduce(ufunc, values, offsets, counts, identity):
    """Per-segment ``ufunc`` reduction that is safe for empty segments.

    ``values`` is the concatenation of variable-length segments;
    ``offsets[i]`` is segment ``i``'s start and ``counts[i]`` its
    length (0 allowed).  Returns one reduced value per segment, with
    empty segments yielding ``identity``.

    Plain ``ufunc.reduceat(values, offsets)`` is wrong for empty
    segments twice over: a zero-length segment returns the single
    element ``values[offset]`` (aliasing the *next* segment's first
    element), and a trailing empty segment's offset equals
    ``len(values)``, which ``reduceat`` rejects.  Clamping offsets is
    also wrong — it silently truncates the preceding non-empty segment.
    The sound fix: reduce only the non-empty segments (their offsets
    are strictly increasing and in range by construction) and fill the
    empty ones with the identity.
    """
    import numpy as np

    if int(counts.min(initial=1)) > 0:
        return ufunc.reduceat(values, offsets)
    out_dtype = values.dtype
    out = np.full(counts.shape, identity, dtype=out_dtype)
    nz = np.nonzero(counts)[0]
    if nz.size:
        out[nz] = ufunc.reduceat(values, offsets[nz])
    return out


def _validate_expr(
    expr: Expr, *, in_guard: bool, fields: frozenset, where: str
) -> None:
    """Static checks the evaluators rely on (fail at compile, not step)."""

    def visit(e: Expr, in_fold: bool) -> None:
        if isinstance(e, (Nbr, NbrId)) and not in_fold:
            raise ProtocolError(
                f"{where}: {type(e).__name__} outside a neighborhood fold"
            )
        if isinstance(e, (Own, Nbr)) and e.field not in fields:
            raise ProtocolError(
                f"{where}: unknown column {e.field!r}"
            )
        if isinstance(e, Ptr) and (
            e.field not in fields or e.ptr_field not in fields
        ):
            raise ProtocolError(
                f"{where}: unknown column in Ptr({e.ptr_field!r}, {e.field!r})"
            )
        if isinstance(e, FOLDS):
            if in_fold:
                raise ProtocolError(
                    f"{where}: neighborhood folds cannot nest"
                )
            if isinstance(e, NbrMin):
                if in_guard and e.default is None:
                    raise ProtocolError(
                        f"{where}: NbrMin in a guard must provide a "
                        f"default (scalar and vectorized evaluation "
                        f"would diverge on an empty match set)"
                    )
                visit(e.value, True)
                if e.where is not None:
                    visit(e.where, True)
                if e.default is not None:
                    visit(e.default, False)  # defaults are owner-scope
                return
            for child in e.children():
                visit(child, True)
            return
        for child in e.children():
            visit(child, in_fold)

    visit(expr, False)


class CompiledSpecKernel:
    """Columnar kernel compiled from one ``(protocol, network, spec)``."""

    def __init__(
        self,
        protocol: Protocol,
        network: Network,
        backend: str,
        spec: ColumnarSpec,
    ) -> None:
        self.protocol = protocol
        self.network = network
        self.backend = backend
        self.spec = spec
        self.schema = spec.schema
        self.csr = csr_for(network)
        self.n = network.n
        #: Whether the lockstep validator may re-execute selections
        #: against the object engine (false for object-statement specs:
        #: impure statements must run exactly once).
        self.validates_successor = not spec.object_statements

        schema_names = set(self.schema.names)
        static_cols: dict[str, object] = {}
        if spec.statics:
            for name, builder in spec.statics.items():
                if name in schema_names:
                    raise ProtocolError(
                        f"static column {name!r} collides with a schema column"
                    )
                values = [int(v) for v in builder(network)]
                if len(values) != self.n:
                    raise ProtocolError(
                        f"static column {name!r} has {len(values)} values "
                        f"for an {self.n}-node network"
                    )
                static_cols[name] = make_column(backend, "q", values)
        self._static_cols = static_cols
        fields = frozenset(schema_names | set(static_cols))

        # Role table + spec/object program agreement (checks run against
        # one representative node per role; node_actions also triggers
        # the protocol's own network validation).
        roles = spec.roles
        programs = spec.programs
        role_keys: list[str] = []
        for p in range(self.n):
            role = roles(p)
            if role not in programs:
                raise ProtocolError(
                    f"node {p} has role {role!r} with no program in the spec"
                )
            role_keys.append(role)
        self._role_keys = role_keys
        self._nonbulk = [
            p for p in range(self.n) if role_keys[p] != spec.bulk_role
        ]
        representatives: dict[str, int] = {}
        for p, role in enumerate(role_keys):
            representatives.setdefault(role, p)
        for role, rep in representatives.items():
            spec_names = [a.name for a in programs[role]]
            object_names = [a.name for a in protocol.node_actions(rep, network)]
            if spec_names != object_names:
                raise ProtocolError(
                    f"columnar spec for role {role!r} disagrees with the "
                    f"object program at node {rep}: "
                    f"{spec_names} != {object_names}"
                )

        # Compile guards and statement updates per role.
        field_index = {name: i for i, name in enumerate(self.schema.names)}
        self._field_index = field_index
        self._guards: dict[str, tuple[Callable, ...]] = {}
        self._dispatch: dict[str, dict[str, tuple[int, object]]] = {}
        for role, program in programs.items():
            guard_fns = []
            dispatch: dict[str, tuple[int, object]] = {}
            for bit, aspec in enumerate(program):
                where = f"role {role!r}, action {aspec.name!r}"
                _validate_expr(
                    aspec.guard, in_guard=True, fields=fields, where=where
                )
                guard_fns.append(self._compile_node(aspec.guard))
                if spec.object_statements:
                    updates: object = None
                else:
                    compiled = []
                    for fname, uexpr in aspec.updates.items():
                        if fname not in field_index:
                            raise ProtocolError(
                                f"{where}: update target {fname!r} is not "
                                f"a schema column"
                            )
                        _validate_expr(
                            uexpr, in_guard=False, fields=fields, where=where
                        )
                        compiled.append(
                            (field_index[fname], self._compile_node(uexpr))
                        )
                    updates = tuple(compiled)
                dispatch[aspec.name] = (bit, updates)
            self._guards[role] = tuple(guard_fns)
            self._dispatch[role] = dispatch

        self._mask_actions: dict[tuple[int, int], tuple[Action, ...]] = {}
        self.block: ColumnBlock | None = None
        self.cols: dict[str, object] = {}
        self._masks: list[int] = [0] * self.n
        self._enabled: set[int] = set()
        # Object-statement side-car: the authoritative state objects
        # (columns carry only the pure core the guards read).
        self._objstates: list[NodeState] | None = None
        self._objconfig: Configuration | None = None

    # ------------------------------------------------------------------
    # Kernel interface (used by ColumnarRuntime)
    # ------------------------------------------------------------------
    def load(self, configuration: Configuration) -> None:
        """(Re-)encode the columns and recompute every mask."""
        if self.block is None or len(configuration) != self.n:
            self.block = ColumnBlock(self.schema, self.backend, configuration)
            self.cols = {**self.block.columns, **self._static_cols}
        else:
            self.block.load(configuration)
        if self.spec.object_statements:
            self._objstates = list(configuration.states)
            self._objconfig = configuration
        self._enabled.clear()
        self._recompute_masks(range(self.n))

    def materialize(self) -> Configuration:
        if self.spec.object_statements:
            config = self._objconfig
            if config is None:
                config = Configuration(tuple(self._objstates))
                self._objconfig = config
            return config
        return self.block.materialize()

    def enabled_map(self) -> dict[int, list[Action]]:
        """``{node: enabled actions}`` in ascending node order.

        Byte-identical (same keys, same order, same ``Action`` objects)
        to :meth:`Protocol.enabled_map` on the materialized
        configuration — the property the lockstep validator asserts.
        """
        masks = self._masks
        memo = self._mask_actions
        protocol = self.protocol
        network = self.network
        out: dict[int, list[Action]] = {}
        for p in sorted(self._enabled):
            mask = masks[p]
            key = (p, mask)
            actions = memo.get(key)
            if actions is None:
                program = protocol.node_actions(p, network)
                actions = tuple(
                    a for i, a in enumerate(program) if mask >> i & 1
                )
                memo[key] = actions
            out[p] = list(actions)
        return out

    def execute_selection(self, selection: Mapping[int, Action]) -> set[int]:
        """One computation step: simultaneous writes, dirty-region repair."""
        if self.spec.object_statements:
            return self._execute_selection_object(selection)
        # Phase 1: every statement reads the pre-step columns.
        pending = self.pending_updates(
            [(p, selection[p]) for p in sorted(selection)]
        )
        # Phase 2: all writes land simultaneously.
        if not pending:
            return set()
        write_row = self.block.write_row
        dirty = set()
        for p, row in pending:
            write_row(p, row)
            dirty.add(p)
        self._refresh(dirty)
        return dirty

    def pending_updates(
        self, items: Sequence[tuple[int, Action]]
    ) -> list[tuple[int, tuple[int, ...]]]:
        """Phase 1 of a step: statements evaluated on pre-step columns.

        ``items`` is ``(node, action)`` pairs in ascending node order.
        Returns the *changed* rows as ``(node, new_row)``, ascending,
        without writing anything — callers land the writes and repair
        masks themselves.  Pure with respect to kernel state (column
        reads stay within one hop of the given nodes), which is what
        lets the region stepper evaluate disjoint regions concurrently
        (DESIGN.md §14).  Large bulk-role groups on the numpy backend
        are evaluated vectorially; the result is bit-identical to the
        scalar path because both interpret the same IR over int64.
        """
        masks = self._masks
        role_keys = self._role_keys
        dispatch_by_role = self._dispatch
        resolved: list[tuple[int, str, tuple]] = []
        for p, action in items:
            entry = dispatch_by_role[role_keys[p]].get(action.name)
            if entry is None:
                raise ProtocolError(
                    f"action {action.name!r} is not in node {p}'s program"
                )
            bit, updates = entry
            if not masks[p] >> bit & 1:
                raise ProtocolError(
                    f"action {action.name!r} executed at node {p} "
                    f"while its guard is false"
                )
            resolved.append((p, action.name, updates))
        pending: list[tuple[int, tuple[int, ...]]] = []
        if (
            self.backend == "numpy"
            and self.n > 1
            and len(resolved) >= VECTOR_MIN_NODES
        ):
            resolved, vectorized = self._updates_vectorized(resolved)
            pending.extend(vectorized)
        read_row = self.block.read_row
        cols = self.cols
        for p, _name, updates in resolved:
            before = read_row(p)
            row = list(before)
            memo: dict = {}
            for idx, fn in updates:
                row[idx] = int(fn(cols, p, memo))
            after = tuple(row)
            if after != before:
                pending.append((p, after))
        pending.sort()
        return pending

    def _updates_vectorized(self, resolved):
        """Vectorized statement evaluation for large bulk-role groups.

        Splits ``resolved`` into groups by action name; groups of
        bulk-role nodes with compiled updates of size ≥
        :data:`VECTOR_MIN_NODES` are interpreted over whole-group arrays
        (same IR, same int64 arithmetic as the scalar closures), the
        rest fall back.  Returns ``(scalar_leftover, pending)``.
        """
        import numpy as np

        bulk = self.spec.bulk_role
        role_keys = self._role_keys
        groups: dict[str, list[int]] = {}
        scalar: list[tuple[int, str, tuple]] = []
        for item in resolved:
            p, name, updates = item
            if role_keys[p] == bulk and updates:
                groups.setdefault(name, []).append(p)
            else:
                scalar.append(item)
        specs = {a.name: a for a in self.spec.programs[bulk]}
        pending: list[tuple[int, tuple[int, ...]]] = []
        field_index = self._field_index
        read_row = self.block.read_row
        for name in sorted(groups):
            nodes = groups[name]
            if len(nodes) < VECTOR_MIN_NODES:
                entry = self._dispatch[bulk][name]
                scalar.extend((p, name, entry[1]) for p in nodes)
                continue
            A, vn, _truthy = self._vector_scope(nodes)
            size = len(nodes)
            new_vals: list[tuple[str, object]] = []
            changed = np.zeros(size, dtype=bool)
            for fname, uexpr in specs[name].updates.items():
                vals = np.asarray(vn(uexpr))
                if vals.ndim == 0:
                    vals = np.full(size, int(vals), dtype=np.int64)
                else:
                    vals = vals.astype(np.int64, copy=False)
                changed |= vals != np.asarray(self.cols[fname])[A]
                new_vals.append((fname, vals))
            for i in np.nonzero(changed)[0]:
                i = int(i)
                p = nodes[i]
                row = list(read_row(p))
                for fname, vals in new_vals:
                    row[field_index[fname]] = int(vals[i])
                pending.append((p, tuple(row)))
        return scalar, pending

    def _execute_selection_object(
        self, selection: Mapping[int, Action]
    ) -> set[int]:
        """Compiled guards, object statements (impure-statement specs)."""
        masks = self._masks
        role_keys = self._role_keys
        dispatch_by_role = self._dispatch
        config = self.materialize()
        network = self.network
        pending: list[tuple[int, NodeState]] = []
        for p, action in selection.items():
            entry = dispatch_by_role[role_keys[p]].get(action.name)
            if entry is None:
                raise ProtocolError(
                    f"action {action.name!r} is not in node {p}'s program"
                )
            bit, _ = entry
            if not masks[p] >> bit & 1:
                raise ProtocolError(
                    f"action {action.name!r} executed at node {p} "
                    f"while its guard is false"
                )
            state = action.statement(Context(p, network, config))
            if state != config[p]:
                pending.append((p, state))
        if not pending:
            return set()
        encode = self.schema.encode_state
        write_row = self.block.write_row
        dirty = set()
        for p, state in pending:
            self._objstates[p] = state
            write_row(p, encode(state))
            dirty.add(p)
        self._objconfig = None
        self._refresh(dirty)
        return dirty

    def apply_updates(self, updates: Mapping[int, NodeState]) -> set[int]:
        """Overwrite a subset of node states (targeted transient fault)."""
        encode = self.schema.encode_state
        write_row = self.block.write_row
        dirty = set()
        if self.spec.object_statements:
            for p, state in updates.items():
                if state != self._objstates[p]:
                    self._objstates[p] = state
                    write_row(p, encode(state))
                    dirty.add(p)
            if dirty:
                self._objconfig = None
                self._refresh(dirty)
            return dirty
        read_row = self.block.read_row
        for p, state in updates.items():
            row = encode(state)
            if row != read_row(p):
                write_row(p, row)
                dirty.add(p)
        if dirty:
            self._refresh(dirty)
        return dirty

    # ------------------------------------------------------------------
    # Mask maintenance
    # ------------------------------------------------------------------
    def _refresh(self, dirty: set[int]) -> None:
        """Re-evaluate masks on ``dirty ∪ N(dirty)`` (1-hop locality)."""
        affected = self.affected_of(dirty)
        if _telemetry.enabled:
            start = time.perf_counter()
            self._recompute_masks(affected)
            reg = _telemetry.registry
            reg.observe("columnar.mask_eval_nodes", len(affected))
            reg.observe(
                "columnar.mask_eval.seconds",
                time.perf_counter() - start,
                TIME_BOUNDS,
            )
        else:
            self._recompute_masks(affected)

    def affected_of(self, dirty) -> list[int]:
        """``sorted(dirty ∪ N(dirty))`` — the mask-repair set of a write."""
        affected = set(dirty)
        indptr, indices = self.csr.indptr, self.csr.indices
        for p in dirty:
            affected.update(indices[indptr[p] : indptr[p + 1]])
        return sorted(affected)

    def _recompute_masks(self, nodes) -> None:
        self.apply_masks(nodes, self.mask_values(nodes))

    def mask_values(self, nodes) -> list[int]:
        """Guard masks of ``nodes`` (ascending, sized) — the pure half
        of mask repair.  Reads columns within one hop of ``nodes`` and
        writes nothing, so disjoint-region calls may run concurrently;
        :meth:`apply_masks` installs the results (main thread only).
        """
        if (
            self.backend == "numpy"
            and self.n > 1
            and len(nodes) >= VECTOR_MIN_NODES
        ):
            return self._masks_vectorized(nodes)
        mask_of = self._mask_of
        return [mask_of(p) for p in nodes]

    def apply_masks(self, nodes, values: Sequence[int]) -> None:
        """Install :meth:`mask_values` results into the mask/enabled state."""
        masks = self._masks
        enabled = self._enabled
        for p, mask in zip(nodes, values):
            masks[p] = mask
            if mask:
                enabled.add(p)
            else:
                enabled.discard(p)

    def _mask_of(self, p: int) -> int:
        cols = self.cols
        memo: dict = {}
        mask = 0
        bit = 1
        for fn in self._guards[self._role_keys[p]]:
            if fn(cols, p, memo):
                mask |= bit
            bit <<= 1
        return mask

    # ------------------------------------------------------------------
    # Scalar compilation: IR node -> closure
    # ------------------------------------------------------------------
    def _compile_node(self, expr: Expr) -> Callable:
        """Owner scope: ``fn(cols, p, memo) -> int/bool``."""
        if isinstance(expr, Const):
            value = expr.value
            return lambda cols, p, memo: value
        if isinstance(expr, Own):
            name = expr.field
            return lambda cols, p, memo: cols[name][p]
        if isinstance(expr, NodeId):
            return lambda cols, p, memo: p
        if isinstance(expr, Ptr):
            ptr_name = expr.ptr_field
            name = expr.field

            def gather(cols, p, memo):
                i = cols[ptr_name][p]
                return cols[name][i if i >= 0 else 0]

            return gather
        if isinstance(expr, And):
            fns = [self._compile_node(a) for a in expr.args]

            def conj(cols, p, memo):
                for fn in fns:
                    if not fn(cols, p, memo):
                        return False
                return True

            return conj
        if isinstance(expr, Or):
            fns = [self._compile_node(a) for a in expr.args]

            def disj(cols, p, memo):
                for fn in fns:
                    if fn(cols, p, memo):
                        return True
                return False

            return disj
        if isinstance(expr, Not):
            fn = self._compile_node(expr.arg)
            return lambda cols, p, memo: not fn(cols, p, memo)
        if isinstance(expr, FOLDS):
            return self._compile_fold(expr)
        if isinstance(expr, (Eq, Ne, Lt, Le, Gt, Ge, Add, Sub, Min2)):
            a = self._compile_node(expr.a)
            b = self._compile_node(expr.b)
            return _binop(type(expr), a, b)
        raise ProtocolError(
            f"unsupported IR node in owner scope: {type(expr).__name__}"
        )

    def _compile_edge(self, expr: Expr) -> Callable:
        """Fold-body scope: ``fn(cols, p, q) -> int/bool``."""
        if isinstance(expr, Const):
            value = expr.value
            return lambda cols, p, q: value
        if isinstance(expr, Nbr):
            name = expr.field
            return lambda cols, p, q: cols[name][q]
        if isinstance(expr, NbrId):
            return lambda cols, p, q: q
        if isinstance(expr, Own):
            name = expr.field
            return lambda cols, p, q: cols[name][p]
        if isinstance(expr, NodeId):
            return lambda cols, p, q: p
        if isinstance(expr, Ptr):
            ptr_name = expr.ptr_field
            name = expr.field

            def gather(cols, p, q):
                i = cols[ptr_name][p]
                return cols[name][i if i >= 0 else 0]

            return gather
        if isinstance(expr, And):
            fns = [self._compile_edge(a) for a in expr.args]

            def conj(cols, p, q):
                for fn in fns:
                    if not fn(cols, p, q):
                        return False
                return True

            return conj
        if isinstance(expr, Or):
            fns = [self._compile_edge(a) for a in expr.args]

            def disj(cols, p, q):
                for fn in fns:
                    if fn(cols, p, q):
                        return True
                return False

            return disj
        if isinstance(expr, Not):
            fn = self._compile_edge(expr.arg)
            return lambda cols, p, q: not fn(cols, p, q)
        if isinstance(expr, (Eq, Ne, Lt, Le, Gt, Ge, Add, Sub, Min2)):
            a = self._compile_edge(expr.a)
            b = self._compile_edge(expr.b)
            return _binop_edge(type(expr), a, b)
        raise ProtocolError(
            f"unsupported IR node in a fold body: {type(expr).__name__}"
        )

    def _compile_fold(self, expr: Expr) -> Callable:
        """One CSR-slice fold, memoized per node pass (keyed by the
        expression object's identity, so subexpressions shared between
        guards evaluate once per node)."""
        key = id(expr)
        indptr = self.csr.indptr
        indices = self.csr.indices
        if isinstance(expr, NbrExists):
            pred = self._compile_edge(expr.pred)

            def exists(cols, p, memo):
                val = memo.get(key, _MISSING)
                if val is _MISSING:
                    val = False
                    for i in range(indptr[p], indptr[p + 1]):
                        if pred(cols, p, indices[i]):
                            val = True
                            break
                    memo[key] = val
                return val

            return exists
        if isinstance(expr, NbrAll):
            pred = self._compile_edge(expr.pred)

            def forall(cols, p, memo):
                val = memo.get(key, _MISSING)
                if val is _MISSING:
                    val = True
                    for i in range(indptr[p], indptr[p + 1]):
                        if not pred(cols, p, indices[i]):
                            val = False
                            break
                    memo[key] = val
                return val

            return forall
        if isinstance(expr, NbrSum):
            value = self._compile_edge(expr.value)
            where = (
                None if expr.where is None else self._compile_edge(expr.where)
            )

            def total(cols, p, memo):
                val = memo.get(key, _MISSING)
                if val is _MISSING:
                    val = 0
                    for i in range(indptr[p], indptr[p + 1]):
                        q = indices[i]
                        if where is None or where(cols, p, q):
                            val += value(cols, p, q)
                    memo[key] = val
                return val

            return total
        if isinstance(expr, NbrMin):
            value = self._compile_edge(expr.value)
            where = (
                None if expr.where is None else self._compile_edge(expr.where)
            )
            default = (
                None
                if expr.default is None
                else self._compile_node(expr.default)
            )

            def minimum(cols, p, memo):
                val = memo.get(key, _MISSING)
                if val is _MISSING:
                    best = None
                    for i in range(indptr[p], indptr[p + 1]):
                        q = indices[i]
                        if where is None or where(cols, p, q):
                            v = value(cols, p, q)
                            if best is None or v < best:
                                best = v
                    if best is None:
                        if default is None:
                            raise ProtocolError(
                                f"NbrMin fold at node {p} matched no "
                                f"neighbor and has no default"
                            )
                        best = default(cols, p, memo)
                    val = best
                    memo[key] = val
                return val

            return minimum
        if isinstance(expr, NbrArgMinFirst):
            value = self._compile_edge(expr.value)
            where = (
                None if expr.where is None else self._compile_edge(expr.where)
            )

            def argmin(cols, p, memo):
                val = memo.get(key, _MISSING)
                if val is _MISSING:
                    best = None
                    chosen = -1
                    # Strict < keeps the *first* minimal neighbor in
                    # local order ≻_p — the object engines' candidates[0].
                    for i in range(indptr[p], indptr[p + 1]):
                        q = indices[i]
                        if where is None or where(cols, p, q):
                            v = value(cols, p, q)
                            if best is None or v < best:
                                best = v
                                chosen = q
                    val = chosen
                    memo[key] = val
                return val

            return argmin
        raise ProtocolError(f"unknown fold {type(expr).__name__}")

    # ------------------------------------------------------------------
    # Vectorized mask evaluation (numpy backend, large regions)
    # ------------------------------------------------------------------
    def _vector_scope(self, nodes):
        """Build the whole-region evaluation scope over ``nodes``.

        Returns ``(A, vn, truthy)``: the node-id array, the memoized
        owner-scope evaluator (guards *and* statement updates interpret
        through it), and the boolean coercion helper.  Shared by
        :meth:`_masks_vectorized` and :meth:`_updates_vectorized` so the
        two vectorized interpreters cannot drift apart.
        """
        import numpy as np

        indptr, indices = self.csr.as_numpy()
        A = np.fromiter(nodes, dtype=np.int64, count=len(nodes))
        cols = {
            name: np.asarray(col) for name, col in self.cols.items()
        }
        starts = indptr[A]
        counts = indptr[A + 1] - starts
        offsets = np.zeros(len(A), dtype=np.int64)
        np.cumsum(counts[:-1], out=offsets[1:])
        total_edges = int(offsets[-1] + counts[-1])
        # Edge positions: node i's CSR slice, concatenated in order
        # (zero-degree nodes simply contribute no edges).
        pos = (
            np.arange(total_edges, dtype=np.int64)
            - np.repeat(offsets, counts)
            + np.repeat(starts, counts)
        )
        nbr = indices[pos]
        owner = np.repeat(A, counts)
        node_memo: dict[int, object] = {}
        edge_memo: dict[int, object] = {}

        def truthy(x):
            return np.asarray(x) != 0

        def as_edges(x):
            arr = np.asarray(x)
            if arr.ndim == 0:
                return np.full(total_edges, arr.item(), dtype=np.int64)
            return arr

        def vn(expr: Expr):
            """Owner scope: arrays over A (or numpy/python scalars)."""
            key = id(expr)
            cached = node_memo.get(key, _MISSING)
            if cached is not _MISSING:
                return cached
            out = _vn_eval(expr)
            node_memo[key] = out
            return out

        def _vn_eval(expr: Expr):
            if isinstance(expr, Const):
                return expr.value
            if isinstance(expr, Own):
                return cols[expr.field][A]
            if isinstance(expr, NodeId):
                return A
            if isinstance(expr, Ptr):
                ptr = cols[expr.ptr_field][A]
                safe = np.where(ptr < 0, 0, ptr)
                return cols[expr.field][safe]
            if isinstance(expr, And):
                out = truthy(vn(expr.args[0]))
                for a in expr.args[1:]:
                    out = out & truthy(vn(a))
                return out
            if isinstance(expr, Or):
                out = truthy(vn(expr.args[0]))
                for a in expr.args[1:]:
                    out = out | truthy(vn(a))
                return out
            if isinstance(expr, Not):
                return ~truthy(vn(expr.arg))
            if isinstance(expr, Eq):
                return vn(expr.a) == vn(expr.b)
            if isinstance(expr, Ne):
                return vn(expr.a) != vn(expr.b)
            if isinstance(expr, Lt):
                return vn(expr.a) < vn(expr.b)
            if isinstance(expr, Le):
                return vn(expr.a) <= vn(expr.b)
            if isinstance(expr, Gt):
                return vn(expr.a) > vn(expr.b)
            if isinstance(expr, Ge):
                return vn(expr.a) >= vn(expr.b)
            if isinstance(expr, Add):
                return vn(expr.a) + vn(expr.b)
            if isinstance(expr, Sub):
                return vn(expr.a) - vn(expr.b)
            if isinstance(expr, Min2):
                return np.minimum(vn(expr.a), vn(expr.b))
            if isinstance(expr, NbrExists):
                pred = as_edges(truthy(ve(expr.pred)))
                return segment_reduce(
                    np.bitwise_or, pred, offsets, counts, False
                )
            if isinstance(expr, NbrAll):
                pred = as_edges(truthy(ve(expr.pred)))
                return segment_reduce(
                    np.bitwise_and, pred, offsets, counts, True
                )
            if isinstance(expr, NbrSum):
                vals = as_edges(ve(expr.value)).astype(np.int64, copy=False)
                if expr.where is not None:
                    vals = np.where(as_edges(truthy(ve(expr.where))), vals, 0)
                return segment_reduce(np.add, vals, offsets, counts, 0)
            if isinstance(expr, NbrMin):
                vals = as_edges(ve(expr.value)).astype(np.int64, copy=False)
                if expr.where is not None:
                    vals = np.where(
                        as_edges(truthy(ve(expr.where))), vals, _BIG
                    )
                m = segment_reduce(np.minimum, vals, offsets, counts, _BIG)
                empty = m == _BIG
                if not empty.any():
                    return m
                if expr.default is None:
                    bad = int(A[np.nonzero(empty)[0][0]])
                    raise ProtocolError(
                        f"NbrMin fold at node {bad} matched no neighbor "
                        f"and has no default"
                    )
                return np.where(empty, vn(expr.default), m)
            if isinstance(expr, NbrArgMinFirst):
                if total_edges == 0:
                    return np.full(len(A), -1, dtype=np.int64)
                vals = as_edges(ve(expr.value)).astype(np.int64, copy=False)
                if expr.where is not None:
                    vals = np.where(
                        as_edges(truthy(ve(expr.where))), vals, _BIG
                    )
                m = segment_reduce(np.minimum, vals, offsets, counts, _BIG)
                m_edge = np.repeat(m, counts)
                pos_in_slice = np.arange(
                    total_edges, dtype=np.int64
                ) - np.repeat(offsets, counts)
                cand = np.where(
                    (vals == m_edge) & (vals != _BIG), pos_in_slice, _BIG
                )
                best = segment_reduce(
                    np.minimum, cand, offsets, counts, _BIG
                )
                found = best != _BIG
                idx = offsets + np.where(found, best, 0)
                idx = np.minimum(idx, total_edges - 1)
                return np.where(found, nbr[idx], -1)
            raise ProtocolError(
                f"unsupported IR node in owner scope: {type(expr).__name__}"
            )

        def ve(expr: Expr):
            """Fold-body scope: arrays over the gathered edges."""
            key = id(expr)
            cached = edge_memo.get(key, _MISSING)
            if cached is not _MISSING:
                return cached
            out = _ve_eval(expr)
            edge_memo[key] = out
            return out

        def _ve_eval(expr: Expr):
            if isinstance(expr, Const):
                return expr.value
            if isinstance(expr, Nbr):
                return cols[expr.field][nbr]
            if isinstance(expr, NbrId):
                return nbr
            if isinstance(expr, Own):
                return cols[expr.field][owner]
            if isinstance(expr, NodeId):
                return owner
            if isinstance(expr, Ptr):
                ptr = cols[expr.ptr_field][owner]
                safe = np.where(ptr < 0, 0, ptr)
                return cols[expr.field][safe]
            if isinstance(expr, And):
                out = truthy(ve(expr.args[0]))
                for a in expr.args[1:]:
                    out = out & truthy(ve(a))
                return out
            if isinstance(expr, Or):
                out = truthy(ve(expr.args[0]))
                for a in expr.args[1:]:
                    out = out | truthy(ve(a))
                return out
            if isinstance(expr, Not):
                return ~truthy(ve(expr.arg))
            if isinstance(expr, Eq):
                return ve(expr.a) == ve(expr.b)
            if isinstance(expr, Ne):
                return ve(expr.a) != ve(expr.b)
            if isinstance(expr, Lt):
                return ve(expr.a) < ve(expr.b)
            if isinstance(expr, Le):
                return ve(expr.a) <= ve(expr.b)
            if isinstance(expr, Gt):
                return ve(expr.a) > ve(expr.b)
            if isinstance(expr, Ge):
                return ve(expr.a) >= ve(expr.b)
            if isinstance(expr, Add):
                return ve(expr.a) + ve(expr.b)
            if isinstance(expr, Sub):
                return ve(expr.a) - ve(expr.b)
            if isinstance(expr, Min2):
                return np.minimum(ve(expr.a), ve(expr.b))
            raise ProtocolError(
                f"unsupported IR node in a fold body: {type(expr).__name__}"
            )

        return A, vn, truthy

    def _masks_vectorized(self, nodes) -> list[int]:
        import numpy as np

        A, vn, truthy = self._vector_scope(nodes)
        program = self.spec.programs[self.spec.bulk_role]
        masks = np.zeros(len(A), dtype=np.int64)
        for bit, aspec in enumerate(program):
            g = np.broadcast_to(truthy(vn(aspec.guard)), A.shape)
            masks |= g.astype(np.int64) << bit
        result = masks.tolist()
        # Nodes outside the bulk role (typically just the root) run a
        # different program: overwrite scalarly.
        mask_of = self._mask_of
        size = len(A)
        for p in self._nonbulk:
            idx = int(np.searchsorted(A, p))
            if idx < size and int(A[idx]) == p:
                result[idx] = mask_of(p)
        return result


def _binop(op: type, a: Callable, b: Callable) -> Callable:
    if op is Eq:
        return lambda cols, p, memo: a(cols, p, memo) == b(cols, p, memo)
    if op is Ne:
        return lambda cols, p, memo: a(cols, p, memo) != b(cols, p, memo)
    if op is Lt:
        return lambda cols, p, memo: a(cols, p, memo) < b(cols, p, memo)
    if op is Le:
        return lambda cols, p, memo: a(cols, p, memo) <= b(cols, p, memo)
    if op is Gt:
        return lambda cols, p, memo: a(cols, p, memo) > b(cols, p, memo)
    if op is Ge:
        return lambda cols, p, memo: a(cols, p, memo) >= b(cols, p, memo)
    if op is Add:
        return lambda cols, p, memo: a(cols, p, memo) + b(cols, p, memo)
    if op is Sub:
        return lambda cols, p, memo: a(cols, p, memo) - b(cols, p, memo)
    if op is Min2:
        return lambda cols, p, memo: min(a(cols, p, memo), b(cols, p, memo))
    raise ProtocolError(f"unknown binary op {op.__name__}")


def _binop_edge(op: type, a: Callable, b: Callable) -> Callable:
    if op is Eq:
        return lambda cols, p, q: a(cols, p, q) == b(cols, p, q)
    if op is Ne:
        return lambda cols, p, q: a(cols, p, q) != b(cols, p, q)
    if op is Lt:
        return lambda cols, p, q: a(cols, p, q) < b(cols, p, q)
    if op is Le:
        return lambda cols, p, q: a(cols, p, q) <= b(cols, p, q)
    if op is Gt:
        return lambda cols, p, q: a(cols, p, q) > b(cols, p, q)
    if op is Ge:
        return lambda cols, p, q: a(cols, p, q) >= b(cols, p, q)
    if op is Add:
        return lambda cols, p, q: a(cols, p, q) + b(cols, p, q)
    if op is Sub:
        return lambda cols, p, q: a(cols, p, q) - b(cols, p, q)
    if op is Min2:
        return lambda cols, p, q: min(a(cols, p, q), b(cols, p, q))
    raise ProtocolError(f"unknown binary op {op.__name__}")
