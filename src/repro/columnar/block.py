"""Columnar state storage: one flat array per variable.

A :class:`ColumnBlock` holds a whole configuration as per-variable flat
arrays indexed by node id — the columnar transpose of the object
engine's tuple-of-states :class:`~repro.runtime.state.Configuration`.
Writes are in-place and O(written nodes); the object engine instead
copies the full state tuple on every step, which is the O(N)-per-step
cost the columnar engine removes.

Bidirectional conversion keeps the object-level API alive: monitors,
traces, model checkers and the chaos replay oracle all receive ordinary
:class:`Configuration` objects materialized on demand.  Materialization
caches aggressively — per-node decoded states are invalidated only when
that node is written, and the assembled ``Configuration`` object is
reused until any write happens — so a no-op step returns the *same*
configuration object, preserving the identity guarantee the incremental
engine's dirty-set filtering established.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.columnar.backend import make_column
from repro.columnar.schema import ColumnSchema
from repro.runtime.state import Configuration, NodeState

__all__ = ["ColumnBlock"]


class ColumnBlock:
    """Flat per-variable columns for one configuration.

    ``columns`` maps field name → backing array (``array.array`` or
    ndarray, per backend).  Kernels read and write the arrays directly;
    all writes must go through :meth:`write_row` (or be followed by
    :meth:`invalidate`) so the materialization cache stays honest.
    """

    __slots__ = ("schema", "backend", "n", "columns", "_states", "_config")

    def __init__(
        self, schema: ColumnSchema, backend: str, configuration: Configuration
    ) -> None:
        self.schema = schema
        self.backend = backend
        self.n = len(configuration)
        rows = [schema.encode_state(state) for state in configuration]
        self.columns = {
            f.name: make_column(
                backend, f.typecode, (row[i] for row in rows)
            )
            for i, f in enumerate(schema.fields)
        }
        # Per-node decoded state cache, seeded with the exact objects of
        # the source configuration (no decode needed until a write).
        self._states: list[NodeState | None] = list(configuration.states)
        self._config: Configuration | None = configuration

    # ------------------------------------------------------------------
    # Row access
    # ------------------------------------------------------------------
    def read_row(self, p: int) -> tuple[int, ...]:
        """Node ``p``'s raw column values, in schema field order."""
        return tuple(int(self.columns[name][p]) for name in self.schema.names)

    def write_row(self, p: int, row: Sequence[int]) -> None:
        """Overwrite node ``p``'s columns and invalidate its cache entry."""
        for name, value in zip(self.schema.names, row):
            self.columns[name][p] = value
        self._states[p] = None
        self._config = None

    def invalidate(self, nodes: Iterable[int] | None = None) -> None:
        """Drop cached decodes after direct column writes.

        ``None`` invalidates every node (full overwrite).
        """
        if nodes is None:
            self._states = [None] * self.n
        else:
            for p in nodes:
                self._states[p] = None
        self._config = None

    # ------------------------------------------------------------------
    # Object-level conversion
    # ------------------------------------------------------------------
    def state_of(self, p: int) -> NodeState:
        """Decode node ``p``'s state (cached until the node is written)."""
        state = self._states[p]
        if state is None:
            state = self.schema.decode_row(self.read_row(p))
            self._states[p] = state
        return state

    def materialize(self) -> Configuration:
        """The block as an object :class:`Configuration` (cached).

        Consecutive calls with no intervening write return the same
        object, and unwritten nodes reuse their previously decoded
        state objects — successive materializations share storage the
        same way object-engine successors share unwritten states.
        """
        config = self._config
        if config is None:
            state_of = self.state_of
            config = Configuration(
                tuple(state_of(p) for p in range(self.n))
            )
            self._config = config
        return config

    def load(self, configuration: Configuration) -> None:
        """Re-encode every column from ``configuration`` (transient fault)."""
        if len(configuration) != self.n:
            raise ValueError(
                f"configuration has {len(configuration)} states for an "
                f"{self.n}-node block"
            )
        schema = self.schema
        for i, f in enumerate(schema.fields):
            column = self.columns[f.name]
            encode = f.encode
            for p, state in enumerate(configuration.states):
                column[p] = encode(getattr(state, f.name))
        self._states = list(configuration.states)
        self._config = configuration
