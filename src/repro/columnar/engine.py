"""The columnar engine runtime: compile-once, step-many.

:class:`ColumnarRuntime` is what the simulator talks to when
``engine="columnar"``.  On construction (and after every topology
rebuild) it asks the protocol to compile itself for the network via
:meth:`~repro.runtime.protocol.Protocol.compile_columnar`; protocols
without a compiled kernel fall back to the
:class:`~repro.columnar.bridge.ObjectBridgeKernel`, so the engine
surface is uniform either way.

Telemetry (when enabled): each compile runs under a
``columnar.compile`` span (its duration lands in the
``span.columnar.compile.seconds`` histogram), the ``columnar.compiles``
counter counts recompiles (topology churn), and the
``columnar.backend.numpy`` / ``columnar.compiled`` gauges record which
path is live.  Mask re-evaluation cost is instrumented inside the
kernel (``columnar.mask_eval_nodes`` / ``columnar.mask_eval.seconds``).
"""

from __future__ import annotations

from typing import Mapping

from repro import telemetry as _telemetry
from repro.columnar.backend import resolve_backend
from repro.columnar.bridge import ObjectBridgeKernel
from repro.regions import (
    RegionStepper,
    resolve_region_parallel,
    resolve_region_threads,
)
from repro.runtime.network import Network
from repro.runtime.protocol import Action, Protocol
from repro.runtime.state import Configuration, NodeState

__all__ = ["ColumnarRuntime"]


class ColumnarRuntime:
    """One compiled kernel plus its lifecycle (load / step / rebuild)."""

    def __init__(
        self,
        protocol: Protocol,
        network: Network,
        configuration: Configuration,
        *,
        backend: str | None = None,
        region_parallel: bool | None = None,
        region_threads: int | None = None,
    ) -> None:
        self.backend = resolve_backend(backend)
        self.region_parallel = resolve_region_parallel(region_parallel)
        self.region_threads = (
            resolve_region_threads(region_threads)
            if self.region_parallel
            else 1
        )
        self.kernel = None
        self.compiled = False
        self._stepper: RegionStepper | None = None
        self._compile(protocol, network, configuration)

    @property
    def protocol(self) -> Protocol:
        return self.kernel.protocol

    @property
    def validates_successor(self) -> bool:
        """Whether lockstep validation may re-execute selections.

        False for the object bridge (nothing columnar to cross-check)
        and for compiled kernels with object statements (impure
        statements — payload envelopes — must run exactly once; a
        validation re-execution would itself perturb application
        state and then diverge on object identity).
        """
        return self.compiled and getattr(
            self.kernel, "validates_successor", True
        )

    @property
    def network(self) -> Network:
        return self.kernel.network

    def _compile(
        self,
        protocol: Protocol,
        network: Network,
        configuration: Configuration,
    ) -> None:
        with _telemetry.span("columnar.compile") as span:
            kernel = protocol.compile_columnar(network, self.backend)
            compiled = kernel is not None
            if kernel is None:
                kernel = ObjectBridgeKernel(protocol, network)
            kernel.load(configuration)
            span.set(
                "protocol", getattr(protocol, "name", type(protocol).__name__)
            )
            span.set("n", network.n)
            span.set("backend", self.backend)
            span.set("compiled", compiled)
        self.kernel = kernel
        self.compiled = compiled
        # Region-parallel stepping needs a compiled kernel whose
        # statements are confined to array slices; object-statement
        # specs and the bridge keep the serial path.  Rebuilt on every
        # recompile so topology churn recomputes regions against the
        # new CSR index.
        self._stepper = None
        spec = getattr(kernel, "spec", None)
        if (
            self.region_parallel
            and compiled
            and spec is not None
            and not spec.object_statements
            and hasattr(kernel, "pending_updates")
        ):
            self._stepper = RegionStepper(kernel, self.region_threads)
        if _telemetry.enabled:
            registry = _telemetry.registry
            registry.inc("columnar.compiles")
            registry.set(
                "columnar.backend.numpy", 1 if self.backend == "numpy" else 0
            )
            registry.set("columnar.compiled", 1 if compiled else 0)

    # ------------------------------------------------------------------
    # Engine surface (what the Simulator calls)
    # ------------------------------------------------------------------
    def load(self, configuration: Configuration) -> None:
        """Replace the whole state (reset / global transient fault)."""
        self.kernel.load(configuration)

    def rebuild(self, network: Network, configuration: Configuration) -> None:
        """Recompile for a changed topology, then load ``configuration``."""
        self._compile(self.kernel.protocol, network, configuration)

    def configuration(self) -> Configuration:
        return self.kernel.materialize()

    def enabled_map(self) -> dict[int, list[Action]]:
        return self.kernel.enabled_map()

    def execute_selection(self, selection: Mapping[int, Action]) -> set[int]:
        if self._stepper is not None and selection:
            return self._stepper.execute_selection(selection)
        return self.kernel.execute_selection(selection)

    def apply_updates(self, updates: Mapping[int, NodeState]) -> set[int]:
        return self.kernel.apply_updates(updates)
