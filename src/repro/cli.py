"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``demo``
    Run PIF cycles on a chosen topology and print the round-by-round
    phase waterfall plus the per-cycle measurements.
``stabilize``
    Start from an adversarial configuration and report the measured
    convergence rounds against Property 3 / Theorem 1 / Theorem 3.
``verify``
    Run the exhaustive model checks (snap safety, liveness, convergence,
    closure) on a small network.
``bounds``
    Print the paper's bound sheet for a topology plus one measured cycle.
``chaos``
    Run a seeded chaos campaign (mid-run corruption, crash/recover,
    link churn, daemon swaps) against the snap-stabilizing PIF and
    report violations of the PIF specification.
``bench``
    Run benchmark modules from ``benchmarks/`` (requires a source
    checkout) and write their ``BENCH_*.json`` artifacts.
``serve``
    Run the asyncio wave service on a named topology and serve a
    deterministic client workload of typed wave requests, printing the
    streamed lifecycle events and the service stats tables.
``stats``
    Render the metrics and span tables from a telemetry JSONL trace
    (written by ``--telemetry PATH``).
``topologies``
    List the available topology families.

``verify`` and ``chaos`` accept ``--jobs N`` to fan their sweeps across
a process pool; results are identical to the serial run (see
``repro.parallel``).  The ``REPRO_JOBS`` environment variable is the
fallback when the flag is omitted.

``verify``, ``chaos`` and ``bench`` accept ``--telemetry PATH``: the
command runs with telemetry enabled, appends spans plus a final metrics
snapshot to ``PATH`` as JSONL, and ``repro stats PATH`` renders it.
``bench`` forwards the path to its pytest subprocess via the
``REPRO_TELEMETRY`` environment variable.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.analysis import bound_sheet, measure_cycles, measure_stabilization
from repro.analysis.faults import FAULT_MODES
from repro.core.monitor import PifCycleMonitor
from repro.core.pif import SnapPif
from repro.graphs import TOPOLOGY_FAMILIES, by_name, compute_metrics
from repro.reporting import render_table
from repro.reporting.render import PhaseTimeline, render_configuration
from repro.runtime.daemons import DistributedRandomDaemon
from repro.runtime.simulator import Simulator

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Snap-stabilizing PIF in arbitrary networks (ICDCS 2002)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_jobs_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--jobs",
            type=int,
            default=None,
            help="process-pool workers (default: REPRO_JOBS env, else "
            "serial); results are identical to the serial run",
        )

    def add_telemetry_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--telemetry",
            metavar="PATH",
            default=None,
            help="enable telemetry and append spans plus a final metrics "
            "snapshot to PATH as JSONL (render with 'repro stats PATH')",
        )

    def add_engine_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--engine",
            default=None,
            choices=["incremental", "full", "columnar"],
            help="guard-evaluation engine for every simulator the command "
            "builds (default: REPRO_ENGINE env, else incremental); "
            "'columnar' runs the compiled flat-array kernel",
        )
        p.add_argument(
            "--region-parallel",
            action="store_true",
            default=None,
            help="columnar engine only: partition each step into "
            "independent dirty regions and run them on a thread pool "
            "(default: REPRO_REGION_PARALLEL env); traces are "
            "bit-identical to serial stepping",
        )
        p.add_argument(
            "--region-threads",
            type=int,
            default=None,
            metavar="N",
            help="thread-pool size for --region-parallel (default: "
            "REPRO_REGION_THREADS env, else the CPU count capped at 8); "
            "a pure throughput knob — results never depend on it",
        )

    def add_topology_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--topology",
            default="random-sparse",
            choices=sorted(TOPOLOGY_FAMILIES),
            help="topology family (default: random-sparse)",
        )
        p.add_argument("--size", type=int, default=8, help="approximate N")
        p.add_argument("--seed", type=int, default=0, help="RNG seed")

    demo = sub.add_parser("demo", help="run PIF cycles and show the phases")
    add_topology_args(demo)
    add_engine_arg(demo)
    demo.add_argument("--cycles", type=int, default=1)
    demo.add_argument(
        "--async-daemon",
        action="store_true",
        help="use a distributed random daemon instead of the synchronous one",
    )

    stab = sub.add_parser(
        "stabilize", help="recover from an adversarial configuration"
    )
    add_topology_args(stab)
    add_engine_arg(stab)
    stab.add_argument("--mode", default="uniform", choices=FAULT_MODES)

    verify = sub.add_parser("verify", help="exhaustive model checks (small N)")
    verify.add_argument(
        "--network",
        default="line-3",
        choices=["line-3", "complete-3", "line-4"],
    )
    verify.add_argument(
        "--cap",
        type=int,
        default=None,
        help="cap on checked configurations (line-4 defaults to 2000)",
    )
    add_jobs_arg(verify)
    add_telemetry_arg(verify)

    bounds_cmd = sub.add_parser("bounds", help="bound sheet + measured cycle")
    add_topology_args(bounds_cmd)

    chaos = sub.add_parser(
        "chaos", help="seeded chaos campaign against the PIF specification"
    )
    add_topology_args(chaos)
    add_engine_arg(chaos)
    chaos.add_argument(
        "--budget",
        type=int,
        default=1500,
        help="step budget per run (default: 1500)",
    )
    chaos.add_argument(
        "--daemons",
        nargs="+",
        default=["synchronous", "central", "distributed-random"],
        help="daemon names to sweep (default: synchronous central "
        "distributed-random)",
    )
    chaos.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable campaign summary instead of tables",
    )
    chaos.add_argument(
        "--transport",
        default="shared-memory",
        choices=["shared-memory", "message"],
        help="execution model: locally shared registers (default) or the "
        "message-passing runtime with per-link channels; 'message' sweeps "
        "the link-fault scenario shapes (loss/duplication/reordering/delay)",
    )
    chaos.add_argument(
        "--capacity",
        type=int,
        default=None,
        help="per-link channel capacity (message transport; default: "
        "REPRO_CHANNEL_CAPACITY env, else 8)",
    )
    chaos.add_argument(
        "--message-model",
        default=None,
        choices=["eager", "async"],
        help="delivery model (message transport; default: "
        "REPRO_MESSAGE_MODEL env, else eager)",
    )
    chaos.add_argument(
        "--heartbeat",
        type=int,
        default=None,
        help="retransmit unchanged registers on stale links every H steps "
        "(message transport; default: REPRO_MESSAGE_HEARTBEAT env, else 4)",
    )
    chaos.add_argument(
        "--loss-rate",
        type=float,
        default=0.0,
        help="ambient per-publication loss probability in [0, 1) "
        "(message transport; default: 0.0)",
    )
    add_jobs_arg(chaos)
    add_telemetry_arg(chaos)

    bench = sub.add_parser(
        "bench", help="run benchmark modules and write BENCH_*.json artifacts"
    )
    bench.add_argument(
        "modules",
        nargs="*",
        help="benchmark module names (e.g. 'parallel' for "
        "benchmarks/bench_parallel.py); default: all",
    )
    bench.add_argument(
        "--list",
        action="store_true",
        dest="list_modules",
        help="list the available benchmark modules and exit",
    )
    add_engine_arg(bench)
    add_jobs_arg(bench)
    add_telemetry_arg(bench)

    serve = sub.add_parser(
        "serve",
        help="run the asyncio wave service and serve a client workload",
    )
    add_topology_args(serve)
    add_engine_arg(serve)
    add_jobs_arg(serve)
    add_telemetry_arg(serve)
    serve.add_argument(
        "--requests",
        type=int,
        default=200,
        help="total wave requests to serve (default: 200)",
    )
    serve.add_argument(
        "--clients",
        type=int,
        default=4,
        help="concurrent asyncio clients sharing the workload (default: 4)",
    )
    serve.add_argument(
        "--batch-window",
        type=int,
        default=None,
        help="coalescing batch window (default: REPRO_SERVICE_BATCH_WINDOW "
        "env, else 32)",
    )
    serve.add_argument(
        "--max-in-flight",
        type=int,
        default=None,
        help="concurrent wave executions (default: "
        "REPRO_SERVICE_MAX_IN_FLIGHT env, else 4)",
    )
    serve.add_argument(
        "--queue-bound",
        type=int,
        default=None,
        help="pending-queue bound per topology (default: "
        "REPRO_SERVICE_QUEUE_BOUND env, else 1024)",
    )
    serve.add_argument(
        "--show-events",
        type=int,
        default=8,
        metavar="K",
        help="print the first K streamed lifecycle events (default: 8)",
    )
    serve.add_argument(
        "--json",
        action="store_true",
        help="emit the stats payload and per-kind counts as JSON",
    )

    stats = sub.add_parser(
        "stats", help="render metrics/span tables from a telemetry trace"
    )
    stats.add_argument("trace", help="path to a telemetry JSONL trace")
    stats.add_argument(
        "--json",
        action="store_true",
        help="emit the merged metrics snapshot as JSON instead of tables",
    )

    sub.add_parser("topologies", help="list topology families")
    return parser


def _telemetry_session(path: str | None):
    """Context manager enabling telemetry for one CLI command.

    On exit, appends the final metrics snapshot to the trace and
    disables telemetry (closing the sink).  A no-op when ``path`` is
    None.
    """
    import contextlib

    from repro import telemetry

    @contextlib.contextmanager
    def session():
        if path is None:
            yield
            return
        telemetry.enable(path)
        try:
            yield
            telemetry.write_snapshot(label="final")
        finally:
            telemetry.disable()

    return session()


def _cmd_demo(args: argparse.Namespace) -> int:
    net = by_name(args.topology, args.size)
    protocol = SnapPif.for_network(net)
    monitor = PifCycleMonitor(protocol, net)
    timeline = PhaseTimeline()
    daemon = DistributedRandomDaemon(0.6) if args.async_daemon else None
    sim = Simulator(
        protocol, net, daemon, seed=args.seed, monitors=[monitor, timeline]
    )
    sim.run(
        until=lambda _c: len(monitor.completed_cycles) >= args.cycles,
        max_steps=2_000_000,
    )
    print(f"{net.name}: N={net.n}, diameter={net.diameter()}")
    print()
    print(timeline.render())
    print()
    rows = [
        {
            "cycle": i + 1,
            "rounds": c.rounds,
            "h": c.height,
            "bound 5h+5": 5 * c.height + 5,
            "PIF1": c.pif1_holds(net.n),
            "PIF2": c.pif2_holds(net.n),
        }
        for i, c in enumerate(monitor.completed_cycles)
    ]
    print(render_table(rows, title="cycles"))
    return 0


def _cmd_stabilize(args: argparse.Namespace) -> int:
    net = by_name(args.topology, args.size)
    measurement = measure_stabilization(
        net, fault_mode=args.mode, seed=args.seed
    )
    rows = [
        {
            "property": "GoodCount everywhere (Property 3)",
            "rounds": measurement.rounds_to_good_count,
            "bound": measurement.good_count_bound,
        },
        {
            "property": "every processor Normal (Theorem 1)",
            "rounds": measurement.rounds_to_normal,
            "bound": measurement.normalization_bound,
        },
        {
            "property": "Good Configuration / GLT (Theorem 3)",
            "rounds": measurement.rounds_to_good_configuration,
            "bound": measurement.glt_bound,
        },
    ]
    print(
        render_table(
            rows,
            title=f"{net.name}, fault mode {args.mode!r}, "
            f"L_max={measurement.l_max}",
        )
    )
    print(f"\nwithin all bounds: {measurement.within_bounds}")
    return 0 if measurement.within_bounds else 1


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.graphs import complete, line
    from repro.messaging import check_message_conformance
    from repro.reporting import render_model_check
    from repro.verification import (
        check_convergence_synchronous,
        check_cycle_liveness_synchronous,
        check_normal_closure,
        check_snap_safety,
    )

    if args.network == "line-3":
        net, cap = line(3), args.cap
    elif args.network == "complete-3":
        net, cap = complete(3), args.cap
    else:
        net, cap = line(4), args.cap if args.cap is not None else 2000

    jobs = args.jobs
    checks = [
        (
            "snap safety (all daemon choices)",
            lambda n, **kw: check_snap_safety(n, jobs=jobs, **kw),
        ),
        (
            "wave liveness (synchronous)",
            lambda n, **kw: check_cycle_liveness_synchronous(
                n, jobs=jobs, **kw
            ),
        ),
        (
            "convergence to SBN (synchronous)",
            lambda n, **kw: check_convergence_synchronous(
                n, stride=3, jobs=jobs, **kw
            ),
        ),
        # Closure stays serial: its sweep filters to normal
        # configurations, which is cheap relative to the others.
        ("closure of normal configurations", check_normal_closure),
        # Transform soundness (DESIGN.md §13): the eager reliable
        # message-passing run is step-for-step identical to shared
        # memory.  Lockstep over the synchronous daemon; the cap does
        # not apply (the check walks one trace, not a state space).
        (
            "messaging conformance (eager, reliable)",
            lambda n, **_kw: check_message_conformance(
                SnapPif.for_network(n), n, seed=1, max_steps=200
            ),
        ),
        # The async model is not step-identical to shared memory; its
        # contract (authentic views, monotone links, drain-to-truth) is
        # checked directly (DESIGN.md §13).
        (
            "messaging conformance (async, reliable)",
            lambda n, **_kw: check_message_conformance(
                SnapPif.for_network(n), n, seed=1, max_steps=200,
                model="async",
            ),
        ),
    ]
    rows = []
    failed = False
    with _telemetry_session(args.telemetry):
        for label, check in checks:
            result = check(net, max_configurations=cap)
            rows.append(
                {
                    "check": label,
                    "configurations": result.configurations_checked,
                    "complete": result.complete,
                    "violations": len(result.counterexamples),
                }
            )
            if result.stats is not None:
                print(render_model_check(result))
                print()
            if not result.ok:
                failed = True
                print(result.counterexamples[0].pretty(), file=sys.stderr)
    print(render_table(rows, title=f"exhaustive checks on {net.name}"))
    return 1 if failed else 0


def _cmd_bounds(args: argparse.Namespace) -> int:
    net = by_name(args.topology, args.size)
    metrics = compute_metrics(net)
    sheet = bound_sheet(metrics.l_max, metrics.longest_chordless_from_root)
    measurement = measure_cycles(net, cycles=1, seed=args.seed)

    print(f"{net.name}: N={metrics.n}, diameter={metrics.diameter}, "
          f"ecc(r)={metrics.root_eccentricity}, "
          f"longest chordless from r={metrics.longest_chordless_from_root}, "
          f"L_max={metrics.l_max}")
    rows = [
        {"bound": "GoodCount (Property 3)", "formula": "L+1", "rounds": sheet.good_count},
        {"bound": "all Normal (Theorem 1)", "formula": "3L+3", "rounds": sheet.normalization},
        {"bound": "GLT (Theorem 3)", "formula": "8L+7", "rounds": sheet.glt},
        {"bound": "cycle, worst h (Theorem 4)", "formula": "5h+5", "rounds": sheet.cycle},
        {
            "bound": "cycle, measured",
            "formula": f"h={measurement.heights[0]}",
            "rounds": measurement.cycle_rounds[0],
        },
    ]
    print(render_table(rows))
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    import json

    from repro.chaos import (
        run_campaign,
        standard_message_scenarios,
        standard_scenarios,
    )
    from repro.reporting.campaign import campaign_to_dict, render_campaign

    net = by_name(args.topology, args.size)
    if args.transport == "message":
        scenarios = standard_message_scenarios(args.seed)
    else:
        scenarios = standard_scenarios(args.seed)
    with _telemetry_session(args.telemetry):
        result = run_campaign(
            None,  # the genuine SnapPif
            [net],
            scenarios,
            daemons=tuple(args.daemons),
            seeds=(args.seed,),
            budget=args.budget,
            jobs=args.jobs,
            transport=args.transport,
            capacity=args.capacity,
            model=args.message_model,
            heartbeat=args.heartbeat,
            loss_rate=args.loss_rate,
        )
    if args.json:
        print(json.dumps(campaign_to_dict(result), indent=2, sort_keys=True))
    else:
        print(
            render_campaign(
                result, title=f"{net.name} ({args.transport}), "
                f"seed {args.seed}, budget {args.budget}"
            )
        )
    return 0 if result.ok else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    """Run benchmark modules through pytest, writing BENCH_*.json artifacts.

    The benchmark suite lives in ``benchmarks/`` next to ``src/`` (not
    inside the package), so this command needs a source checkout; the
    JSON artifacts land at the repository root exactly as they do when
    invoking pytest directly.  ``--jobs`` is forwarded to the wired
    parallel layers via the ``REPRO_JOBS`` environment variable, so
    every campaign and sweep a benchmark runs picks it up.
    """
    import os
    import subprocess
    from pathlib import Path

    repo_root = Path(__file__).resolve().parents[2]
    bench_dir = repo_root / "benchmarks"
    if not bench_dir.is_dir():
        print(
            f"no benchmarks/ directory at {repo_root} — 'repro bench' "
            "requires a source checkout",
            file=sys.stderr,
        )
        return 2
    available = sorted(
        path.stem[len("bench_") :] for path in bench_dir.glob("bench_*.py")
    )
    if args.list_modules:
        for name in available:
            print(name)
        return 0
    selected = list(args.modules) or available
    unknown = sorted(set(selected) - set(available))
    if unknown:
        print(
            f"unknown benchmark module(s) {unknown}; available: {available}",
            file=sys.stderr,
        )
        return 2
    env = dict(os.environ)
    if args.jobs is not None:
        env["REPRO_JOBS"] = str(args.jobs)
    if args.telemetry is not None:
        # benchmarks/conftest.py enables telemetry from this variable in
        # the pytest subprocess (the sink is owned by that process).
        env["REPRO_TELEMETRY"] = str(Path(args.telemetry).resolve())
    env["PYTHONPATH"] = os.pathsep.join(
        p
        for p in (
            str(repo_root / "src"),
            str(repo_root),
            env.get("PYTHONPATH", ""),
        )
        if p
    )
    command = [
        sys.executable,
        "-m",
        "pytest",
        "--benchmark-only",
        "-q",
        *(str(bench_dir / f"bench_{name}.py") for name in selected),
    ]
    return subprocess.call(command, cwd=repo_root, env=env)


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the wave service on one named topology and serve a workload.

    The workload is the deterministic submission script of
    :func:`repro.service.make_workload`, split round-robin across
    ``--clients`` concurrent asyncio clients: submission happens in one
    synchronous burst (so the order — and with it every per-request
    result — is reproducible under the fixed ``--seed``), then each
    client awaits its own handles and consumes its own completion
    streams concurrently.
    """
    import asyncio
    import json
    from collections import Counter

    from repro.reporting.service import render_service
    from repro.service import WaveService, make_workload
    from repro.service.events import for_phases

    net = by_name(args.topology, args.size)
    name = f"{args.topology}-{net.n}"
    script = make_workload(args.requests, seed=args.seed)
    clients = max(1, args.clients)

    async def client(handles) -> list:
        results = []
        for handle in handles:
            async for event in handle.events():
                if event.phase in ("completed", "failed"):
                    results.append(event)
        return results

    async def session():
        async with WaveService(
            seed=args.seed,
            engine=getattr(args, "engine", None),
            batch_window=args.batch_window,
            max_in_flight=args.max_in_flight,
            queue_bound=args.queue_bound,
            jobs=args.jobs,
        ) as service:
            service.add_topology(name, net)
            tap = service.subscribe(for_phases("accepted", "completed"))
            slices = [script[c::clients] for c in range(clients)]
            per_client = [
                [service.submit(kind, name, a) for kind, a in chunk]
                for chunk in slices
            ]
            finals = await asyncio.gather(
                *(client(handles) for handles in per_client)
            )
            return service.stats(), finals, tap.drain()

    with _telemetry_session(args.telemetry):
        stats, finals, tapped = asyncio.run(session())
    flat = [event for results in finals for event in results]
    kinds = Counter(event.kind for event in flat)
    failed = sum(1 for event in flat if event.phase == "failed")
    if args.json:
        print(
            json.dumps(
                {
                    "topology": name,
                    "requests": len(flat),
                    "failed": failed,
                    "kinds": dict(sorted(kinds.items())),
                    "stats": stats,
                },
                indent=2,
                sort_keys=True,
                default=str,
            )
        )
        return 1 if failed else 0
    print(f"served {len(flat)} wave requests on {name} "
          f"({clients} clients, seed {args.seed})")
    for event in tapped[: args.show_events]:
        print(f"  event: {event.as_dict()}")
    if len(tapped) > args.show_events:
        print(f"  ... {len(tapped) - args.show_events} more events")
    print()
    print(render_table(
        [{"kind": k, "requests": c} for k, c in sorted(kinds.items())],
        title="served by kind",
    ))
    print()
    print(render_service(stats))
    if failed:
        print(f"{failed} requests FAILED", file=sys.stderr)
        return 1
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    import json

    from repro.reporting.telemetry import merge_trace, render_trace
    from repro.telemetry import read_trace

    try:
        records = read_trace(args.trace)
    except (OSError, ValueError) as exc:
        print(f"cannot read trace: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(
            json.dumps(
                merge_trace(records).to_dict(), indent=2, sort_keys=True
            )
        )
    else:
        print(render_trace(records))
    return 0


def _cmd_topologies(_args: argparse.Namespace) -> int:
    rows = [
        {"family": name, "example (size 9)": TOPOLOGY_FAMILIES[name](9).name}
        for name in sorted(TOPOLOGY_FAMILIES)
    ]
    print(render_table(rows))
    return 0


_COMMANDS = {
    "demo": _cmd_demo,
    "stabilize": _cmd_stabilize,
    "verify": _cmd_verify,
    "bounds": _cmd_bounds,
    "chaos": _cmd_chaos,
    "bench": _cmd_bench,
    "serve": _cmd_serve,
    "stats": _cmd_stats,
    "topologies": _cmd_topologies,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if getattr(args, "engine", None):
        # Every Simulator the command builds — directly or through
        # analysis/chaos layers and the bench subprocess — resolves its
        # default engine from REPRO_ENGINE.
        import os

        os.environ["REPRO_ENGINE"] = args.engine
    if getattr(args, "region_parallel", None):
        import os

        os.environ["REPRO_REGION_PARALLEL"] = "1"
    if getattr(args, "region_threads", None) is not None:
        from repro.regions import resolve_region_threads

        import os

        # Validate eagerly so a bad value fails at the command line,
        # not inside the first simulator a sweep builds.
        os.environ["REPRO_REGION_THREADS"] = str(
            resolve_region_threads(args.region_threads)
        )
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
