"""The multi-kind wave engine: every application wave through one PIF.

The wave service (:mod:`repro.service`) serves five request kinds —
``pif``, ``snapshot``, ``reset``, ``infimum``, ``census`` — against a
named topology.  Each kind is one of the paper's PIF applications, and
each already exists as a standalone service class in this package; what
the served workload needs instead is *one* engine per topology that can
run any kind on demand, wave after wave, without rebuilding simulators.

:class:`WaveEngine` is that engine: a single
:class:`~repro.applications.broadcast.BroadcastService` (one
:class:`~repro.core.payload.PayloadSnapPif`, one simulator, one cycle
monitor) whose feedback hooks dispatch on the kind of the wave in
flight — the :class:`~repro.applications.transformer.QueryService`
pattern generalized to the whole application family.  Because the PIF
is snap-stabilizing, every initiation is individually correct whatever
the previous waves left behind, which is exactly what lets a scheduler
pipeline heterogeneous requests back-to-back on one engine.

Determinism contract (what the service's coalescing relies on): under
the default synchronous daemon and a clean start, every wave of a given
kind+args on a given topology produces the same :class:`WaveServing`
value and rounds, independent of how many waves ran before it.  The
engine's only cross-wave state is the application layer itself
(``app_states``/``reset_epoch``), which changes exactly when a reset
wave runs — and reset waves are never coalesced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from repro.applications.broadcast import BroadcastService
from repro.errors import WaveRequestError
from repro.runtime.daemons import Daemon
from repro.runtime.network import Network
from repro.runtime.state import Configuration

__all__ = ["WAVE_KINDS", "INFIMUM_OPS", "WaveServing", "WaveEngine"]

#: Request kinds the engine serves, in documentation order.
WAVE_KINDS: tuple[str, ...] = ("pif", "snapshot", "reset", "infimum", "census")

#: Fold operations understood by ``infimum`` requests.
INFIMUM_OPS: dict[str, Callable[[object, object], object]] = {
    "min": min,
    "max": max,
    "sum": lambda a, b: a + b,  # type: ignore[operator]
}


@dataclass(frozen=True, slots=True)
class WaveServing:
    """One wave's outcome, as served to the requests it covered.

    ``value`` is plain JSON-able data (the service streams it to
    clients); ``rounds`` is the cycle's round count; ``ok`` is the PIF
    specification verdict.  ``wave_index`` is the engine-local wave
    counter — scheduling-dependent under coalescing, so the service
    keeps it out of per-request results and events.
    """

    kind: str
    value: object
    rounds: int
    ok: bool
    wave_index: int


def validate_wave_args(
    kind: str, args: Mapping[str, object] | None
) -> dict[str, object]:
    """Check a request's kind and arguments; return normalized args.

    Raises :class:`~repro.errors.WaveRequestError` on an unknown kind,
    a non-mapping args object, or kind-specific violations (unsupported
    infimum op, non-integer offset).  Shared by the service's submit
    path (reject before enqueueing) and the engine (defense in depth).
    """
    if kind not in WAVE_KINDS:
        raise WaveRequestError(
            f"unknown wave kind {kind!r}; expected one of {list(WAVE_KINDS)}"
        )
    if args is None:
        args = {}
    if not isinstance(args, Mapping):
        raise WaveRequestError(
            f"wave args must be a mapping, got {type(args).__name__}"
        )
    normalized = dict(args)
    if kind == "infimum":
        op = normalized.setdefault("op", "min")
        if op not in INFIMUM_OPS:
            raise WaveRequestError(
                f"infimum op must be one of {sorted(INFIMUM_OPS)}, got {op!r}"
            )
        offset = normalized.setdefault("offset", 0)
        if isinstance(offset, bool) or not isinstance(offset, int):
            raise WaveRequestError(
                f"infimum offset must be an integer, got {offset!r}"
            )
    return normalized


class WaveEngine:
    """Serve any wave kind on one topology, one PIF cycle per wave.

    Parameters
    ----------
    network, root:
        Topology and initiator.
    daemon, seed:
        Scheduler (default synchronous — the regime the service's
        determinism contract covers) and RNG seed.
    engine:
        Guard-evaluation engine for the underlying simulator (``None``
        resolves ``REPRO_ENGINE``); the service passes ``"columnar"``
        for large topologies.
    reporter:
        ``node -> report`` hook for snapshot waves; defaults to reading
        the engine's simulated application state (:attr:`app_states`).
    fresh_state:
        ``node -> state`` hook for reset waves; defaults to
        ``("epoch", current_epoch)``.
    initial_configuration:
        Optional corrupted PIF start (snap-stabilization demos).  Note
        the determinism contract assumes a clean start.
    """

    def __init__(
        self,
        network: Network,
        *,
        root: int = 0,
        daemon: Daemon | None = None,
        seed: int = 0,
        engine: str | None = None,
        reporter: Callable[[int], object] | None = None,
        fresh_state: Callable[[int], object] | None = None,
        initial_configuration: Configuration | None = None,
    ) -> None:
        self.network = network
        #: Simulated application state per node (deliberately starts
        #: inconsistent, as in :class:`~repro.applications.reset.ResetService`).
        self.app_states: dict[int, object] = {
            p: ("unreset", p) for p in network.nodes
        }
        #: Epochs applied so far by reset waves.
        self.reset_epoch = 0
        self._reporter = reporter or (lambda node: self.app_states[node])
        self._fresh_state = fresh_state or (
            lambda node: ("epoch", self.reset_epoch)
        )
        #: The wave in flight: ``(kind, args)`` — consulted by the
        #: feedback hooks exactly like ``QueryService._current``.
        self._current: tuple[str, dict[str, object]] | None = None
        self._service = BroadcastService(
            network,
            root,
            local_value=self._local_value,
            combine=self._combine,
            daemon=daemon,
            seed=seed,
            initial_configuration=initial_configuration,
            engine=engine,
        )

    @property
    def waves_completed(self) -> int:
        """Completed PIF cycles so far (all kinds)."""
        return self._service.waves_completed

    # ------------------------------------------------------------------
    # Feedback hooks (run at F-actions, i.e. inside the wave)
    # ------------------------------------------------------------------
    def _local_value(self, node: int) -> object:
        assert self._current is not None, "no wave in flight"
        kind, args = self._current
        if kind == "pif":
            return 1
        if kind == "snapshot":
            return {node: self._reporter(node)}
        if kind == "reset":
            # The wave has genuinely reached this node: apply the reset.
            self.app_states[node] = self._fresh_state(node)
            return frozenset({node})
        if kind == "infimum":
            return node + args["offset"]  # type: ignore[operator]
        if kind == "census":
            return {node: tuple(self.network.neighbors(node))}
        raise WaveRequestError(f"unknown wave kind {kind!r}")

    def _combine(self, values: Sequence[object]) -> object:
        assert self._current is not None, "no wave in flight"
        kind, args = self._current
        if kind == "pif":
            total = 0
            for part in values:
                if not isinstance(part, int):
                    raise WaveRequestError(
                        f"pif fold received stale value {part!r}"
                    )
                total += part
            return total
        if kind in ("snapshot", "census"):
            merged: dict[int, object] = {}
            for part in values:
                if not isinstance(part, dict):
                    raise WaveRequestError(
                        f"{kind} fold received stale value {part!r}"
                    )
                overlap = merged.keys() & part.keys()
                if overlap:
                    raise WaveRequestError(
                        f"{kind} fold saw duplicate reports for "
                        f"{sorted(overlap)}"
                    )
                merged.update(part)
            return merged
        if kind == "reset":
            confirmed: set[int] = set()
            for part in values:
                if not isinstance(part, frozenset):
                    raise WaveRequestError(
                        f"reset fold received stale value {part!r}"
                    )
                confirmed |= part
            return frozenset(confirmed)
        if kind == "infimum":
            op = INFIMUM_OPS[args["op"]]  # type: ignore[index]
            result = values[0]
            for value in values[1:]:
                result = op(result, value)
            return result
        raise WaveRequestError(f"unknown wave kind {kind!r}")

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run_wave(
        self,
        kind: str,
        args: Mapping[str, object] | None = None,
        *,
        max_steps: int = 1_000_000,
    ) -> WaveServing:
        """Run one complete PIF cycle serving ``kind`` and assemble its value."""
        normalized = validate_wave_args(kind, args)
        if kind == "reset":
            self.reset_epoch += 1
        self._current = (kind, normalized)
        try:
            outcome = self._service.broadcast(
                (kind, tuple(sorted(normalized.items()))),
                max_steps=max_steps,
            )
        finally:
            self._current = None
        return WaveServing(
            kind=kind,
            value=self._finalize(kind, normalized, outcome),
            rounds=outcome.report.rounds,
            ok=outcome.ok,
            wave_index=self.waves_completed,
        )

    def _finalize(self, kind: str, args: dict, outcome) -> object:
        """Distill the wave outcome into the kind's plain-data value."""
        n = self.network.n
        result = outcome.result
        if kind == "pif":
            if not isinstance(result, int):
                raise WaveRequestError(f"pif feedback malformed: {result!r}")
            return {
                "acks": result,
                "delivered_everywhere": outcome.delivered_everywhere,
                "payload": args.get("payload"),
            }
        if kind == "snapshot":
            if not isinstance(result, dict):
                raise WaveRequestError(
                    f"snapshot result is not a report map: {result!r}"
                )
            return {p: result[p] for p in sorted(result)}
        if kind == "reset":
            if not isinstance(result, frozenset):
                raise WaveRequestError(
                    f"reset feedback is not a node set: {result!r}"
                )
            return {
                "epoch": self.reset_epoch,
                "confirmed": len(result),
                "complete": len(result) == n,
            }
        if kind == "infimum":
            return {"op": args["op"], "offset": args["offset"], "value": result}
        if kind == "census":
            if not isinstance(result, dict):
                raise WaveRequestError(f"census malformed: {result!r}")
            edges = sum(len(qs) for qs in result.values()) // 2
            matches = set(result) == set(self.network.nodes) and all(
                tuple(sorted(result[p]))
                == tuple(sorted(self.network.neighbors(p)))
                for p in self.network.nodes
            )
            return {"nodes": len(result), "edges": edges, "matches": matches}
        raise WaveRequestError(f"unknown wave kind {kind!r}")
