"""Snap-stabilizing reset.

"The most general method to repair the system is to reset the entire
system after a transient fault is detected.  Reset protocols are also
PIF-based algorithms." (Related Work.)  This service broadcasts a reset
command carrying an epoch number; every processor re-initializes its
application state when the wave reaches it, and the feedback collects a
confirmation per processor, so the root *knows* when the reset has been
applied network-wide.

With a merely self-stabilizing PIF underneath, a reset issued before
stabilization may silently skip processors; the snap PIF makes the first
reset already complete — the property experiment E7 quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.applications.broadcast import BroadcastService
from repro.errors import ReproError
from repro.runtime.daemons import Daemon
from repro.runtime.network import Network
from repro.runtime.state import Configuration

__all__ = ["ResetReceipt", "ResetService"]


@dataclass(frozen=True, slots=True)
class ResetReceipt:
    """Evidence that one reset epoch was applied everywhere."""

    epoch: int
    #: Nodes that confirmed applying this epoch (all of them, by PIF2).
    confirmed: frozenset[int]
    rounds: int
    ok: bool

    def complete(self, n: int) -> bool:
        return len(self.confirmed) == n


class ResetService:
    """Reset the application layer of every processor with one PIF wave.

    ``fresh_state(node)`` builds a node's post-reset application state.
    The service maintains the (simulated) application states in
    :attr:`app_states`; a node's reset is applied by its F-action —
    i.e. only after the wave genuinely reached it.
    """

    def __init__(
        self,
        network: Network,
        fresh_state: Callable[[int], object],
        *,
        root: int = 0,
        daemon: Daemon | None = None,
        seed: int = 0,
        initial_configuration: Configuration | None = None,
    ) -> None:
        self.network = network
        self.fresh_state = fresh_state
        self.epoch = 0
        #: Application state per node (starts deliberately inconsistent).
        self.app_states: dict[int, object] = {
            p: ("unreset", p) for p in network.nodes
        }
        #: Epoch each node last applied.
        self.applied_epoch: dict[int, int] = {p: -1 for p in network.nodes}

        def local_value(node: int) -> object:
            # Invoked at the node's F-action: the wave has reached it.
            self.app_states[node] = self.fresh_state(node)
            self.applied_epoch[node] = self.epoch
            return frozenset({node})

        def combine(values: Sequence[object]) -> object:
            merged: set[int] = set()
            for part in values:
                if not isinstance(part, frozenset):
                    raise ReproError(f"reset fold saw stale value {part!r}")
                merged |= part
            return frozenset(merged)

        self._service = BroadcastService(
            network,
            root,
            local_value=local_value,
            combine=combine,
            daemon=daemon,
            seed=seed,
            initial_configuration=initial_configuration,
        )

    def reset(self, *, max_steps: int = 1_000_000) -> ResetReceipt:
        """Issue one network-wide reset; return the confirmation receipt."""
        self.epoch += 1
        outcome = self._service.broadcast(
            ("RESET", self.epoch), max_steps=max_steps
        )
        confirmed = outcome.result
        if not isinstance(confirmed, frozenset):
            raise ReproError(f"reset feedback is not a node set: {confirmed!r}")
        return ResetReceipt(
            epoch=self.epoch,
            confirmed=confirmed,
            rounds=outcome.report.rounds,
            ok=outcome.ok,
        )

    def all_reset(self) -> bool:
        """Every node's application state is at the current epoch."""
        return all(e == self.epoch for e in self.applied_epoch.values())
