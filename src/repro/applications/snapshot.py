"""Global snapshot via PIF feedback.

Self-stabilizing snapshot algorithms are PIF-based ([17, 23] in the
paper's bibliography): the broadcast asks every processor to report, and
the feedback phase assembles the reports tree-by-tree, delivering the
full map at the root.

Each processor's report is taken when its F-action executes — i.e. at a
moment when its whole broadcast subtree has already reported, giving the
usual "meaningful cut" property of echo-based snapshots.  Snap
stabilization makes the very first snapshot complete: every processor's
report is present exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from repro.applications.broadcast import BroadcastService
from repro.errors import ReproError
from repro.runtime.daemons import Daemon
from repro.runtime.network import Network
from repro.runtime.state import Configuration

__all__ = ["Snapshot", "SnapshotService"]


@dataclass(frozen=True, slots=True)
class Snapshot:
    """One collected snapshot."""

    #: ``{node: report}`` — exactly one entry per processor.
    reports: Mapping[int, object]
    rounds: int
    ok: bool

    def complete(self, n: int) -> bool:
        """Every one of the ``n`` processors is present exactly once."""
        return len(self.reports) == n


class SnapshotService:
    """Collect global snapshots with one PIF wave each.

    ``reporter(node)`` produces a node's local report; it is invoked at
    the node's F-action during the snapshot wave.
    """

    def __init__(
        self,
        network: Network,
        reporter: Callable[[int], object],
        *,
        root: int = 0,
        daemon: Daemon | None = None,
        seed: int = 0,
        initial_configuration: Configuration | None = None,
    ) -> None:
        self.network = network

        def local_value(node: int) -> object:
            return {node: reporter(node)}

        def combine(values: Sequence[object]) -> object:
            merged: dict[int, object] = {}
            for part in values:
                if not isinstance(part, dict):
                    raise ReproError(
                        f"snapshot fold received non-report value {part!r}"
                    )
                overlap = merged.keys() & part.keys()
                if overlap:
                    raise ReproError(
                        f"snapshot fold saw duplicate reports for {sorted(overlap)}"
                    )
                merged.update(part)
            return merged

        self._service = BroadcastService(
            network,
            root,
            local_value=local_value,
            combine=combine,
            daemon=daemon,
            seed=seed,
            initial_configuration=initial_configuration,
        )

    def take(self, *, max_steps: int = 1_000_000) -> Snapshot:
        """Run one snapshot wave and return the assembled reports."""
        outcome = self._service.broadcast("snapshot-request", max_steps=max_steps)
        reports = outcome.result
        if not isinstance(reports, dict):
            raise ReproError(f"snapshot result is not a report map: {reports!r}")
        return Snapshot(
            reports=dict(sorted(reports.items())),
            rounds=outcome.report.rounds,
            ok=outcome.ok,
        )
