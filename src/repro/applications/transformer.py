"""Snap-stabilizing global queries — the *universal transformer* flavor.

The paper's conclusion: "The snap-stabilizing PIF algorithm presented in
this paper can be used to design a universal transformer [13] to provide
a snap-stabilizing version of a wide class of protocols."  The class in
question is single-initiator global computations: the root asks, every
processor computes, the answers fold back to the root.

:class:`QueryService` packages that transformation: register named
handlers (ordinary Python callables per processor); each
:meth:`QueryService.query` call runs one PIF wave that carries the
request (name + arguments) down the broadcast and folds the per-node
answers up the feedback.  Because the PIF is snap-stabilizing, the
*first* query after any transient fault already returns a complete,
fresh answer set — the transformed computation is itself snap-
stabilizing.

Guarantees per completed query (inherited from PIF1/PIF2):

* every processor evaluated the handler for *this* request exactly once
  (answers are computed at the F-action, after the request arrived);
* the root's result contains exactly one answer per processor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from repro.applications.broadcast import BroadcastService
from repro.errors import ReproError
from repro.runtime.daemons import Daemon
from repro.runtime.network import Network
from repro.runtime.state import Configuration

__all__ = ["QueryResult", "QueryService"]

#: A handler: ``(node, args) -> answer``.
Handler = Callable[[int, object], object]


@dataclass(frozen=True, slots=True)
class QueryResult:
    """One completed global query."""

    name: str
    args: object
    #: ``{node: answer}`` — exactly one entry per processor.
    answers: Mapping[int, object]
    rounds: int
    ok: bool

    def complete(self, n: int) -> bool:
        return len(self.answers) == n


class QueryService:
    """Run named global computations, one snap PIF wave per query."""

    def __init__(
        self,
        network: Network,
        *,
        root: int = 0,
        daemon: Daemon | None = None,
        seed: int = 0,
        initial_configuration: Configuration | None = None,
    ) -> None:
        self.network = network
        self._handlers: dict[str, Handler] = {}
        self._current: tuple[str, object] | None = None

        def local_value(node: int) -> object:
            # Invoked at the node's F-action: the request has arrived.
            assert self._current is not None, "no query in flight"
            name, args = self._current
            handler = self._handlers[name]
            return {node: handler(node, args)}

        def combine(values: Sequence[object]) -> object:
            merged: dict[int, object] = {}
            for part in values:
                if not isinstance(part, dict):
                    raise ReproError(
                        f"query fold received stale value {part!r}"
                    )
                merged.update(part)
            return merged

        self._service = BroadcastService(
            network,
            root,
            local_value=local_value,
            combine=combine,
            daemon=daemon,
            seed=seed,
            initial_configuration=initial_configuration,
        )

    def register(self, name: str, handler: Handler) -> None:
        """Register a named per-node computation."""
        if name in self._handlers:
            raise ReproError(f"handler {name!r} already registered")
        self._handlers[name] = handler

    def handlers(self) -> tuple[str, ...]:
        """Names of the registered computations."""
        return tuple(sorted(self._handlers))

    def query(
        self, name: str, args: object = None, *, max_steps: int = 1_000_000
    ) -> QueryResult:
        """Run one global computation; return every processor's answer."""
        if name not in self._handlers:
            raise ReproError(
                f"unknown handler {name!r}; registered: {self.handlers()}"
            )
        self._current = (name, args)
        try:
            outcome = self._service.broadcast(
                ("QUERY", name, args), max_steps=max_steps
            )
        finally:
            self._current = None
        answers = outcome.result
        if not isinstance(answers, dict):
            raise ReproError(f"query result malformed: {answers!r}")
        return QueryResult(
            name=name,
            args=args,
            answers=dict(sorted(answers.items())),
            rounds=outcome.report.rounds,
            ok=outcome.ok,
        )
