"""Applications built on the snap PIF: the use cases the paper motivates."""

from repro.applications.broadcast import BroadcastService, WaveOutcome
from repro.applications.infimum import (
    FoldResult,
    distributed_fold,
    distributed_min,
    distributed_sum,
)
from repro.applications.reset import ResetReceipt, ResetService
from repro.applications.snapshot import Snapshot, SnapshotService
from repro.applications.synchronizer import BarrierReport, BarrierSynchronizer

__all__ = [
    "BarrierReport",
    "BarrierSynchronizer",
    "BroadcastService",
    "FoldResult",
    "ResetReceipt",
    "ResetService",
    "Snapshot",
    "SnapshotService",
    "WaveOutcome",
    "distributed_fold",
    "distributed_min",
    "distributed_sum",
]

from repro.applications.transformer import QueryResult, QueryService

__all__ += ["QueryResult", "QueryService"]

from repro.applications.census import Census, CensusService

__all__ += ["Census", "CensusService"]

from repro.applications.waves import WAVE_KINDS, WaveEngine, WaveServing

__all__ += ["WAVE_KINDS", "WaveEngine", "WaveServing"]
