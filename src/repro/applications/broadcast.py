"""Reliable broadcast-with-feedback service on top of the snap PIF.

:class:`BroadcastService` is the library's main application-facing API:
it owns a :class:`~repro.core.payload.PayloadSnapPif`, a simulator, and
the cycle monitor, and exposes one operation — :meth:`broadcast` — which
runs one complete PIF cycle carrying a value and returns the delivery
evidence (who received, who acknowledged, the aggregated feedback).

Because the PIF is snap-stabilizing, :meth:`broadcast` is correct *from
the very first call*, even when the service is started on a corrupted
configuration (pass ``initial_configuration``): the call may take longer
(stale garbage is cleaned while the wave waits) but the delivered value
and the feedback are right.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.monitor import CycleReport, PifCycleMonitor
from repro.core.payload import PayloadSnapPif
from repro.core.state import PifConstants
from repro.errors import SimulationLimitError
from repro.runtime.daemons import Daemon
from repro.runtime.network import Network
from repro.runtime.simulator import Simulator
from repro.runtime.state import Configuration

__all__ = ["WaveOutcome", "BroadcastService"]


@dataclass(frozen=True, slots=True)
class WaveOutcome:
    """Evidence returned by one :meth:`BroadcastService.broadcast` call."""

    #: The broadcast value ``V``.
    value: object
    #: The root's aggregated feedback (the fold over all local values).
    result: object
    #: Per-node ``msg`` after the cycle — what each processor received.
    delivered: dict[int, object]
    #: The monitor's cycle report (steps, rounds, PIF1/PIF2 verdicts).
    report: CycleReport

    @property
    def delivered_everywhere(self) -> bool:
        """Every processor holds exactly the broadcast value."""
        return all(v == self.value for v in self.delivered.values())

    @property
    def ok(self) -> bool:
        """The cycle satisfied the PIF specification."""
        return self.report.ok


class BroadcastService:
    """Run value-carrying PIF waves on a network.

    Parameters
    ----------
    network, root:
        Topology and initiator.
    local_value, combine:
        Feedback fold hooks (see
        :class:`~repro.core.payload.PayloadSnapPif`).  ``local_value`` is
        invoked at each processor's F-action — the natural "I received
        the broadcast" callback applications hang work off.
    daemon, seed:
        Scheduler (default synchronous) and RNG seed.
    initial_configuration:
        Optional corrupted starting configuration (stabilization demos).
    engine:
        Guard-evaluation engine forwarded to the
        :class:`~repro.runtime.simulator.Simulator` (``None`` resolves
        ``REPRO_ENGINE``, else incremental).  The wave service passes
        ``"columnar"`` here so large topologies run the compiled
        guard kernels.
    """

    def __init__(
        self,
        network: Network,
        root: int = 0,
        *,
        local_value: Callable[[int], object] | None = None,
        combine: Callable[[Sequence[object]], object] | None = None,
        daemon: Daemon | None = None,
        seed: int = 0,
        initial_configuration: Configuration | None = None,
        engine: str | None = None,
    ) -> None:
        self.network = network
        self.protocol = PayloadSnapPif(
            PifConstants.for_network(network, root),
            local_value=local_value,
            combine=combine,
        )
        self.monitor = PifCycleMonitor(self.protocol, network)
        self.simulator = Simulator(
            self.protocol,
            network,
            daemon,
            seed=seed,
            monitors=[self.monitor],
            configuration=initial_configuration,
            engine=engine,
        )

    @property
    def waves_completed(self) -> int:
        """Number of completed PIF cycles so far."""
        return len(self.monitor.completed_cycles)

    def broadcast(self, value: object, *, max_steps: int = 1_000_000) -> WaveOutcome:
        """Run one full PIF cycle carrying ``value``; return delivery evidence."""
        self.protocol.outbox = value
        already = self.waves_completed
        result = self.simulator.run(
            until=lambda _c: self.waves_completed > already,
            max_steps=max_steps,
        )
        if self.waves_completed <= already:
            raise SimulationLimitError(
                f"broadcast wave did not complete within {result.steps} steps"
            )
        report = self.monitor.completed_cycles[-1]
        final = self.simulator.configuration
        return WaveOutcome(
            value=value,
            result=self.protocol.root_result(final),
            delivered=self.protocol.delivered_messages(final),
            report=report,
        )
