"""Network census: reconstruct the whole topology at the root.

A classic use of broadcast-with-feedback: ask every processor for its
local neighborhood and assemble the global map.  One snap-PIF wave
collects, at the root, every processor's neighbor list — i.e. the exact
adjacency of the network — together with degree statistics.  Correct
from the first call, whatever state the system starts in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.applications.transformer import QueryService
from repro.runtime.daemons import Daemon
from repro.runtime.network import Network
from repro.runtime.state import Configuration

__all__ = ["Census", "CensusService"]


@dataclass(frozen=True, slots=True)
class Census:
    """The assembled topology report."""

    adjacency: Mapping[int, tuple[int, ...]]
    rounds: int
    ok: bool

    @property
    def n(self) -> int:
        return len(self.adjacency)

    @property
    def edge_count(self) -> int:
        return sum(len(qs) for qs in self.adjacency.values()) // 2

    def degrees(self) -> dict[int, int]:
        return {p: len(qs) for p, qs in self.adjacency.items()}

    def matches(self, network: Network) -> bool:
        """Whether the census equals the network's real adjacency."""
        if set(self.adjacency) != set(network.nodes):
            return False
        return all(
            tuple(sorted(self.adjacency[p])) == tuple(sorted(network.neighbors(p)))
            for p in network.nodes
        )


class CensusService:
    """Collect the network topology at the root, one PIF wave per census."""

    def __init__(
        self,
        network: Network,
        *,
        root: int = 0,
        daemon: Daemon | None = None,
        seed: int = 0,
        initial_configuration: Configuration | None = None,
    ) -> None:
        self.network = network
        self._service = QueryService(
            network,
            root=root,
            daemon=daemon,
            seed=seed,
            initial_configuration=initial_configuration,
        )
        self._service.register(
            "census", lambda node, _args: network.neighbors(node)
        )

    def take(self, *, max_steps: int = 1_000_000) -> Census:
        """Run one census wave."""
        result = self._service.query("census", max_steps=max_steps)
        return Census(
            adjacency={p: tuple(v) for p, v in result.answers.items()},  # type: ignore[arg-type]
            rounds=result.rounds,
            ok=result.ok,
        )
