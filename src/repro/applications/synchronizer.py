"""Barrier synchronization via repeated PIF waves.

Self-stabilizing PIFs are the engine of self-stabilizing synchronizers
([2, 4, 6] in the paper's bibliography): each completed wave is a global
barrier — when the root's feedback arrives, every processor has executed
its phase-``k`` work.  The snap PIF gives the synchronizer its strongest
form: the *first* barrier is already sound.

Each processor advances its local phase clock in its F-action; after
``k`` waves all clocks read exactly ``k``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.applications.broadcast import BroadcastService
from repro.errors import ReproError
from repro.runtime.daemons import Daemon
from repro.runtime.network import Network
from repro.runtime.state import Configuration

__all__ = ["BarrierReport", "BarrierSynchronizer"]


@dataclass(frozen=True, slots=True)
class BarrierReport:
    """Outcome of one barrier (one PIF wave)."""

    phase: int
    #: Minimum and maximum clock folded through the feedback — equal
    #: when the barrier is sound.
    clock_min: int
    clock_max: int
    rounds: int
    ok: bool

    @property
    def synchronized(self) -> bool:
        return self.clock_min == self.clock_max == self.phase


class BarrierSynchronizer:
    """Phase clocks advanced one-per-wave, with global agreement evidence."""

    def __init__(
        self,
        network: Network,
        *,
        root: int = 0,
        daemon: Daemon | None = None,
        seed: int = 0,
        initial_configuration: Configuration | None = None,
    ) -> None:
        self.network = network
        #: Local phase clock per node.
        self.clocks: dict[int, int] = {p: 0 for p in network.nodes}

        def local_value(node: int) -> object:
            self.clocks[node] += 1
            return (self.clocks[node], self.clocks[node])

        def combine(values: Sequence[object]) -> object:
            lows, highs = [], []
            for part in values:
                if not (isinstance(part, tuple) and len(part) == 2):
                    raise ReproError(f"barrier fold saw stale value {part!r}")
                lows.append(part[0])
                highs.append(part[1])
            return (min(lows), max(highs))

        self._service = BroadcastService(
            network,
            root,
            local_value=local_value,
            combine=combine,
            daemon=daemon,
            seed=seed,
            initial_configuration=initial_configuration,
        )

    def barrier(self, *, max_steps: int = 1_000_000) -> BarrierReport:
        """Run one barrier; every clock advances exactly once."""
        phase = max(self.clocks.values()) + 1
        outcome = self._service.broadcast(("BARRIER", phase), max_steps=max_steps)
        result = outcome.result
        if not (isinstance(result, tuple) and len(result) == 2):
            raise ReproError(f"barrier feedback malformed: {result!r}")
        return BarrierReport(
            phase=phase,
            clock_min=result[0],
            clock_max=result[1],
            rounds=outcome.report.rounds,
            ok=outcome.ok,
        )

    def run_phases(self, count: int) -> list[BarrierReport]:
        """Run ``count`` consecutive barriers."""
        return [self.barrier() for _ in range(count)]
