"""Distributed infimum computation via PIF feedback.

The introduction lists *distributed infimum function computations* among
the classic uses of the broadcast-with-feedback scheme: fold an
associative, commutative, idempotent-or-not operation over one input per
processor, delivering the result at the root in a single wave.

:func:`distributed_fold` runs one snap-PIF wave whose feedback phase
folds the inputs; because the PIF is snap-stabilizing the result is
correct on the first wave, whatever configuration the system starts in.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import reduce
from typing import Callable, Mapping, Sequence

from repro.applications.broadcast import BroadcastService
from repro.errors import ReproError
from repro.runtime.daemons import Daemon
from repro.runtime.network import Network
from repro.runtime.state import Configuration

__all__ = ["FoldResult", "distributed_fold", "distributed_min", "distributed_sum"]


@dataclass(frozen=True, slots=True)
class FoldResult:
    """Result of one distributed fold."""

    value: object
    rounds: int
    steps_span: int
    ok: bool


def distributed_fold(
    network: Network,
    inputs: Mapping[int, object],
    operation: Callable[[object, object], object],
    *,
    root: int = 0,
    daemon: Daemon | None = None,
    seed: int = 0,
    initial_configuration: Configuration | None = None,
) -> FoldResult:
    """Fold ``operation`` over ``inputs`` (one value per node) in one PIF wave.

    ``operation`` must be associative and commutative — the fold order
    follows the dynamically built broadcast tree, which varies with the
    schedule.
    """
    missing = set(network.nodes) - set(inputs)
    if missing:
        raise ReproError(f"inputs missing for nodes {sorted(missing)}")

    def combine(values: Sequence[object]) -> object:
        return reduce(operation, values)

    service = BroadcastService(
        network,
        root,
        local_value=lambda p: inputs[p],
        combine=combine,
        daemon=daemon,
        seed=seed,
        initial_configuration=initial_configuration,
    )
    outcome = service.broadcast(("fold", id(operation)))
    report = outcome.report
    span = (
        report.end_step - report.start_step + 1
        if report.end_step is not None
        else 0
    )
    return FoldResult(
        value=outcome.result, rounds=report.rounds, steps_span=span, ok=outcome.ok
    )


def distributed_min(
    network: Network,
    inputs: Mapping[int, object],
    **kwargs: object,
) -> FoldResult:
    """The infimum proper: global minimum of one input per processor."""
    return distributed_fold(
        network, inputs, lambda a, b: min(a, b), **kwargs  # type: ignore[arg-type]
    )


def distributed_sum(
    network: Network,
    inputs: Mapping[int, object],
    **kwargs: object,
) -> FoldResult:
    """Global sum — correct because each processor is folded exactly once."""
    return distributed_fold(
        network, inputs, lambda a, b: a + b, **kwargs  # type: ignore[operator, arg-type]
    )
