"""Invariants, fault injection, bound formulas and the experiment harness."""

from repro.analysis.bounds import (
    BoundSheet,
    bound_sheet,
    cycle_bound,
    glt_bound,
    good_count_bound,
    normalization_after_good_count_bound,
    normalization_bound,
    theorem2_ebn_bound,
    theorem2_ef_bound,
    theorem2_sb_bound,
)
from repro.analysis.experiments import (
    CycleMeasurement,
    StabilizationMeasurement,
    Theorem2Measurement,
    measure_cycles,
    measure_stabilization,
    measure_theorem2,
)
from repro.analysis.faults import FAULT_MODES, FaultInjector
from repro.analysis.invariants import (
    InvariantMonitor,
    NormalAudit,
    audit_normality,
    property1_violations,
    property2_violations,
)

__all__ = [
    "BoundSheet",
    "CycleMeasurement",
    "FAULT_MODES",
    "FaultInjector",
    "InvariantMonitor",
    "NormalAudit",
    "StabilizationMeasurement",
    "Theorem2Measurement",
    "audit_normality",
    "bound_sheet",
    "cycle_bound",
    "glt_bound",
    "good_count_bound",
    "measure_cycles",
    "measure_stabilization",
    "measure_theorem2",
    "normalization_after_good_count_bound",
    "normalization_bound",
    "property1_violations",
    "property2_violations",
    "theorem2_ebn_bound",
    "theorem2_ef_bound",
    "theorem2_sb_bound",
]

from repro.analysis.lemmas import (
    Lemma4Monitor,
    LemmaMonitor,
    lemma2_violations,
    lemma3_violations,
    lemma5_violations,
)

__all__ += [
    "Lemma4Monitor",
    "LemmaMonitor",
    "lemma2_violations",
    "lemma3_violations",
    "lemma5_violations",
]

from repro.analysis.midrun import MidRunFaultReport, run_with_midrun_faults

__all__ += ["MidRunFaultReport", "run_with_midrun_faults"]

from repro.analysis.search import (
    WorstCase,
    search_worst_cycle,
    search_worst_stabilization,
)

__all__ += ["WorstCase", "search_worst_cycle", "search_worst_stabilization"]

from repro.analysis.complexity import CycleStats, collect_cycle_stats

__all__ += ["CycleStats", "collect_cycle_stats"]
