"""Adversarial search for worst-case executions.

The paper's bounds are worst-case over all initial configurations *and*
all daemon behaviors.  Random sampling explores that space thinly; this
module adds a simple randomized search that sweeps fault models,
adversary patience values and schedule seeds, keeps the worst execution
found for a given objective (rounds to normalization, rounds to the
GoodLegalTree, or PIF cycle rounds), and reports how close to the proved
bound the search got — the measured "hardness gap" shown in E2/E3/E4.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random

from repro.analysis.experiments import (
    StabilizationMeasurement,
    measure_cycles,
    measure_stabilization,
)
from repro.analysis.faults import FAULT_MODES
from repro.errors import ReproError
from repro.runtime.daemons import (
    AdversarialDaemon,
    CentralDaemon,
    Daemon,
    DistributedRandomDaemon,
    WeaklyFairDaemon,
)
from repro.runtime.network import Network

__all__ = ["WorstCase", "search_worst_stabilization", "search_worst_cycle"]


@dataclass(frozen=True, slots=True)
class WorstCase:
    """The worst execution a search found."""

    objective: str
    value: int
    bound: int
    #: How the execution is reproduced.
    fault_mode: str | None
    daemon: str
    seed: int
    attempts: int

    @property
    def within_bound(self) -> bool:
        return self.value <= self.bound

    @property
    def hardness(self) -> float:
        """Fraction of the proved bound the search reached (0..1]."""
        return self.value / self.bound if self.bound else 0.0


def _make_daemon(kind: int, rng: Random) -> tuple[str, Daemon | None]:
    """One of four scheduler regimes, randomized parameters."""
    if kind == 0:
        return "synchronous", None
    if kind == 1:
        return "central", CentralDaemon(choice="random")
    if kind == 2:
        p = rng.choice((0.2, 0.4, 0.6, 0.8))
        return f"async-{p:.1f}", DistributedRandomDaemon(p)
    patience = rng.choice((2, 3, 5, 8))
    return (
        f"adversarial-p{patience}",
        WeaklyFairDaemon(AdversarialDaemon(patience=patience), patience=2 * patience),
    )


def search_worst_stabilization(
    network: Network,
    *,
    objective: str = "normal",
    attempts: int = 40,
    seed: int = 0,
    root: int = 0,
) -> WorstCase:
    """Search fault modes × daemons × seeds for slow convergence.

    ``objective`` is ``"good_count"``, ``"normal"`` or ``"glt"``.
    """
    extractors = {
        "good_count": lambda m: (m.rounds_to_good_count, m.good_count_bound),
        "normal": lambda m: (m.rounds_to_normal, m.normalization_bound),
        "glt": lambda m: (
            m.rounds_to_good_configuration,
            m.glt_bound,
        ),
    }
    if objective not in extractors:
        raise ReproError(
            f"unknown objective {objective!r}; choose from {sorted(extractors)}"
        )
    extract = extractors[objective]
    rng = Random(seed)
    best: WorstCase | None = None
    for attempt in range(attempts):
        mode = rng.choice(FAULT_MODES)
        daemon_name, daemon = _make_daemon(rng.randrange(4), rng)
        run_seed = rng.randrange(1 << 30)
        measurement: StabilizationMeasurement = measure_stabilization(
            network, root=root, fault_mode=mode, seed=run_seed, daemon=daemon
        )
        value, bound = extract(measurement)
        if best is None or value > best.value:
            best = WorstCase(
                objective=objective,
                value=value,
                bound=bound,
                fault_mode=mode,
                daemon=daemon_name,
                seed=run_seed,
                attempts=attempts,
            )
    assert best is not None
    return best


def search_worst_cycle(
    network: Network,
    *,
    attempts: int = 25,
    seed: int = 0,
    root: int = 0,
) -> WorstCase:
    """Search daemons × seeds for the costliest PIF cycle (vs ``5h+5``)."""
    rng = Random(seed)
    best: WorstCase | None = None
    for _attempt in range(attempts):
        daemon_name, daemon = _make_daemon(rng.randrange(4), rng)
        run_seed = rng.randrange(1 << 30)
        measurement = measure_cycles(
            network, root=root, daemon=daemon, seed=run_seed, cycles=1
        )
        value = measurement.cycle_rounds[0]
        bound = measurement.cycle_bounds[0]
        if best is None or value > best.value:
            best = WorstCase(
                objective="cycle",
                value=value,
                bound=bound,
                fault_mode=None,
                daemon=daemon_name,
                seed=run_seed,
                attempts=attempts,
            )
    assert best is not None
    return best
