"""Multi-seed cost statistics for PIF cycles.

E1/E8 report single representative cycles; this module aggregates cycle
cost over many seeds and daemons into summary statistics (min / mean /
max rounds and moves), the form in which empirical complexity results
are usually quoted.  Used by the scalability analyses and available to
library users benchmarking their own topologies.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.analysis import bounds
from repro.core.monitor import PifCycleMonitor
from repro.core.pif import SnapPif
from repro.errors import SimulationLimitError
from repro.runtime.daemons import Daemon
from repro.runtime.network import Network
from repro.runtime.simulator import Simulator

__all__ = ["CycleStats", "collect_cycle_stats"]


@dataclass(frozen=True, slots=True)
class CycleStats:
    """Aggregated cost of PIF cycles over several runs."""

    topology: str
    daemon: str
    samples: int
    rounds_min: int
    rounds_mean: float
    rounds_max: int
    moves_min: int
    moves_mean: float
    moves_max: int
    height_max: int
    #: Theorem 4 bound at the worst observed height.
    bound_at_max_height: int

    @property
    def within_bound(self) -> bool:
        return self.rounds_max <= self.bound_at_max_height

    def row(self) -> dict[str, object]:
        """Render as a reporting-table row."""
        return {
            "topology": self.topology,
            "daemon": self.daemon,
            "samples": self.samples,
            "rounds min/mean/max": (
                f"{self.rounds_min}/{self.rounds_mean:.1f}/{self.rounds_max}"
            ),
            "moves min/mean/max": (
                f"{self.moves_min}/{self.moves_mean:.1f}/{self.moves_max}"
            ),
            "h max": self.height_max,
            "bound 5h+5": self.bound_at_max_height,
            "within": "yes" if self.within_bound else "NO",
        }


def collect_cycle_stats(
    network: Network,
    *,
    root: int = 0,
    daemon_factory: Callable[[], Daemon | None] | None = None,
    seeds: Sequence[int] = tuple(range(10)),
    max_steps: int = 500_000,
) -> CycleStats:
    """Measure one cycle per seed and aggregate.

    ``daemon_factory`` builds a fresh daemon per run (``None`` =
    synchronous); statistics are over the per-seed first cycles.
    """
    protocol = SnapPif.for_network(network, root)
    all_rounds: list[int] = []
    all_moves: list[int] = []
    heights: list[int] = []
    daemon_name = "synchronous"

    for seed in seeds:
        daemon = daemon_factory() if daemon_factory is not None else None
        monitor = PifCycleMonitor(protocol, network)
        sim = Simulator(
            protocol, network, daemon, seed=seed, monitors=[monitor]
        )
        daemon_name = sim.daemon.name
        sim.run(
            until=lambda _c: len(monitor.completed_cycles) >= 1,
            max_steps=max_steps,
        )
        if not monitor.completed_cycles:
            raise SimulationLimitError(
                f"no cycle completed on {network.name} (seed {seed})"
            )
        cycle = monitor.completed_cycles[0]
        all_rounds.append(cycle.rounds)
        all_moves.append(cycle.moves)
        heights.append(cycle.height)

    height_max = max(heights)
    return CycleStats(
        topology=network.name,
        daemon=daemon_name,
        samples=len(all_rounds),
        rounds_min=min(all_rounds),
        rounds_mean=statistics.fmean(all_rounds),
        rounds_max=max(all_rounds),
        moves_min=min(all_moves),
        moves_mean=statistics.fmean(all_moves),
        moves_max=max(all_moves),
        height_max=height_max,
        bound_at_max_height=bounds.cycle_bound(height_max),
    )
