"""Fault injection: realizing "starting from any configuration".

Self- and snap-stabilization quantify over *all* initial configurations.
The :class:`FaultInjector` provides the initial-configuration
distributions the stabilization experiments sample from:

* ``uniform`` — every variable drawn uniformly from its domain (the
  protocol's own :meth:`random_state`);
* ``corrupt_some`` — a clean configuration with ``k`` processors
  replaced by random states (models transient faults hitting a running
  system);
* ``fake_wave`` — everyone broadcasting with arbitrary parents/levels
  and inflated counts: the hardest case for the count machinery, because
  it maximizes stale trees the corrections must dismantle;
* ``stale_feedback`` — everyone in phase F: exercises the F-correction
  path and the drawback scenario of non-snap PIFs (stale F states look
  like completed acknowledgments);
* ``deep_garbage`` — consistent-looking parent chains that do *not*
  reach the root (normal-looking stale trees — the slowest to remove,
  driving the worst cases of Theorems 1 and 3).

All generators are deterministic in ``seed``.
"""

from __future__ import annotations

from random import Random
from typing import Callable, Mapping

from repro.core.state import Phase, PifConstants, PifState
from repro.errors import ReproError
from repro.runtime.network import Network
from repro.runtime.protocol import Protocol
from repro.runtime.state import Configuration

__all__ = ["FaultInjector", "FAULT_MODES"]


class FaultInjector:
    """Generate adversarial initial configurations for a PIF protocol."""

    def __init__(
        self, protocol: Protocol, network: Network, k: PifConstants
    ) -> None:
        self.protocol = protocol
        self.network = network
        self.k = k
        self._modes: Mapping[str, Callable[[Random], Configuration]] = {
            "uniform": self.uniform,
            "corrupt_some": self.corrupt_some,
            "fake_wave": self.fake_wave,
            "stale_feedback": self.stale_feedback,
            "deep_garbage": self.deep_garbage,
        }

    @property
    def modes(self) -> tuple[str, ...]:
        """Names of the available fault models."""
        return tuple(self._modes)

    def generate(self, mode: str, seed: int) -> Configuration:
        """Sample one initial configuration from the named fault model."""
        try:
            generator = self._modes[mode]
        except KeyError:
            raise ReproError(
                f"unknown fault mode {mode!r}; known: {sorted(self._modes)}"
            ) from None
        return generator(Random(seed))

    # ------------------------------------------------------------------
    # Fault models
    # ------------------------------------------------------------------
    def uniform(self, rng: Random) -> Configuration:
        """Every variable uniform over its domain."""
        return self.protocol.random_configuration(self.network, rng)

    def corrupt_some(self, rng: Random, fraction: float = 0.3) -> Configuration:
        """Clean configuration with a random fraction of nodes corrupted."""
        config = self.protocol.initial_configuration(self.network)
        victims = [p for p in self.network.nodes if rng.random() < fraction]
        if not victims:
            victims = [rng.choice(list(self.network.nodes))]
        updates = {
            p: self.protocol.random_state(p, self.network, rng) for p in victims
        }
        return config.replace(updates)

    def fake_wave(self, rng: Random) -> Configuration:
        """Everyone in phase B with arbitrary parents, levels and big counts."""
        states = []
        for p in self.network.nodes:
            if p == self.k.root:
                states.append(
                    PifState(
                        pif=Phase.B,
                        par=None,
                        level=0,
                        count=rng.randint(1, self.k.n_prime),
                        fok=rng.random() < 0.5,
                    )
                )
            else:
                states.append(
                    PifState(
                        pif=Phase.B,
                        par=rng.choice(self.network.neighbors(p)),
                        level=rng.randint(1, self.k.l_max),
                        count=rng.randint(1, self.k.n_prime),
                        fok=rng.random() < 0.5,
                    )
                )
        return self._payload_compatible(Configuration(tuple(states)), rng)

    def stale_feedback(self, rng: Random) -> Configuration:
        """Everyone in phase F (looks like a finished wave that never happened)."""
        states = []
        for p in self.network.nodes:
            if p == self.k.root:
                states.append(
                    PifState(pif=Phase.F, par=None, level=0, count=self.k.n, fok=True)
                )
            else:
                states.append(
                    PifState(
                        pif=Phase.F,
                        par=rng.choice(self.network.neighbors(p)),
                        level=rng.randint(1, self.k.l_max),
                        count=rng.randint(1, self.k.n_prime),
                        fok=rng.random() < 0.5,
                    )
                )
        return self._payload_compatible(Configuration(tuple(states)), rng)

    def deep_garbage(self, rng: Random) -> Configuration:
        """Locally consistent stale trees rooted away from the root.

        Builds a BFS forest from random fake roots (excluding the real
        root), with levels consistent along edges (``GoodLevel`` holds),
        so the only violations are at the fake roots — the configuration
        class whose correction takes the longest (the ``3·L_max + 3``
        worst cases).
        """
        nodes = [p for p in self.network.nodes if p != self.k.root]
        rng.shuffle(nodes)
        fake_root_count = max(1, len(nodes) // 4)
        fake_roots = nodes[:fake_root_count]

        parent: dict[int, int] = {}
        level: dict[int, int] = {}
        frontier = list(fake_roots)
        for fr in fake_roots:
            level[fr] = rng.randint(1, max(1, self.k.l_max // 2))
        seen = set(fake_roots) | {self.k.root}
        while frontier:
            p = frontier.pop(0)
            for q in self.network.neighbors(p):
                if q not in seen and level[p] < self.k.l_max:
                    seen.add(q)
                    parent[q] = p
                    level[q] = level[p] + 1
                    frontier.append(q)

        states = []
        for p in self.network.nodes:
            if p == self.k.root:
                states.append(
                    PifState(pif=Phase.C, par=None, level=0, count=1, fok=False)
                )
            elif p in level:
                states.append(
                    PifState(
                        pif=Phase.B,
                        par=parent.get(p, rng.choice(self.network.neighbors(p))),
                        level=level[p],
                        count=1,
                        fok=False,
                    )
                )
            else:
                states.append(
                    PifState(
                        pif=Phase.C,
                        par=rng.choice(self.network.neighbors(p)),
                        level=1,
                        count=1,
                        fok=False,
                    )
                )
        return self._payload_compatible(Configuration(tuple(states)), rng)

    # ------------------------------------------------------------------
    def _payload_compatible(
        self, configuration: Configuration, rng: Random
    ) -> Configuration:
        """Upgrade plain states to the protocol's state type if needed.

        Hand-built :class:`PifState` objects are converted through the
        protocol's own :meth:`random_state` fields when the protocol uses
        an extended (payload) state class.
        """
        sample = self.protocol.initial_state(
            next(iter(self.network.nodes)), self.network
        )
        if type(sample) is type(configuration[0]):
            return configuration
        upgraded = []
        for p in self.network.nodes:
            base = configuration[p]
            assert isinstance(base, PifState)
            random_full = self.protocol.random_state(p, self.network, rng)
            upgraded.append(
                random_full.replace(
                    pif=base.pif,
                    par=base.par,
                    level=base.level,
                    count=base.count,
                    fok=base.fok,
                )
            )
        return Configuration(tuple(upgraded))


#: The fault model names, for experiment grids.
FAULT_MODES = ("uniform", "corrupt_some", "fake_wave", "stale_feedback", "deep_garbage")
