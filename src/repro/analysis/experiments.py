"""Measurement harness: the runs behind every experiment in EXPERIMENTS.md.

Each ``measure_*`` function performs one experimental unit — a PIF cycle
measurement, a stabilization run from an adversarial configuration, a
Theorem 2 phase-convergence run — and returns a small result dataclass
carrying both the measurement and the corresponding paper bound, so that
benchmarks and tests can assert ``measured ≤ bound`` and the reporting
layer can print paper-vs-measured tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from random import Random
from typing import Callable

from repro.analysis import bounds
from repro.analysis.faults import FaultInjector
from repro.analysis.invariants import audit_normality
from repro.core import definitions as defs
from repro.core.monitor import PifCycleMonitor
from repro.core.pif import SnapPif
from repro.core.state import Phase, PifConstants, PifState
from repro.errors import SimulationLimitError
from repro.runtime.daemons import Daemon
from repro.runtime.network import Network
from repro.runtime.protocol import Context
from repro.runtime.simulator import Simulator
from repro.runtime.state import Configuration
from repro.core import predicates as pred

__all__ = [
    "CycleMeasurement",
    "measure_cycles",
    "StabilizationMeasurement",
    "measure_stabilization",
    "Theorem2Measurement",
    "measure_theorem2",
]


# ----------------------------------------------------------------------
# E1: PIF cycle cost (Theorem 4)
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class CycleMeasurement:
    """Rounds/heights of consecutive PIF cycles from the clean configuration."""

    topology: str
    n: int
    daemon: str
    cycle_rounds: tuple[int, ...]
    heights: tuple[int, ...]
    #: Theorem 4 bound computed from the *measured* height of each cycle.
    cycle_bounds: tuple[int, ...]
    all_cycles_ok: bool

    @property
    def within_bound(self) -> bool:
        """Every cycle finished within ``5·h + 5`` rounds."""
        return all(
            r <= b for r, b in zip(self.cycle_rounds, self.cycle_bounds)
        )

    @property
    def max_rounds(self) -> int:
        return max(self.cycle_rounds) if self.cycle_rounds else 0

    @property
    def max_height(self) -> int:
        return max(self.heights) if self.heights else 0


def measure_cycles(
    network: Network,
    *,
    root: int = 0,
    daemon: Daemon | None = None,
    seed: int = 0,
    cycles: int = 3,
    max_steps: int = 1_000_000,
) -> CycleMeasurement:
    """Run ``cycles`` PIF cycles from the clean configuration and measure each."""
    protocol = SnapPif.for_network(network, root)
    monitor = PifCycleMonitor(protocol, network)
    sim = Simulator(protocol, network, daemon, seed=seed, monitors=[monitor])
    result = sim.run(
        until=lambda _c: len(monitor.completed_cycles) >= cycles,
        max_steps=max_steps,
    )
    if len(monitor.completed_cycles) < cycles:
        raise SimulationLimitError(
            f"only {len(monitor.completed_cycles)}/{cycles} cycles completed "
            f"within {result.steps} steps on {network.name}"
        )
    done = monitor.completed_cycles[:cycles]
    return CycleMeasurement(
        topology=network.name,
        n=network.n,
        daemon=sim.daemon.name,
        cycle_rounds=tuple(c.rounds for c in done),
        heights=tuple(c.height for c in done),
        cycle_bounds=tuple(bounds.cycle_bound(c.height) for c in done),
        all_cycles_ok=all(c.ok for c in done),
    )


# ----------------------------------------------------------------------
# E2/E3/E4: stabilization (Property 3, Theorems 1 and 3)
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class StabilizationMeasurement:
    """Rounds after which each stabilization property held *permanently*.

    A property's measurement is the number of completed rounds at the
    last observed violation plus one — i.e. "held forever from round R
    on" — which is exactly what the paper's bounds promise.
    """

    topology: str
    n: int
    l_max: int
    fault_mode: str
    daemon: str
    seed: int
    rounds_to_good_count: int
    rounds_to_normal: int
    rounds_to_good_configuration: int
    good_count_bound: int
    normalization_bound: int
    glt_bound: int
    observed_rounds: int

    @property
    def within_bounds(self) -> bool:
        return (
            self.rounds_to_good_count <= self.good_count_bound
            and self.rounds_to_normal <= self.normalization_bound
            and self.rounds_to_good_configuration <= self.glt_bound
        )


def _all_good_count(
    configuration: Configuration, network: Network, k: PifConstants
) -> bool:
    return all(
        pred.good_count(Context(p, network, configuration), k)
        for p in network.nodes
    )


def measure_stabilization(
    network: Network,
    *,
    root: int = 0,
    fault_mode: str = "uniform",
    seed: int = 0,
    daemon: Daemon | None = None,
    observe_rounds: int | None = None,
    max_steps: int = 2_000_000,
) -> StabilizationMeasurement:
    """Run from an adversarial configuration; measure convergence rounds.

    The simulation observes at least the Theorem 3 bound's worth of
    rounds (``8·L_max + 7``, override via ``observe_rounds``) plus the
    remaining suffix needed for any wave in progress to finish, and
    records the last round at which each property was violated.
    """
    protocol = SnapPif.for_network(network, root)
    k = protocol.constants
    injector = FaultInjector(protocol, network, k)
    initial = injector.generate(fault_mode, seed)
    horizon = (
        observe_rounds
        if observe_rounds is not None
        else bounds.glt_bound(k.l_max) + 2
    )

    sim = Simulator(protocol, network, daemon, configuration=initial, seed=seed)
    last_bad_good_count = -1
    last_bad_normal = -1
    last_bad_good_cfg = -1

    def observe(configuration: Configuration) -> None:
        nonlocal last_bad_good_count, last_bad_normal, last_bad_good_cfg
        rounds_now = sim.rounds
        if not _all_good_count(configuration, network, k):
            last_bad_good_count = rounds_now
        audit = audit_normality(configuration, network, k)
        if not audit.is_normal:
            last_bad_normal = rounds_now
        if not defs.is_good_configuration(configuration, network, k):
            last_bad_good_cfg = rounds_now

    observe(sim.configuration)
    while sim.rounds < horizon and sim.steps < max_steps and not sim.is_terminal():
        sim.step()
        observe(sim.configuration)

    return StabilizationMeasurement(
        topology=network.name,
        n=network.n,
        l_max=k.l_max,
        fault_mode=fault_mode,
        daemon=sim.daemon.name,
        seed=seed,
        rounds_to_good_count=last_bad_good_count + 1,
        rounds_to_normal=last_bad_normal + 1,
        rounds_to_good_configuration=last_bad_good_cfg + 1,
        good_count_bound=bounds.good_count_bound(k.l_max),
        normalization_bound=bounds.normalization_bound(k.l_max),
        glt_bound=bounds.glt_bound(k.l_max),
        observed_rounds=sim.rounds,
    )


# ----------------------------------------------------------------------
# E5: Theorem 2 phase convergence
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class Theorem2Measurement:
    """Rounds to reach the phase-appropriate target configuration."""

    topology: str
    case: int
    seed: int
    rounds_to_target: int
    bound: int
    #: Which target was reached ("SB", "EF", "EBN") — cases 2 and 3 may
    #: legitimately resolve to SB when the pre-existing wave is aborted
    #: by a correction (the wave was not root-initiated).
    reached: str

    @property
    def within_bound(self) -> bool:
        return self.rounds_to_target <= self.bound


def _force_root(
    configuration: Configuration, k: PifConstants, **changes: object
) -> Configuration:
    root_state = configuration[k.root]
    assert isinstance(root_state, PifState)
    return configuration.replace({k.root: root_state.replace(**changes)})


def measure_theorem2(
    network: Network,
    case: int,
    *,
    root: int = 0,
    seed: int = 0,
    daemon: Daemon | None = None,
    max_steps: int = 2_000_000,
) -> Theorem2Measurement:
    """Measure one Theorem 2 case from a randomized configuration.

    * case 1: ``Pif_r = F`` → SB within ``4·L_max + 4``;
    * case 2: ``Pif_r = B ∧ Fok_r`` → EF within ``5·L_max + 4``;
    * case 3: ``Pif_r = B ∧ ¬Fok_r`` → EBN within ``5·L_max + 4``.

    For cases 2 and 3 an aborting correction at the root yields an SB
    configuration instead; both outcomes are within the theorem's intent
    (the pre-existing wave either finishes its phase or is removed) and
    are accepted, with the outcome recorded in :attr:`reached`.
    """
    protocol = SnapPif.for_network(network, root)
    k = protocol.constants
    injector = FaultInjector(protocol, network, k)
    initial = injector.generate("uniform", seed)
    if case == 1:
        initial = _force_root(initial, k, pif=Phase.F)
        bound = bounds.theorem2_sb_bound(k.l_max)
        targets: dict[str, Callable[[Configuration], bool]] = {
            "SB": lambda c: defs.is_sb_configuration(c, network, k),
        }
    elif case == 2:
        initial = _force_root(initial, k, pif=Phase.B, fok=True, count=k.n)
        bound = bounds.theorem2_ef_bound(k.l_max)
        targets = {
            "EF": lambda c: defs.is_ef_configuration(c, network, k),
            "SB": lambda c: defs.is_sb_configuration(c, network, k),
        }
    elif case == 3:
        initial = _force_root(initial, k, pif=Phase.B, fok=False, count=1)
        bound = bounds.theorem2_ebn_bound(k.l_max)
        targets = {
            "EBN": lambda c: defs.is_ebn_configuration(c, network, k),
            "SB": lambda c: defs.is_sb_configuration(c, network, k),
        }
    else:
        raise ValueError(f"Theorem 2 has cases 1-3, got {case}")

    sim = Simulator(protocol, network, daemon, configuration=initial, seed=seed)

    def hit(configuration: Configuration) -> str | None:
        for label, predicate in targets.items():
            if predicate(configuration):
                return label
        return None

    reached = hit(sim.configuration)
    while reached is None and sim.steps < max_steps and not sim.is_terminal():
        sim.step()
        reached = hit(sim.configuration)
    if reached is None:
        raise SimulationLimitError(
            f"Theorem 2 case {case} target not reached within "
            f"{sim.steps} steps on {network.name}"
        )
    return Theorem2Measurement(
        topology=network.name,
        case=case,
        seed=seed,
        rounds_to_target=sim.rounds,
        bound=bound,
        reached=reached,
    )
