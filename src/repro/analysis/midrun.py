"""Mid-run transient faults.

Stabilization is usually *exercised* from a corrupted initial
configuration, but the fault model it formalizes is a fault striking at
an arbitrary moment of a running system.  This module hits a live
simulation with such faults and measures what the theory promises:

* the system re-converges within the same bounds (the post-fault
  configuration is just another "initial" configuration), and
* every wave the root initiates after (or during!) the fault still
  satisfies the PIF specification — snap-stabilization has no
  post-fault blackout window at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random

from repro.analysis.faults import FaultInjector
from repro.core.monitor import PifCycleMonitor
from repro.core.pif import SnapPif
from repro.errors import ReproError
from repro.runtime.daemons import Daemon
from repro.runtime.network import Network
from repro.runtime.simulator import Simulator

__all__ = ["MidRunFaultReport", "run_with_midrun_faults"]


@dataclass(frozen=True, slots=True)
class MidRunFaultReport:
    """Outcome of a run with transient faults injected mid-execution."""

    faults_injected: int
    cycles_completed: int
    cycles_ok: int
    total_steps: int
    total_rounds: int

    @property
    def all_ok(self) -> bool:
        return self.cycles_completed == self.cycles_ok


def run_with_midrun_faults(
    network: Network,
    *,
    root: int = 0,
    faults: int = 3,
    cycles_between_faults: int = 1,
    fault_mode: str = "corrupt_some",
    daemon: Daemon | None = None,
    seed: int = 0,
    max_steps: int = 2_000_000,
) -> MidRunFaultReport:
    """Run the snap PIF, repeatedly corrupting it mid-run.

    The schedule: let ``cycles_between_faults`` waves complete, inject a
    fault (replace the configuration from the given fault model — while
    a wave may well be in flight), repeat ``faults`` times, then let one
    final batch of waves complete.  Every *completed* cycle's PIF1/PIF2
    verdict is tallied.

    Note: a wave interrupted by a fault is not an initiated wave of the
    post-fault configuration, so the monitor is restarted by the
    injection (its specification quantifies over post-fault initiations
    — exactly Definition 1 applied to the new "initial" configuration).
    """
    protocol = SnapPif.for_network(network, root)
    injector = FaultInjector(protocol, network, protocol.constants)
    monitor = PifCycleMonitor(protocol, network)
    sim = Simulator(
        protocol, network, daemon, seed=seed, monitors=[monitor]
    )
    rng = Random(seed)

    completed = 0
    ok = 0

    def drain(target_cycles: int) -> None:
        nonlocal completed, ok
        done = 0
        while done < target_cycles:
            result = sim.run(
                until=lambda _c: len(monitor.completed_cycles) > done,
                max_steps=max_steps,
            )
            if not result.satisfied:
                raise ReproError(
                    f"wave did not complete within {result.steps} steps"
                )
            done = len(monitor.completed_cycles)
        completed += done
        ok += sum(1 for c in monitor.completed_cycles if c.ok)

    for _ in range(faults):
        drain(cycles_between_faults)
        sim.reset_configuration(
            injector.generate(fault_mode, rng.randrange(1 << 30))
        )
    drain(cycles_between_faults)

    return MidRunFaultReport(
        faults_injected=faults,
        cycles_completed=completed,
        cycles_ok=ok,
        total_steps=sim.steps,
        total_rounds=sim.rounds,
    )
