"""The paper's proved bounds, as formulas.

Each function returns the round bound for the corresponding claim; the
benchmarks compare measured round counts against them and EXPERIMENTS.md
records the paper-vs-measured pairs.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "good_count_bound",
    "normalization_after_good_count_bound",
    "normalization_bound",
    "theorem2_sb_bound",
    "theorem2_ef_bound",
    "theorem2_ebn_bound",
    "glt_bound",
    "cycle_bound",
    "BoundSheet",
    "bound_sheet",
]


def good_count_bound(l_max: int) -> int:
    """Property 3: ``GoodCount`` holds everywhere after ``L_max + 1`` rounds."""
    return l_max + 1


def normalization_after_good_count_bound(l_max: int) -> int:
    """Corollary 2: all-normal within ``2·L_max + 2`` rounds once GoodCount holds."""
    return 2 * l_max + 2


def normalization_bound(l_max: int) -> int:
    """Theorem 1: every processor normal within ``3·L_max + 3`` rounds."""
    return 3 * l_max + 3


def theorem2_sb_bound(l_max: int) -> int:
    """Theorem 2.1: from ``Pif_r = F``, an SB configuration within ``4·L_max + 4``."""
    return 4 * l_max + 4


def theorem2_ef_bound(l_max: int) -> int:
    """Theorem 2.2: from ``Pif_r = B ∧ Fok_r``, an EF configuration within ``5·L_max + 4``."""
    return 5 * l_max + 4


def theorem2_ebn_bound(l_max: int) -> int:
    """Theorem 2.3: from ``Pif_r = B ∧ ¬Fok_r``, an EBN configuration within ``5·L_max + 4``."""
    return 5 * l_max + 4


def glt_bound(l_max: int) -> int:
    """Theorem 3: the GoodLegalTree is created within ``8·L_max + 7`` rounds."""
    return 8 * l_max + 7


def cycle_bound(height: int) -> int:
    """Theorem 4: a PIF cycle from SBN completes within ``5·h + 5`` rounds.

    ``height`` is the height of the tree built during the cycle; it is at
    least the root's eccentricity and at most the longest chordless path
    from the root.
    """
    return 5 * height + 5


@dataclass(frozen=True, slots=True)
class BoundSheet:
    """All bounds instantiated for one network (one row of EXPERIMENTS.md)."""

    l_max: int
    height_upper: int
    good_count: int
    normalization: int
    glt: int
    cycle: int


def bound_sheet(l_max: int, height_upper: int) -> BoundSheet:
    """Instantiate every bound for a network with the given parameters."""
    return BoundSheet(
        l_max=l_max,
        height_upper=height_upper,
        good_count=good_count_bound(l_max),
        normalization=normalization_bound(l_max),
        glt=glt_bound(l_max),
        cycle=cycle_bound(height_upper),
    )
