"""The paper's lemmas as executable step-level monitors ("proofs as tests").

Section 4.3's convergence argument rests on three step-level claims
about how (ab)normality propagates.  Each is implemented as a check over
a computation step ``γ ↦ γ'`` plus the set of executed actions, and
:class:`LemmaMonitor` applies all of them to every step of a simulation:

* **Lemma 2** — ``GoodCount(p)`` can only *become* false when a
  descendant ``q`` (``Par_q = p``, ``L_q = L_p + 1``, ``Pif_p = B``)
  whose own ``GoodCount`` was false executed ``B-correction`` in this
  step (count damage flows strictly upward, one level per step, which is
  what bounds Property 3 by ``L_max + 1``).
* **Lemma 3** — an abnormal processor can only *become* normal by
  executing one of its own correction actions, or through its parent's
  ``Fok-action`` (nothing else can repair it).
* **Lemma 5** — a normal processor can only *become* abnormal when its
  (new) parent was abnormal and executed a correction in this step, with
  ``L_p = L_{Par_p} + 1`` afterwards (abnormality flows strictly
  downward, which is what bounds Theorem 1 by levels).

Running the monitor over adversarial fuzzed executions (see
``tests/analysis/test_lemmas.py`` and the properties suite) gives
machine-checked evidence for the exact stepping stones of the paper's
proof, not just its end-to-end bounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import predicates as pred
from repro.core.state import Phase, PifConstants
from repro.core.definitions import pif_state
from repro.errors import SpecificationViolation
from repro.runtime.network import Network
from repro.runtime.protocol import Context
from repro.runtime.state import Configuration
from repro.runtime.trace import StepRecord

__all__ = [
    "Lemma4Monitor",
    "LemmaMonitor",
    "lemma2_violations",
    "lemma3_violations",
    "lemma5_violations",
]

_CORRECTIONS = ("B-correction", "F-correction")


def _good_count(configuration: Configuration, network: Network, k: PifConstants, p: int) -> bool:
    return pred.good_count(Context(p, network, configuration), k)


def _normal(configuration: Configuration, network: Network, k: PifConstants, p: int) -> bool:
    return pred.normal(Context(p, network, configuration), k)


def lemma2_violations(
    before: Configuration,
    record: StepRecord,
    after: Configuration,
    network: Network,
    k: PifConstants,
) -> list[str]:
    """Check Lemma 2 on one computation step (see module docstring)."""
    problems: list[str] = []
    for p in network.nodes:
        if p in record.selection:
            # The lemma concerns *environment-induced* damage; a processor
            # rewriting its own count is governed by its action's guard.
            continue
        if _good_count(before, network, k, p) and not _good_count(
            after, network, k, p
        ):
            state_p = pif_state(before, p)
            witness = None
            for q, action in record.selection.items():
                if action != "B-correction":
                    continue
                state_q = pif_state(before, q)
                if (
                    state_q.par == p
                    and state_q.level == state_p.level + 1
                    and state_p.pif is Phase.B
                    and not _good_count(before, network, k, q)
                ):
                    witness = q
                    break
            if witness is None:
                problems.append(
                    f"step {record.index}: GoodCount({p}) broke without a "
                    f"bad-count child executing B-correction"
                )
    return problems


def lemma3_violations(
    before: Configuration,
    record: StepRecord,
    after: Configuration,
    network: Network,
    k: PifConstants,
) -> list[str]:
    """Check Lemma 3 on one computation step."""
    problems: list[str] = []
    for p in network.nodes:
        if _normal(before, network, k, p) or not _normal(after, network, k, p):
            continue
        # p went abnormal -> normal in this step.
        own_action = record.selection.get(p)
        if own_action in _CORRECTIONS:
            continue
        parent = pif_state(before, p).par
        if parent is not None and record.selection.get(parent) == "Fok-action":
            continue
        problems.append(
            f"step {record.index}: abnormal {p} became normal without a "
            f"correction of its own or a parent Fok-action "
            f"(p executed {own_action!r}, parent executed "
            f"{record.selection.get(parent) if parent is not None else None!r})"
        )
    return problems


def lemma5_violations(
    before: Configuration,
    record: StepRecord,
    after: Configuration,
    network: Network,
    k: PifConstants,
) -> list[str]:
    """Check Lemma 5 on one computation step."""
    problems: list[str] = []
    for p in network.nodes:
        if p in record.selection:
            # A processor's own action landing it in an abnormal state
            # would be a guard bug, caught by the invariant tests; the
            # lemma is about environment-induced abnormality.
            continue
        if not _normal(before, network, k, p) or _normal(after, network, k, p):
            continue
        state_after = pif_state(after, p)
        parent = state_after.par
        if parent is None:
            problems.append(
                f"step {record.index}: the root became abnormal without acting"
            )
            continue
        parent_was_abnormal = not _normal(before, network, k, parent)
        parent_corrected = record.selection.get(parent) in _CORRECTIONS
        level_ok = (
            state_after.level == pif_state(after, parent).level + 1
            if state_after.pif is Phase.B
            else True
        )
        if not (parent_was_abnormal and parent_corrected and level_ok):
            problems.append(
                f"step {record.index}: normal {p} became abnormal but its "
                f"parent {parent} was "
                f"{'abnormal' if parent_was_abnormal else 'NORMAL'} and "
                f"executed {record.selection.get(parent)!r}"
            )
    return problems


@dataclass
class Lemma4Monitor:
    """Lemma 4 as a streak check: abnormality lasts at most two rounds.

    "Let p be an abnormal processor in configuration γi.  Then p is a
    normal processor in at least one configuration during the next two
    rounds" — equivalently, no processor is *continuously* abnormal for
    more than two completed rounds.  The monitor tracks, per processor,
    the round at which its current abnormal streak began and flags any
    streak exceeding the bound.
    """

    network: Network
    k: PifConstants
    record_only: bool = False
    violations: list[str] = field(default_factory=list)
    #: Longest continuous-abnormal streak observed, in rounds.
    worst_streak: int = 0
    _rounds: int = 0
    _streak_start: dict[int, int] = field(default_factory=dict)

    def on_start(self, configuration: Configuration) -> None:
        self._rounds = 0
        self._streak_start = {}
        self._observe(configuration)

    def on_step(
        self, before: Configuration, record: StepRecord, after: Configuration
    ) -> None:
        self._rounds += record.rounds_completed
        self._observe(after)

    def _observe(self, configuration: Configuration) -> None:
        for p in self.network.nodes:
            if _normal(configuration, self.network, self.k, p):
                self._streak_start.pop(p, None)
                continue
            start = self._streak_start.setdefault(p, self._rounds)
            streak = self._rounds - start
            self.worst_streak = max(self.worst_streak, streak)
            if streak > 2:
                message = (
                    f"round {self._rounds}: processor {p} continuously "
                    f"abnormal for {streak} rounds (Lemma 4 allows 2)"
                )
                self.violations.append(message)
                if not self.record_only:
                    raise SpecificationViolation(message)


@dataclass
class LemmaMonitor:
    """Simulation monitor applying Lemmas 2, 3 and 5 to every step."""

    network: Network
    k: PifConstants
    record_only: bool = False
    violations: list[str] = field(default_factory=list)
    _last: Configuration | None = None

    def on_start(self, configuration: Configuration) -> None:
        self._last = configuration

    def on_step(
        self, before: Configuration, record: StepRecord, after: Configuration
    ) -> None:
        problems = (
            lemma2_violations(before, record, after, self.network, self.k)
            + lemma3_violations(before, record, after, self.network, self.k)
            + lemma5_violations(before, record, after, self.network, self.k)
        )
        if problems:
            self.violations.extend(problems)
            if not self.record_only:
                raise SpecificationViolation("; ".join(problems))
