"""Executable versions of the paper's Section 4.2 properties.

Property 1 is the invariant of broadcast configurations; Property 2
lists four consequences of normality.  Both are implemented as global
checks usable in tests, fuzzers and as simulation monitors (raising
:class:`~repro.errors.SpecificationViolation` in strict mode).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import definitions as defs
from repro.core import predicates as pred
from repro.core.state import Phase, PifConstants
from repro.errors import SpecificationViolation
from repro.runtime.network import Network
from repro.runtime.protocol import Context
from repro.runtime.state import Configuration
from repro.runtime.trace import StepRecord

__all__ = [
    "property1_violations",
    "property2_violations",
    "NormalAudit",
    "audit_normality",
    "InvariantMonitor",
]


def property1_violations(
    configuration: Configuration, network: Network, k: PifConstants
) -> list[str]:
    """Check Property 1.

    ``(Pif_r = B ∧ ¬Fok_r)`` implies that every LegalTree member ``p``
    has ``Pif_p = B``, correct level, ``¬Fok_p`` and
    ``Count_p ≤ Sum_p``.  Returns human-readable violation descriptions
    (empty list = holds).
    """
    root_state = defs.pif_state(configuration, k.root)
    if not (root_state.pif is Phase.B and not root_state.fok):
        return []
    problems: list[str] = []
    members = defs.legal_tree(configuration, network, k)
    for p in members:
        state = defs.pif_state(configuration, p)
        ctx = Context(p, network, configuration)
        if state.pif is not Phase.B:
            problems.append(f"node {p}: in LegalTree but Pif={state.pif.value}")
        if p != k.root:
            parent_state = defs.pif_state(configuration, state.par)  # type: ignore[arg-type]
            if state.level != parent_state.level + 1:
                problems.append(
                    f"node {p}: level {state.level} != parent level "
                    f"{parent_state.level} + 1"
                )
        if state.fok:
            problems.append(f"node {p}: Fok true in a B/¬Fok_r configuration")
        if not pred.good_count(ctx, k):
            problems.append(f"node {p}: Count exceeds Sum")
    return problems


def property2_violations(
    configuration: Configuration, network: Network, k: PifConstants
) -> list[str]:
    """Check Property 2 (assumes nothing; vacuous unless the configuration is normal).

    In a normal configuration:

    1. every active processor belongs to the GLT;
    2. ``Pif_r = C`` implies every ``Pif_p = C``;
    3. ``Pif_r = F`` implies every LegalTree member has ``Pif_p = F``;
    4. ``Pif_r = B ∧ ¬Fok_r`` implies ``Count_p ≤ #Subtree(p)`` for all
       LegalTree members.
    """
    if defs.abnormal_nodes(configuration, network, k):
        return []
    problems: list[str] = []
    members = defs.legal_tree(configuration, network, k)
    glt = defs.good_legal_tree(configuration, network, k)

    for p in network.nodes:
        state = defs.pif_state(configuration, p)
        if state.pif is not Phase.C and (glt is None or p not in glt):
            problems.append(f"case 1: active node {p} outside the GLT")

    root_state = defs.pif_state(configuration, k.root)
    if root_state.pif is Phase.C:
        for p in network.nodes:
            if defs.pif_state(configuration, p).pif is not Phase.C:
                problems.append(f"case 2: Pif_r=C but node {p} is active")

    if root_state.pif is Phase.F:
        for p in members:
            if defs.pif_state(configuration, p).pif is not Phase.F:
                problems.append(
                    f"case 3: Pif_r=F but LegalTree member {p} has "
                    f"Pif={defs.pif_state(configuration, p).pif.value}"
                )

    if root_state.pif is Phase.B and not root_state.fok:
        for p in members:
            count = defs.pif_state(configuration, p).count
            size = defs.subtree_size(configuration, network, members, p)
            if count > size:
                problems.append(
                    f"case 4: node {p} Count={count} > #Subtree={size}"
                )
    return problems


@dataclass(frozen=True, slots=True)
class NormalAudit:
    """Per-node normality report for one configuration."""

    abnormal: frozenset[int]
    bad_pif: frozenset[int]
    bad_level: frozenset[int]
    bad_fok: frozenset[int]
    bad_count: frozenset[int]

    @property
    def is_normal(self) -> bool:
        return not self.abnormal


def audit_normality(
    configuration: Configuration, network: Network, k: PifConstants
) -> NormalAudit:
    """Break down which Good* predicate each abnormal processor violates."""
    abnormal, bad_pif, bad_level, bad_fok, bad_count = (
        set(),
        set(),
        set(),
        set(),
        set(),
    )
    for p in network.nodes:
        ctx = Context(p, network, configuration)
        ok = True
        if p != k.root:
            if not pred.good_pif(ctx, k):
                bad_pif.add(p)
                ok = False
            if not pred.good_level(ctx, k):
                bad_level.add(p)
                ok = False
        if not pred.good_fok(ctx, k):
            bad_fok.add(p)
            ok = False
        if not pred.good_count(ctx, k):
            bad_count.add(p)
            ok = False
        if not ok:
            abnormal.add(p)
    return NormalAudit(
        abnormal=frozenset(abnormal),
        bad_pif=frozenset(bad_pif),
        bad_level=frozenset(bad_level),
        bad_fok=frozenset(bad_fok),
        bad_count=frozenset(bad_count),
    )


class InvariantMonitor:
    """Simulation monitor asserting Properties 1 and 2 after every step.

    Attach to a :class:`~repro.runtime.simulator.Simulator` to catch
    invariant regressions during any experiment.  Only meaningful for
    runs starting from clean configurations (the properties are proved
    for the stabilized regime); from arbitrary configurations use
    ``record_only=True`` and inspect :attr:`violations`.
    """

    def __init__(
        self,
        network: Network,
        k: PifConstants,
        *,
        record_only: bool = False,
    ) -> None:
        self.network = network
        self.k = k
        self.record_only = record_only
        self.violations: list[tuple[int, str]] = []

    def on_start(self, configuration: Configuration) -> None:
        self._check(configuration, step=-1)

    def on_step(
        self, before: Configuration, record: StepRecord, after: Configuration
    ) -> None:
        self._check(after, step=record.index)

    def _check(self, configuration: Configuration, step: int) -> None:
        problems = property1_violations(configuration, self.network, self.k)
        problems += property2_violations(configuration, self.network, self.k)
        for message in problems:
            self.violations.append((step, message))
            if not self.record_only:
                raise SpecificationViolation(f"step {step}: {message}")
