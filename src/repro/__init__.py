"""Snap-stabilizing PIF in arbitrary networks — full reproduction.

Reproduces Cournier, Datta, Petit, Villain, "Snap-Stabilizing PIF
Algorithm in Arbitrary Networks" (ICDCS 2002): the protocol itself, the
locally-shared-memory execution model it is written in, the baselines it
is contrasted with, the applications it motivates, and an experiment
harness regenerating every proved bound.

Most users need only the re-exports below::

    from repro import SnapPif, Simulator, PifCycleMonitor, line

    net = line(8)
    pif = SnapPif.for_network(net)
    monitor = PifCycleMonitor(pif, net)
    sim = Simulator(pif, net, monitors=[monitor])
    sim.run(until=lambda _c: len(monitor.completed_cycles) >= 1)
    print(monitor.completed_cycles[0].rounds, "rounds for the first cycle")
"""

from repro.chaos import (
    FaultScenario,
    run_campaign,
    run_chaos,
    standard_scenarios,
)
from repro.core import (
    NO_ACK,
    CycleReport,
    PayloadPifState,
    PayloadSnapPif,
    Phase,
    PifConstants,
    PifCycleMonitor,
    PifState,
    SnapPif,
)
from repro.errors import (
    FairnessError,
    ProtocolError,
    ReproError,
    ScheduleError,
    SimulationLimitError,
    SpecificationViolation,
    TopologyError,
    VerificationError,
)
from repro.graphs import (
    GraphMetrics,
    balanced_tree,
    caterpillar,
    complete,
    compute_metrics,
    grid,
    hypercube,
    line,
    lollipop,
    petersen,
    random_connected,
    random_tree,
    ring,
    star,
    torus,
    wheel,
)
from repro.runtime import (
    AdversarialDaemon,
    CentralDaemon,
    ComposedProtocol,
    Configuration,
    Daemon,
    DistributedRandomDaemon,
    LayeredState,
    LocallyCentralDaemon,
    Network,
    Protocol,
    ReplayDaemon,
    RoundRobinDaemon,
    RunResult,
    Simulator,
    SynchronousDaemon,
    WeaklyFairDaemon,
)

__version__ = "1.0.0"

__all__ = [
    "AdversarialDaemon",
    "CentralDaemon",
    "ComposedProtocol",
    "Configuration",
    "CycleReport",
    "Daemon",
    "DistributedRandomDaemon",
    "FairnessError",
    "FaultScenario",
    "GraphMetrics",
    "LocallyCentralDaemon",
    "NO_ACK",
    "Network",
    "PayloadPifState",
    "PayloadSnapPif",
    "Phase",
    "PifConstants",
    "PifCycleMonitor",
    "PifState",
    "Protocol",
    "ProtocolError",
    "LayeredState",
    "ReplayDaemon",
    "ReproError",
    "RoundRobinDaemon",
    "RunResult",
    "ScheduleError",
    "SimulationLimitError",
    "Simulator",
    "SnapPif",
    "SpecificationViolation",
    "SynchronousDaemon",
    "TopologyError",
    "VerificationError",
    "WeaklyFairDaemon",
    "balanced_tree",
    "caterpillar",
    "complete",
    "compute_metrics",
    "grid",
    "hypercube",
    "line",
    "lollipop",
    "petersen",
    "random_connected",
    "random_tree",
    "ring",
    "run_campaign",
    "run_chaos",
    "standard_scenarios",
    "star",
    "torus",
    "wheel",
]
