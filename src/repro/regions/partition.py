"""Region partitioner: connected components of the dirty footprint.

A daemon selection ``U`` only reads and writes near itself: statements
write the selected nodes, mask repair writes ``U ∪ N(U)``, and every
read stays within two hops of a selected node (DESIGN.md §14).  Two
selected nodes therefore interact only when their *closed
neighborhoods* intersect — i.e. when they are at distance ≤ 2 — so the
selection splits into independent regions: the connected components of
the graph on ``U`` with an edge between ``u`` and ``v`` whenever
``N[u] ∩ N[v] ≠ ∅``.

:func:`partition_selection` computes exactly that with one array-based
union-find pass over the selection's closed neighborhoods: each node of
``U ∪ N(U)`` is *claimed* by the first selected node whose closed
neighborhood reaches it, and a later selected node reaching an
already-claimed node unions the two.  The claimed sets are the
per-region footprints ``N[U_R]`` — disjoint across regions by
construction, which is the disjoint-array-slices fact the parallel
stepper relies on.

Determinism: regions come back ordered by ascending minimum selected
node id, with each region's selected nodes ascending — the canonical
order the stepper merges in.  The partition is a pure function of
``(selection, topology)``; thread counts never influence it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

__all__ = ["Region", "RegionPartition", "partition_selection"]


@dataclass(frozen=True)
class Region:
    """One independent component of a selection's dirty footprint."""

    #: The selected nodes of this region, ascending.
    nodes: tuple[int, ...]
    #: ``|N[nodes]|`` — the size of the region's claimed footprint
    #: (selected nodes plus their neighbors), the array slice the
    #: region's step may write masks into.
    footprint: int

    @property
    def min_node(self) -> int:
        return self.nodes[0]


@dataclass(frozen=True)
class RegionPartition:
    """All regions of one selection, ascending by minimum node id."""

    regions: tuple[Region, ...]

    def __len__(self) -> int:
        return len(self.regions)

    def __iter__(self):
        return iter(self.regions)

    @property
    def sizes(self) -> tuple[int, ...]:
        return tuple(r.footprint for r in self.regions)


def partition_selection(
    selected: Sequence[int], indptr: Sequence[int], indices: Sequence[int]
) -> RegionPartition:
    """Partition ``selected`` into independent regions.

    ``selected`` must be ascending node ids; ``indptr``/``indices`` are
    the CSR neighbor index of the topology (``indices[indptr[p] :
    indptr[p + 1]]`` is ``N(p)``).  Selected nodes ``u`` and ``v`` land
    in the same region iff they are connected through overlapping
    closed neighborhoods (distance ≤ 2 through selected nodes) — the
    exact criterion under which their steps might not commute.
    """
    k = len(selected)
    if k == 0:
        return RegionPartition(())

    parent = list(range(k))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]  # path halving
            i = parent[i]
        return i

    # claim: footprint node -> selection index of its claiming region.
    claim: dict[int, int] = {}
    for i, u in enumerate(selected):
        lo, hi = indptr[u], indptr[u + 1]
        for w in (u, *indices[lo:hi]):
            j = claim.get(w)
            if j is None:
                claim[w] = i
            else:
                ri, rj = find(i), find(j)
                if ri != rj:
                    # Root at the smaller selection index, so a
                    # component's root is its minimum selected node.
                    if ri < rj:
                        parent[rj] = ri
                    else:
                        parent[ri] = rj

    members: dict[int, list[int]] = {}
    order: list[int] = []
    for i in range(k):
        root = find(i)
        group = members.get(root)
        if group is None:
            members[root] = [i]
            order.append(root)
        else:
            group.append(i)
    footprint = dict.fromkeys(order, 0)
    for i in claim.values():
        footprint[find(i)] += 1

    regions = tuple(
        Region(
            nodes=tuple(selected[i] for i in members[root]),
            footprint=footprint[root],
        )
        for root in order
    )
    return RegionPartition(regions)
