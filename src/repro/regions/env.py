"""Knob resolution for parallel-region stepping.

Follows the PR 5 discipline: an explicit argument wins, otherwise the
environment variable, otherwise the documented default, and every
invalid value — zero, negatives, non-integers (including bools),
garbage environment strings — fails loudly with the offending value in
the error.  The integer knob delegates to
:func:`repro.parallel.executor.resolve_worker_count`, the same
precedence/validation helper ``resolve_jobs`` uses, so the two knobs
cannot drift apart in behavior or error wording.
"""

from __future__ import annotations

import os

from repro.parallel.executor import resolve_worker_count

__all__ = [
    "MAX_DEFAULT_REGION_THREADS",
    "resolve_region_parallel",
    "resolve_region_threads",
]

#: Cap on the *default* thread count (explicit values are uncapped).
#: Region workers share one machine's memory bandwidth; past a handful
#: of threads the merge phase dominates, so the default stays modest.
MAX_DEFAULT_REGION_THREADS = 8


def resolve_region_parallel(enabled: bool | None = None) -> bool:
    """Resolve the region-parallel switch (``REPRO_REGION_PARALLEL``).

    An explicit argument wins; otherwise any environment value other
    than empty/``0`` enables it (the same convention as
    ``REPRO_ENGINE_VALIDATE``).  Off by default.
    """
    if enabled is not None:
        return bool(enabled)
    return os.environ.get("REPRO_REGION_PARALLEL", "") not in ("", "0")


def resolve_region_threads(threads: int | None = None) -> int:
    """Resolve the region thread-count knob (``REPRO_REGION_THREADS``).

    An explicit ``threads`` wins; otherwise the environment variable;
    otherwise the host's CPU count capped at
    :data:`MAX_DEFAULT_REGION_THREADS`.  Invalid values raise
    :class:`~repro.parallel.executor.ParallelError` naming the value
    and its source.  The count is a pure throughput knob: traces are
    bit-identical across any thread count (DESIGN.md §14).
    """
    value = resolve_worker_count(
        threads, env_var="REPRO_REGION_THREADS", name="region threads"
    )
    if value is None:
        return max(1, min(MAX_DEFAULT_REGION_THREADS, os.cpu_count() or 1))
    return value
