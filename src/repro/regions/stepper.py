"""Parallel columnar stepping over disjoint dirty regions.

:class:`RegionStepper` replaces one
:meth:`~repro.columnar.compiler.CompiledSpecKernel.execute_selection`
call with: partition the selection into independent regions
(:func:`~repro.regions.partition.partition_selection`), run each
region's execute + mask repair concurrently on a shared
``ThreadPoolExecutor``, then merge the per-region results on the main
thread in ascending-region-min-node-id order.

Why this is sound (the full argument is DESIGN.md §14): a region's
statement phase reads ≤ 1 hop from its selected nodes, its mask repair
reads ≤ 2 hops, and it writes columns only at its selected nodes —
while any other region's writes are ≥ 3 hops away, so no worker ever
reads another worker's writes and the per-region results equal the
serial kernel's restricted to that region.  Threads suffice because the
numpy kernels release the GIL for the heavy gather/reduce work.

Why it is deterministic: the partition is a pure function of the
selection and topology; workers return pure results (dirty set,
affected nodes, mask values) without touching shared kernel state; and
the main thread merges and records telemetry in region order.  Thread
count is therefore a pure throughput knob — traces and deterministic
telemetry are bit-identical across ``REPRO_REGION_THREADS`` ∈ {1, 2,
4, …} and against the serial columnar path.

Pool lifecycle: one module-level pool per thread count, shared by every
stepper (simulators are created by the thousands in test sweeps;
per-instance pools would leak threads).  ``os.register_at_fork`` clears
the cache in forked children — a forked campaign worker would otherwise
inherit a pool object whose threads do not exist in the child.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Mapping

from repro import telemetry as _telemetry
from repro.regions.partition import partition_selection
from repro.runtime.protocol import Action

__all__ = ["RegionStepper"]

_POOLS: dict[int, ThreadPoolExecutor] = {}
_POOLS_LOCK = threading.Lock()


def _pool(threads: int) -> ThreadPoolExecutor:
    with _POOLS_LOCK:
        pool = _POOLS.get(threads)
        if pool is None:
            pool = ThreadPoolExecutor(
                max_workers=threads, thread_name_prefix="repro-region"
            )
            _POOLS[threads] = pool
        return pool


def _clear_pools() -> None:
    # After fork the parent's pool threads do not exist in the child;
    # drop the objects so the child lazily builds fresh pools.
    _POOLS.clear()


if hasattr(os, "register_at_fork"):  # pragma: no branch
    os.register_at_fork(after_in_child=_clear_pools)


class RegionStepper:
    """Partition–execute–merge driver over one compiled kernel.

    Only built for :class:`~repro.columnar.compiler.CompiledSpecKernel`
    instances with compiled statements (``object_statements`` specs and
    the object bridge keep the serial path — their statements are not
    confined to array slices).
    """

    def __init__(self, kernel, threads: int) -> None:
        self.kernel = kernel
        self.threads = max(1, int(threads))
        if kernel.backend == "numpy":
            # Pre-warm the CSR ndarray cache: its lazy build is the one
            # shared mutation workers would otherwise race on.
            kernel.csr.as_numpy()
        if _telemetry.enabled:
            _telemetry.registry.set(
                "worker.region_pool.threads", self.threads
            )

    # ------------------------------------------------------------------
    def _execute_region(self, items) -> tuple[set[int], list[int], list[int]]:
        """Execute one region; pure apart from this region's own rows.

        Returns ``(dirty, affected, mask_values)``.  Reads stay within
        two hops of the region's selected nodes and writes within the
        region itself, so concurrent invocations on distinct regions
        never observe each other (DESIGN.md §14).
        """
        kernel = self.kernel
        pending = kernel.pending_updates(items)
        if not pending:
            return (set(), [], [])
        write_row = kernel.block.write_row
        dirty = set()
        for p, row in pending:
            write_row(p, row)
            dirty.add(p)
        affected = kernel.affected_of(dirty)
        return (dirty, affected, kernel.mask_values(affected))

    def execute_selection(self, selection: Mapping[int, Action]) -> set[int]:
        """One computation step, region-partitioned (kernel interface)."""
        kernel = self.kernel
        csr = kernel.csr
        part = partition_selection(
            sorted(selection), csr.indptr, csr.indices
        )
        regions = part.regions
        tele = _telemetry.enabled
        if tele:
            reg = _telemetry.registry
            reg.inc("regions.steps")
            reg.observe("regions.per_step", len(regions))
            for region in regions:  # region order: deterministic
                reg.observe("regions.size", region.footprint)
        jobs = [
            [(p, selection[p]) for p in region.nodes] for region in regions
        ]
        if self.threads == 1 or len(jobs) == 1:
            results = [self._execute_region(items) for items in jobs]
            if tele:
                _telemetry.registry.inc(
                    "worker.region_pool.inline", len(jobs)
                )
        else:
            results = list(_pool(self.threads).map(self._execute_region, jobs))
            if tele:
                _telemetry.registry.inc(
                    "worker.region_pool.dispatched", len(jobs)
                )
        # Merge in ascending-region-min-node-id order (the order the
        # partitioner emits).  Footprints are disjoint, so the merge
        # order cannot change the result — fixing it anyway keeps the
        # contract checkable and the telemetry deterministic.
        dirty_all: set[int] = set()
        affected_total = 0
        for dirty, affected, masks in results:
            if not dirty:
                continue
            kernel.apply_masks(affected, masks)
            dirty_all |= dirty
            affected_total += len(affected)
        if tele and dirty_all:
            # Disjoint per-region affected sets sum to exactly the
            # serial path's |dirty ∪ N(dirty)| — the histogram matches
            # the serial engine's bit for bit.
            _telemetry.registry.observe(
                "columnar.mask_eval_nodes", affected_total
            )
        return dirty_all
