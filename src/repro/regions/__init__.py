"""Region-partitioned parallel stepping for the columnar engine.

Public surface:

- :func:`partition_selection` / :class:`Region` /
  :class:`RegionPartition` — connected components of a selection's
  dirty footprint (the independence structure).
- :class:`RegionStepper` — partition–execute–merge driver running
  regions on a deterministic thread pool.
- :func:`resolve_region_parallel` / :func:`resolve_region_threads` —
  knob resolution (``REPRO_REGION_PARALLEL`` /
  ``REPRO_REGION_THREADS``).

See DESIGN.md §14 for the soundness argument.
"""

from repro.regions.env import (
    MAX_DEFAULT_REGION_THREADS,
    resolve_region_parallel,
    resolve_region_threads,
)
from repro.regions.partition import (
    Region,
    RegionPartition,
    partition_selection,
)
from repro.regions.stepper import RegionStepper

__all__ = [
    "MAX_DEFAULT_REGION_THREADS",
    "Region",
    "RegionPartition",
    "RegionStepper",
    "partition_selection",
    "resolve_region_parallel",
    "resolve_region_threads",
]
