"""Lifecycle events and the predicate-filtered event bus.

Every request moves through a fixed lifecycle, and each transition is
published as a :class:`WaveEvent`:

``accepted``
    ``submit`` validated and enqueued the request.
``initiated``
    A scheduler started the PIF wave that will serve it.
``feedback``
    The wave's C-wave returned to the root — the aggregated feedback
    (the request's result value) is attached.
``completed``
    The result future resolved; the event carries the final payload.
``failed``
    The request was rejected after acceptance (execution error or an
    abandoning shutdown); the event carries the error text.

The :class:`EventBus` fans events out to subscriptions.  A subscription
is an asyncio-friendly stream (bounded internal list + wake event — no
queues shared across threads; the scheduler publishes from the event
loop thread only) with an optional *predicate*: a plain
``WaveEvent -> bool`` callable.  The combinators
:func:`for_request` / :func:`for_topology` / :func:`for_kinds` /
:func:`all_of` / :func:`any_of` / :func:`not_` compose the common
filters without clients writing lambdas.

Event determinism: the fields of every event are composition-independent
(request id, kind, topology, result payload) — batch sizes, wave
indices and timings are deliberately excluded, because those depend on
executor timing.  That is what lets the determinism tests assert
bit-identical event streams across worker counts.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import AsyncIterator, Callable, Iterable

__all__ = [
    "EVENT_PHASES",
    "WaveEvent",
    "Subscription",
    "EventBus",
    "for_request",
    "for_topology",
    "for_kinds",
    "for_phases",
    "all_of",
    "any_of",
    "not_",
]

#: Lifecycle phases in order of occurrence.
EVENT_PHASES: tuple[str, ...] = (
    "accepted",
    "initiated",
    "feedback",
    "completed",
    "failed",
)

Predicate = Callable[["WaveEvent"], bool]


@dataclass(frozen=True, slots=True)
class WaveEvent:
    """One lifecycle transition of one wave request.

    ``seq`` is the per-request event ordinal (0-based), so a client
    replaying a stream can verify it saw every transition.  ``payload``
    is phase-specific plain data: the result value on ``feedback`` /
    ``completed``, the error text on ``failed``, ``None`` otherwise.
    """

    phase: str
    request_id: int
    kind: str
    topology: str
    seq: int
    payload: object = None

    def as_dict(self) -> dict[str, object]:
        """JSON-able form, used by the CLI stream and the tests."""
        return {
            "phase": self.phase,
            "request_id": self.request_id,
            "kind": self.kind,
            "topology": self.topology,
            "seq": self.seq,
            "payload": self.payload,
        }


# ----------------------------------------------------------------------
# Predicate combinators
# ----------------------------------------------------------------------
def for_request(request_id: int) -> Predicate:
    """Match events belonging to one request."""
    return lambda e: e.request_id == request_id


def for_topology(name: str) -> Predicate:
    """Match events belonging to one named topology."""
    return lambda e: e.topology == name


def for_kinds(*kinds: str) -> Predicate:
    """Match events whose request kind is one of ``kinds``."""
    wanted = frozenset(kinds)
    return lambda e: e.kind in wanted


def for_phases(*phases: str) -> Predicate:
    """Match events in one of the given lifecycle phases."""
    wanted = frozenset(phases)
    return lambda e: e.phase in wanted


def all_of(*predicates: Predicate) -> Predicate:
    """Match events satisfying every predicate (empty ⇒ match all)."""
    return lambda e: all(p(e) for p in predicates)


def any_of(*predicates: Predicate) -> Predicate:
    """Match events satisfying at least one predicate."""
    return lambda e: any(p(e) for p in predicates)


def not_(predicate: Predicate) -> Predicate:
    """Invert a predicate."""
    return lambda e: not predicate(e)


# ----------------------------------------------------------------------
# Bus
# ----------------------------------------------------------------------
@dataclass
class Subscription:
    """A filtered, streamable view of the bus.

    Use as an async iterator (``async for event in sub``) or poll
    :meth:`drain`.  The stream ends after :meth:`close` — either the
    client's own or the bus-wide close at service shutdown — once the
    already-delivered backlog is exhausted.
    """

    predicate: Predicate
    _events: list[WaveEvent] = field(default_factory=list)
    _cursor: int = 0
    _wake: asyncio.Event = field(default_factory=asyncio.Event)
    _closed: bool = False

    def deliver(self, event: WaveEvent) -> None:
        if self._closed or not self.predicate(event):
            return
        self._events.append(event)
        self._wake.set()

    def drain(self) -> list[WaveEvent]:
        """Return (and consume) all events delivered since the last drain."""
        fresh = self._events[self._cursor :]
        self._cursor = len(self._events)
        return fresh

    def close(self) -> None:
        """End the stream; buffered events remain drainable."""
        self._closed = True
        self._wake.set()

    def __aiter__(self) -> AsyncIterator[WaveEvent]:
        return self._stream()

    async def _stream(self) -> AsyncIterator[WaveEvent]:
        while True:
            while self._cursor < len(self._events):
                event = self._events[self._cursor]
                self._cursor += 1
                yield event
            if self._closed:
                return
            # Single-threaded event loop: clearing then re-checking the
            # backlog before awaiting cannot lose a wakeup.
            self._wake.clear()
            if self._cursor < len(self._events) or self._closed:
                continue
            await self._wake.wait()


class EventBus:
    """Fan lifecycle events out to predicate-filtered subscriptions."""

    def __init__(self) -> None:
        self._subscriptions: list[Subscription] = []
        self.published = 0

    def subscribe(self, predicate: Predicate | None = None) -> Subscription:
        """Open a subscription; ``None`` predicate matches every event."""
        sub = Subscription(predicate=predicate or (lambda _e: True))
        self._subscriptions.append(sub)
        return sub

    def unsubscribe(self, subscription: Subscription) -> None:
        subscription.close()
        try:
            self._subscriptions.remove(subscription)
        except ValueError:
            pass

    def publish(self, event: WaveEvent) -> None:
        self.published += 1
        for sub in self._subscriptions:
            sub.deliver(event)

    def publish_all(self, events: Iterable[WaveEvent]) -> None:
        for event in events:
            self.publish(event)

    def close(self) -> None:
        """End every stream (service shutdown)."""
        for sub in self._subscriptions:
            sub.close()
