"""Deterministic client workloads: the service's submission scripts.

The determinism contract is stated over *submission scripts* — a fixed
sequence of ``(kind, args)`` pairs submitted in a fixed order.
:func:`make_workload` builds such a script from a seed (its own
``random.Random``, never the global RNG), and :func:`run_workload`
plays one against a running service in burst mode: every request is
submitted synchronously before the first await, then all results are
gathered.  The same script + the same service seed must produce the
same :class:`WorkloadOutcome` bit-for-bit — the determinism tests and
the ``repro serve --demo`` CLI both go through these helpers, so they
exercise the exact code path the contract covers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.service.service import WaveService

__all__ = ["make_workload", "run_workload", "WorkloadOutcome"]

#: kind -> weight for the default request mix.  ``reset`` is rare: it
#: is the one kind that mutates application state (and never coalesces).
DEFAULT_MIX: dict[str, int] = {
    "pif": 4,
    "snapshot": 3,
    "infimum": 2,
    "census": 2,
    "reset": 1,
}


def make_workload(
    count: int,
    *,
    seed: int = 0,
    mix: dict[str, int] | None = None,
) -> list[tuple[str, dict[str, object]]]:
    """Build a deterministic submission script of ``count`` requests.

    Kinds are drawn from the weighted ``mix`` (default
    :data:`DEFAULT_MIX`); kind-specific args are drawn from the same
    private RNG, so the whole script is a pure function of
    ``(count, seed, mix)``.
    """
    rng = random.Random(seed)
    weights = DEFAULT_MIX if mix is None else mix
    kinds = list(weights)
    script: list[tuple[str, dict[str, object]]] = []
    for i in range(count):
        kind = rng.choices(kinds, weights=[weights[k] for k in kinds])[0]
        if kind == "pif":
            args: dict[str, object] = {"payload": f"msg-{rng.randrange(4)}"}
        elif kind == "infimum":
            args = {
                "op": rng.choice(["min", "max", "sum"]),
                "offset": rng.randrange(3),
            }
        else:
            args = {}
        script.append((kind, args))
    return script


@dataclass(frozen=True, slots=True)
class WorkloadOutcome:
    """Everything a determinism assertion needs, as plain data.

    ``results`` is the request → result mapping in submission order;
    ``event_streams`` is each request's full lifecycle event sequence
    (``as_dict`` form).  Both are composition-independent, so two runs
    with the same seed and script compare equal with ``==``.
    """

    results: list[dict[str, object]]
    event_streams: list[list[dict[str, object]]]
    waves_run: int
    requests_served: int


async def run_workload(
    service: WaveService,
    topology: str,
    script: list[tuple[str, dict[str, object]]],
) -> WorkloadOutcome:
    """Submit a script in one burst and gather every result.

    Submission is synchronous (no await between requests), so the
    service observes the script's order exactly; results are awaited in
    submission order afterwards.
    """
    handles = [service.submit(kind, topology, args) for kind, args in script]
    results = [await handle.result() for handle in handles]
    scheduler = service._schedulers[topology]
    return WorkloadOutcome(
        results=[result.as_dict() for result in results],
        event_streams=[
            [event.as_dict() for event in handle.events_so_far()]
            for handle in handles
        ],
        waves_run=scheduler.waves_run,
        requests_served=scheduler.requests_served,
    )
