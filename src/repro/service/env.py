"""Wave-service knobs: explicit argument > environment variable > default.

Three ``REPRO_SERVICE_*`` knobs tune the service without code changes:

``REPRO_SERVICE_BATCH_WINDOW``
    How many queued requests a scheduler may sweep into one coalescing
    pass (default 32).  Larger windows coalesce more aggressively.
``REPRO_SERVICE_MAX_IN_FLIGHT``
    How many wave executions may run concurrently across topologies —
    the executor-side concurrency bound (default 4).
``REPRO_SERVICE_QUEUE_BOUND``
    How many requests a topology's queue may hold before ``submit``
    rejects with :class:`~repro.errors.ServiceOverloadedError`
    (default 1024).

All three delegate to
:func:`repro.parallel.executor.resolve_worker_count`, so rejections use
the *same* named-value validation errors as ``resolve_jobs``: zero,
negatives, non-integers (including bools) and garbage environment
strings raise :class:`~repro.errors.ParallelError` naming the offending
value and where it came from.
"""

from __future__ import annotations

from repro.parallel.executor import resolve_worker_count

__all__ = [
    "BATCH_WINDOW_ENV",
    "MAX_IN_FLIGHT_ENV",
    "QUEUE_BOUND_ENV",
    "DEFAULT_BATCH_WINDOW",
    "DEFAULT_MAX_IN_FLIGHT",
    "DEFAULT_QUEUE_BOUND",
    "resolve_batch_window",
    "resolve_max_in_flight",
    "resolve_queue_bound",
]

BATCH_WINDOW_ENV = "REPRO_SERVICE_BATCH_WINDOW"
MAX_IN_FLIGHT_ENV = "REPRO_SERVICE_MAX_IN_FLIGHT"
QUEUE_BOUND_ENV = "REPRO_SERVICE_QUEUE_BOUND"

DEFAULT_BATCH_WINDOW = 32
DEFAULT_MAX_IN_FLIGHT = 4
DEFAULT_QUEUE_BOUND = 1024


def resolve_batch_window(value: int | None = None) -> int:
    """Resolve the coalescing batch window (>= 1)."""
    resolved = resolve_worker_count(
        value, env_var=BATCH_WINDOW_ENV, name="batch_window"
    )
    return DEFAULT_BATCH_WINDOW if resolved is None else resolved


def resolve_max_in_flight(value: int | None = None) -> int:
    """Resolve the concurrent wave-execution bound (>= 1)."""
    resolved = resolve_worker_count(
        value, env_var=MAX_IN_FLIGHT_ENV, name="max_in_flight"
    )
    return DEFAULT_MAX_IN_FLIGHT if resolved is None else resolved


def resolve_queue_bound(value: int | None = None) -> int:
    """Resolve the per-topology pending-queue bound (>= 1)."""
    resolved = resolve_worker_count(
        value, env_var=QUEUE_BOUND_ENV, name="queue_bound"
    )
    return DEFAULT_QUEUE_BOUND if resolved is None else resolved
