"""The asyncio wave service: submit typed wave requests, stream events.

:class:`WaveService` turns the :mod:`repro.applications` wave
primitives into a served workload.  Clients register named topologies,
then submit requests::

    async with WaveService(seed=0) as service:
        service.add_topology("ring", by_name("ring", 64))
        handle = service.submit("snapshot", "ring")
        result = await handle.result()

``submit`` is deliberately **synchronous**: validation, the queue-bound
check and the ``accepted`` event all happen before it returns, so the
submission order a client script produces is exactly the order the
service serves (per topology).  That, plus composition-independent
per-request results (DESIGN.md §15), is the determinism contract:
under a fixed seed and submission order, the request → result mapping
and every per-topology event stream are bit-identical across runs and
across worker counts.

Backpressure and shutdown are first-class: a full per-topology queue
rejects with :class:`~repro.errors.ServiceOverloadedError` (nothing
enqueued), and :meth:`shutdown` either drains — every accepted request
is served — or abandons the queue, rejecting pending requests with
:class:`~repro.errors.ServiceClosedError`.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Mapping

from repro import telemetry as _telemetry
from repro.applications.waves import WaveEngine, validate_wave_args
from repro.errors import (
    ServiceClosedError,
    ServiceOverloadedError,
    WaveRequestError,
)
from repro.parallel.executor import resolve_jobs
from repro.runtime.network import Network
from repro.service.env import (
    resolve_batch_window,
    resolve_max_in_flight,
    resolve_queue_bound,
)
from repro.service.events import EventBus, Predicate, Subscription, WaveEvent
from repro.service.requests import RequestHandle, WaveRequest
from repro.service.scheduler import TopologyScheduler

__all__ = ["WaveService"]


class WaveService:
    """Serve wave requests against named topologies.

    Parameters
    ----------
    seed:
        Base RNG seed for every topology's engine (the fixed seed of
        the determinism contract).
    engine:
        Guard-evaluation engine for the simulators (``None`` resolves
        ``REPRO_ENGINE``); pass ``"columnar"`` for large topologies.
    batch_window, max_in_flight, queue_bound:
        Service knobs; ``None`` resolves the corresponding
        ``REPRO_SERVICE_*`` environment variable, then the documented
        default (:mod:`repro.service.env`).
    jobs:
        Worker-thread count for wave execution; ``None`` resolves
        ``REPRO_JOBS`` (the shared :func:`~repro.parallel.executor.resolve_jobs`
        discipline), then ``max_in_flight``.  Within one topology waves
        are sequential, so workers only add cross-topology parallelism.
    """

    def __init__(
        self,
        *,
        seed: int = 0,
        engine: str | None = None,
        batch_window: int | None = None,
        max_in_flight: int | None = None,
        queue_bound: int | None = None,
        jobs: int | None = None,
    ) -> None:
        self.seed = seed
        self.engine = engine
        self.batch_window = resolve_batch_window(batch_window)
        self.max_in_flight = resolve_max_in_flight(max_in_flight)
        self.queue_bound = resolve_queue_bound(queue_bound)
        self.jobs = resolve_jobs(jobs) or self.max_in_flight
        self.bus = EventBus()
        self._schedulers: dict[str, TopologyScheduler] = {}
        self._executor: ThreadPoolExecutor | None = None
        self._semaphore: asyncio.Semaphore | None = None
        self._started = False
        self._closed = False
        self._next_request_id = 0
        self._started_at = 0.0
        #: Deterministic counters mirrored into telemetry.
        self.accepted = 0
        self.rejected = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start serving (requires a running event loop)."""
        if self._started:
            return
        asyncio.get_running_loop()  # fail fast outside a loop
        self._executor = ThreadPoolExecutor(
            max_workers=self.jobs, thread_name_prefix="wave-service"
        )
        self._semaphore = asyncio.Semaphore(self.max_in_flight)
        self._started = True
        self._started_at = time.perf_counter()
        for scheduler in self._schedulers.values():
            scheduler.start(self._executor, self._semaphore)

    async def shutdown(self, *, drain: bool = True) -> None:
        """Stop serving.

        ``drain=True`` (the default) serves every already-accepted
        request before returning; ``drain=False`` rejects queued
        requests with :class:`~repro.errors.ServiceClosedError` (the
        wave in flight still completes).  Either way ``submit`` raises
        ``ServiceClosedError`` from the moment shutdown begins, and all
        event streams end once the backlog is delivered.
        """
        if self._closed:
            return
        self._closed = True
        if self._started:
            await asyncio.gather(
                *(s.close(drain=drain) for s in self._schedulers.values())
            )
            assert self._executor is not None
            self._executor.shutdown(wait=True)
        self.bus.close()

    async def __aenter__(self) -> "WaveService":
        self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.shutdown(drain=not any(exc))

    # ------------------------------------------------------------------
    # Topologies
    # ------------------------------------------------------------------
    def add_topology(
        self,
        name: str,
        network: Network,
        *,
        root: int = 0,
        seed: int | None = None,
    ) -> None:
        """Register a named topology (before or after :meth:`start`)."""
        if self._closed:
            raise ServiceClosedError(
                f"cannot add topology {name!r}: service is shut down"
            )
        if name in self._schedulers:
            raise WaveRequestError(f"topology {name!r} is already registered")
        engine = WaveEngine(
            network,
            root=root,
            seed=self.seed if seed is None else seed,
            engine=self.engine,
        )
        scheduler = TopologyScheduler(
            name,
            engine,
            batch_window=self.batch_window,
            queue_bound=self.queue_bound,
            publish=self.bus.publish,
        )
        self._schedulers[name] = scheduler
        if self._started:
            assert self._executor is not None and self._semaphore is not None
            scheduler.start(self._executor, self._semaphore)

    @property
    def topologies(self) -> list[str]:
        return sorted(self._schedulers)

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self,
        kind: str,
        topology: str,
        args: Mapping[str, object] | None = None,
    ) -> RequestHandle:
        """Validate, accept and enqueue one wave request (synchronous).

        Raises :class:`~repro.errors.WaveRequestError` on a malformed
        request or unknown topology,
        :class:`~repro.errors.ServiceOverloadedError` when the
        topology's queue is full, and
        :class:`~repro.errors.ServiceClosedError` after shutdown began
        (or before :meth:`start`).  Nothing is enqueued on any raise.
        """
        if self._closed:
            raise ServiceClosedError("service is shut down")
        if not self._started:
            raise ServiceClosedError("service is not started")
        scheduler = self._schedulers.get(topology)
        if scheduler is None:
            raise WaveRequestError(
                f"unknown topology {topology!r}; "
                f"registered: {self.topologies}"
            )
        normalized = validate_wave_args(kind, args)
        if scheduler.queue_depth >= self.queue_bound:
            self.rejected += 1
            if _telemetry.enabled:
                _telemetry.registry.inc("service.rejected")
            raise ServiceOverloadedError(
                f"topology {topology!r} queue is full "
                f"({self.queue_bound} pending requests); retry later"
            )
        request = WaveRequest(
            request_id=self._next_request_id,
            kind=kind,
            topology=topology,
            args=normalized,
            coalescable=kind != "reset",
        )
        self._next_request_id += 1
        loop = asyncio.get_running_loop()
        handle = RequestHandle(
            request=request,
            _future=loop.create_future(),
            _submitted_at=time.perf_counter(),
        )
        self.accepted += 1
        if _telemetry.enabled:
            reg = _telemetry.registry
            reg.inc("service.requests")
            reg.inc(f"service.requests.{kind}")
        event = WaveEvent(
            phase="accepted",
            request_id=request.request_id,
            kind=kind,
            topology=topology,
            seq=0,
            payload=None,
        )
        handle._record(event)
        self.bus.publish(event)
        scheduler.enqueue(request, handle)
        return handle

    def subscribe(self, predicate: Predicate | None = None) -> Subscription:
        """Open a predicate-filtered event stream over the whole service."""
        return self.bus.subscribe(predicate)

    # ------------------------------------------------------------------
    # Stats endpoint
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, object]:
        """JSON-able live counters (the ``repro serve`` stats payload)."""
        per_topology = {
            name: {
                "queue_depth": s.queue_depth,
                "waves_run": s.waves_run,
                "requests_served": s.requests_served,
                "waves_completed": s.engine.waves_completed,
                "nodes": s.engine.network.n,
            }
            for name, s in sorted(self._schedulers.items())
        }
        coalesced = sum(
            s.requests_served - s.waves_run for s in self._schedulers.values()
        )
        return {
            "started": self._started,
            "closed": self._closed,
            "uptime_seconds": (
                time.perf_counter() - self._started_at if self._started else 0.0
            ),
            "accepted": self.accepted,
            "rejected": self.rejected,
            "events_published": self.bus.published,
            "requests_coalesced": coalesced,
            "knobs": {
                "batch_window": self.batch_window,
                "max_in_flight": self.max_in_flight,
                "queue_bound": self.queue_bound,
                "jobs": self.jobs,
            },
            "topologies": per_topology,
        }
