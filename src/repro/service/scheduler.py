"""Per-topology wave scheduler: FIFO queue, adjacent-run coalescing.

One :class:`TopologyScheduler` owns one
:class:`~repro.applications.waves.WaveEngine` and one asyncio task.
The task drains a FIFO queue of accepted requests, and for each sweep
takes the longest *adjacent* run of requests with equal coalesce keys
(same kind, same args — up to the batch window) and serves the whole
run with **one** PIF wave.  Snap-stabilization is what makes this
sound: the wave is individually correct regardless of what earlier
waves left behind, so its result can answer every request in the run
(DESIGN.md §15).

Only adjacent runs coalesce — never requests separated by a different
request — so the served sequence of waves is a contraction of the
submission order, and every request observes exactly the application
state it would have observed under serial FIFO execution.  ``reset``
requests are never coalesced (each must bump the epoch exactly once)
and also *break* runs, so a snapshot submitted after a reset can never
be served by a pre-reset wave.

Wave execution runs in a worker thread (``loop.run_in_executor``) under
a service-wide in-flight semaphore, so the event loop keeps accepting
submissions and streaming events while simulators grind.  Within one
topology waves are strictly sequential — the engine is stateful — so
worker counts only add cross-topology parallelism, which is why
per-topology results and event streams are reproducible across worker
counts (the determinism tests assert exactly this).
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from concurrent.futures import Executor
from typing import Callable

from repro import telemetry as _telemetry
from repro.applications.waves import WaveEngine, WaveServing
from repro.errors import ServiceClosedError, ServiceError
from repro.service.events import WaveEvent
from repro.service.requests import RequestHandle, WaveRequest, WaveResult

__all__ = ["TopologyScheduler"]


class TopologyScheduler:
    """Serve one named topology's request queue with pipelined waves."""

    def __init__(
        self,
        name: str,
        engine: WaveEngine,
        *,
        batch_window: int,
        queue_bound: int,
        publish: Callable[[WaveEvent], None],
    ) -> None:
        self.name = name
        self.engine = engine
        self.batch_window = batch_window
        self.queue_bound = queue_bound
        self._executor: Executor | None = None
        self._in_flight: asyncio.Semaphore | None = None
        self._publish = publish
        self._queue: deque[tuple[WaveRequest, RequestHandle]] = deque()
        self._wake = asyncio.Event()
        self._closing = False
        self._task: asyncio.Task | None = None
        #: Waves actually run / requests served (stats endpoint).
        self.waves_run = 0
        self.requests_served = 0

    # ------------------------------------------------------------------
    # Service-side API (event-loop thread only)
    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    def start(
        self, executor: Executor, in_flight: asyncio.Semaphore
    ) -> None:
        """Bind the shared executor + in-flight bound and launch the task."""
        if self._task is None:
            self._executor = executor
            self._in_flight = in_flight
            self._task = asyncio.get_running_loop().create_task(
                self._run(), name=f"wave-scheduler:{self.name}"
            )

    def enqueue(self, request: WaveRequest, handle: RequestHandle) -> None:
        """Queue an accepted request (the service already checked bounds)."""
        self._queue.append((request, handle))
        self._wake.set()
        if _telemetry.enabled:
            _telemetry.registry.observe(
                "worker.service.queue_depth",
                len(self._queue),
                _telemetry.SIZE_BOUNDS,
            )

    async def close(self, *, drain: bool) -> None:
        """Stop the scheduler task.

        With ``drain=True`` every queued request is still served before
        the task exits; with ``drain=False`` queued requests are
        rejected immediately with
        :class:`~repro.errors.ServiceClosedError` (the wave in flight,
        if any, still completes — simulator work is not interruptible).
        """
        self._closing = True
        if not drain:
            while self._queue:
                request, handle = self._queue.popleft()
                error = ServiceClosedError(
                    f"service shut down before request {request.request_id} "
                    f"({request.kind} on {self.name!r}) was served"
                )
                self._emit(handle, "failed", str(error))
                handle._reject(error)
        self._wake.set()
        if self._task is not None:
            await self._task

    # ------------------------------------------------------------------
    # The scheduler loop
    # ------------------------------------------------------------------
    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            if not self._queue:
                if self._closing:
                    return
                self._wake.clear()
                if self._queue or self._closing:
                    continue
                await self._wake.wait()
                continue
            batch = self._next_batch()
            for request, handle in batch:
                self._emit(handle, "initiated", None)
            if _telemetry.enabled:
                reg = _telemetry.registry
                reg.inc("worker.service.batches")
                reg.observe(
                    "worker.service.batch_size",
                    len(batch),
                    _telemetry.SIZE_BOUNDS,
                )
                if len(batch) > 1:
                    reg.inc("worker.service.coalesced", len(batch) - 1)
            kind = batch[0][0].kind
            args = dict(batch[0][0].args)
            async with self._in_flight:
                started = time.perf_counter()
                span = _telemetry.span("service.wave")
                span.set("topology", self.name).set("kind", kind)
                span.set("batch", len(batch))
                try:
                    with span:
                        serving: WaveServing = await loop.run_in_executor(
                            self._executor, self.engine.run_wave, kind, args
                        )
                except ServiceError as error:
                    self._fail_batch(batch, error)
                    continue
                except Exception as error:  # simulator-level failures
                    self._fail_batch(
                        batch,
                        ServiceError(
                            f"wave execution failed on {self.name!r}: {error}"
                        ),
                    )
                    continue
                finally:
                    if _telemetry.enabled:
                        _telemetry.registry.observe(
                            "service.wave.seconds",
                            time.perf_counter() - started,
                            _telemetry.TIME_BOUNDS,
                        )
            self.waves_run += 1
            for request, handle in batch:
                result = WaveResult(
                    request_id=request.request_id,
                    kind=request.kind,
                    topology=self.name,
                    value=serving.value,
                    rounds=serving.rounds,
                    ok=serving.ok,
                )
                self._emit(handle, "feedback", serving.value)
                self._emit(handle, "completed", result.as_dict())
                handle._resolve(result)
                self.requests_served += 1
                if _telemetry.enabled:
                    reg = _telemetry.registry
                    reg.inc("service.completed")
                    reg.observe(
                        "service.request.seconds",
                        time.perf_counter() - handle._submitted_at,
                        _telemetry.TIME_BOUNDS,
                    )

    def _next_batch(self) -> list[tuple[WaveRequest, RequestHandle]]:
        """Pop the longest adjacent run of coalescable equal-key requests."""
        first = self._queue.popleft()
        batch = [first]
        key = first[0].coalesce_key
        if key is None:
            return batch
        while (
            self._queue
            and len(batch) < self.batch_window
            and self._queue[0][0].coalesce_key == key
        ):
            batch.append(self._queue.popleft())
        return batch

    def _fail_batch(
        self,
        batch: list[tuple[WaveRequest, RequestHandle]],
        error: ServiceError,
    ) -> None:
        for request, handle in batch:
            self._emit(handle, "failed", str(error))
            handle._reject(error)
            if _telemetry.enabled:
                _telemetry.registry.inc("service.failed")

    def _emit(
        self, handle: RequestHandle, phase: str, payload: object
    ) -> None:
        """Record an event on the handle and publish it to the bus."""
        event = WaveEvent(
            phase=phase,
            request_id=handle.request.request_id,
            kind=handle.request.kind,
            topology=self.name,
            seq=len(handle._events),
            payload=payload,
        )
        handle._record(event)
        self._publish(event)
