"""repro.service — PIF-as-a-service: the async wave-service layer.

Clients submit typed wave requests (``pif``, ``snapshot``, ``reset``,
``infimum``, ``census``) against named topologies; per-topology
schedulers coalesce adjacent identical requests into shared PIF waves
(sound because every snap-stabilizing initiation is individually
correct — DESIGN.md §15); an event bus streams lifecycle events
through predicate-filtered subscriptions; wave execution runs in
worker threads so the event loop never blocks.  Deterministic under a
fixed seed and submission order.  See API.md «Wave service».
"""

from repro.service.env import (
    BATCH_WINDOW_ENV,
    DEFAULT_BATCH_WINDOW,
    DEFAULT_MAX_IN_FLIGHT,
    DEFAULT_QUEUE_BOUND,
    MAX_IN_FLIGHT_ENV,
    QUEUE_BOUND_ENV,
    resolve_batch_window,
    resolve_max_in_flight,
    resolve_queue_bound,
)
from repro.service.events import (
    EVENT_PHASES,
    EventBus,
    Subscription,
    WaveEvent,
    all_of,
    any_of,
    for_kinds,
    for_phases,
    for_request,
    for_topology,
    not_,
)
from repro.service.requests import RequestHandle, WaveRequest, WaveResult
from repro.service.scheduler import TopologyScheduler
from repro.service.service import WaveService
from repro.service.workload import WorkloadOutcome, make_workload, run_workload

__all__ = [
    "BATCH_WINDOW_ENV",
    "DEFAULT_BATCH_WINDOW",
    "DEFAULT_MAX_IN_FLIGHT",
    "DEFAULT_QUEUE_BOUND",
    "EVENT_PHASES",
    "EventBus",
    "MAX_IN_FLIGHT_ENV",
    "QUEUE_BOUND_ENV",
    "RequestHandle",
    "Subscription",
    "TopologyScheduler",
    "WaveEvent",
    "WaveRequest",
    "WaveResult",
    "WaveService",
    "WorkloadOutcome",
    "all_of",
    "any_of",
    "for_kinds",
    "for_phases",
    "for_request",
    "for_topology",
    "make_workload",
    "not_",
    "resolve_batch_window",
    "resolve_max_in_flight",
    "resolve_queue_bound",
    "run_workload",
]
