"""Typed wave requests, results, and the per-request client handle.

A client calls ``WaveService.submit(kind, topology, args)`` and gets a
:class:`RequestHandle` back *synchronously* — acceptance (validation,
queue-bound check, ``accepted`` event) happens before submit returns,
so the submission order visible to clients is exactly the order the
service processes.  The handle then offers two asyncio views of the
same request: ``await handle.result()`` for the final
:class:`WaveResult`, and ``async for event in handle.events()`` for the
lifecycle stream.

Handles receive their events directly from the scheduler (not through
the bus), so per-request streaming costs O(1) per event regardless of
how many other requests are in flight.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import AsyncIterator, Mapping

from repro.service.events import WaveEvent

__all__ = ["WaveRequest", "WaveResult", "RequestHandle"]


@dataclass(frozen=True, slots=True)
class WaveRequest:
    """An accepted wave request, as queued by a topology scheduler.

    ``request_id`` is assigned in submission order by the service and
    is the key of the determinism contract: under a fixed seed and
    submission order, the mapping ``request_id -> WaveResult`` and each
    request's event sequence are reproducible bit-for-bit.
    """

    request_id: int
    kind: str
    topology: str
    args: Mapping[str, object]
    coalescable: bool

    @property
    def coalesce_key(self) -> tuple[str, tuple[tuple[str, object], ...]] | None:
        """Requests with equal keys may share one wave; ``None`` never shares."""
        if not self.coalescable:
            return None
        return (self.kind, tuple(sorted(self.args.items())))


@dataclass(frozen=True, slots=True)
class WaveResult:
    """The final, composition-independent outcome of one request.

    ``value`` is the kind-specific plain-data payload from
    :class:`~repro.applications.waves.WaveEngine`; ``rounds`` is the
    serving wave's round count (identical whether or not the request
    shared its wave, by the clean-start determinism argument in
    DESIGN.md §15); ``ok`` is the PIF specification verdict.
    """

    request_id: int
    kind: str
    topology: str
    value: object
    rounds: int
    ok: bool

    def as_dict(self) -> dict[str, object]:
        return {
            "request_id": self.request_id,
            "kind": self.kind,
            "topology": self.topology,
            "value": self.value,
            "rounds": self.rounds,
            "ok": self.ok,
        }


@dataclass
class RequestHandle:
    """The client's view of one submitted request."""

    request: WaveRequest
    _future: asyncio.Future = field(repr=False)
    _events: list[WaveEvent] = field(default_factory=list, repr=False)
    _wake: asyncio.Event = field(default_factory=asyncio.Event, repr=False)
    _done: bool = False
    #: Submission timestamp (perf_counter) for latency telemetry.
    _submitted_at: float = 0.0

    @property
    def request_id(self) -> int:
        return self.request.request_id

    async def result(self) -> WaveResult:
        """Await the final result (raises the typed error on failure)."""
        return await asyncio.shield(self._future)

    def events_so_far(self) -> list[WaveEvent]:
        """The lifecycle events recorded so far (no consumption)."""
        return list(self._events)

    async def events(self) -> AsyncIterator[WaveEvent]:
        """Stream this request's lifecycle events; ends at completed/failed."""
        cursor = 0
        while True:
            while cursor < len(self._events):
                event = self._events[cursor]
                cursor += 1
                yield event
            if self._done and cursor >= len(self._events):
                return
            self._wake.clear()
            if cursor < len(self._events) or self._done:
                continue
            await self._wake.wait()

    # -- scheduler-side API -------------------------------------------
    def _record(self, event: WaveEvent) -> None:
        self._events.append(event)
        if event.phase in ("completed", "failed"):
            self._done = True
        self._wake.set()

    def _resolve(self, result: WaveResult) -> None:
        if not self._future.done():
            self._future.set_result(result)

    def _reject(self, error: BaseException) -> None:
        if not self._future.done():
            self._future.set_exception(error)
