"""repro.telemetry — zero-dependency metrics and span tracing.

The module itself is the switchboard.  All instrumented call sites in
the engine guard on the module-level :data:`enabled` flag::

    from repro import telemetry as _telemetry
    ...
    if _telemetry.enabled:
        _telemetry.registry.inc("sim.steps")

so with telemetry off (the default) the cost per call site is one
module-attribute check — verified by ``benchmarks/bench_telemetry.py``.
Hot loops that fire many times per step should hoist metric objects
(``Counter``/``Histogram``) once and bump ``.value`` directly.

State model
-----------

* :data:`enabled` — bool, flipped by :func:`enable` / :func:`disable`.
* :data:`registry` — the active :class:`MetricsRegistry`.  Never
  rebound while enabled except by :func:`capture`, which swaps in a
  fresh registry around a unit of work (the executor uses this to give
  every parallel task its own snapshot, shipped back across the pickle
  boundary and merged in serial submission order — DESIGN.md §10).
* :data:`sink` — optional :class:`JsonlSink`; only the process that
  opened it writes (fork guard), so worker processes under the
  ``fork`` start method inherit an enabled flag but never corrupt the
  trace file.

``REPRO_TELEMETRY=/path/to/trace.jsonl`` in the environment enables
telemetry via :func:`enable_from_env` — the hand-off used by
``repro bench --telemetry`` whose benchmarks run in a pytest
subprocess.
"""

from __future__ import annotations

import os
import sys
from contextlib import contextmanager

from repro.telemetry.registry import (
    NONDET_PREFIX,
    SIZE_BOUNDS,
    TIME_BOUNDS,
    TIMING_SUFFIX,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
)
from repro.telemetry.spans import (
    NULL_SPAN,
    JsonlSink,
    NullSpan,
    Span,
    read_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NONDET_PREFIX",
    "NULL_SPAN",
    "NullSpan",
    "SIZE_BOUNDS",
    "Span",
    "TIME_BOUNDS",
    "TIMING_SUFFIX",
    "capture",
    "disable",
    "enable",
    "enable_from_env",
    "enabled",
    "read_trace",
    "registry",
    "sink",
    "span",
    "write_snapshot",
]

#: The one flag every instrumented call site checks.
enabled: bool = False

#: The active registry.  Instrumentation must re-read this module
#: attribute (not hold a stale reference) unless inside a region it
#: knows :func:`capture` cannot interleave with.
registry: MetricsRegistry = MetricsRegistry()

#: The active JSONL sink, or None.
sink: JsonlSink | None = None


def enable(trace_path: str | None = None) -> None:
    """Turn telemetry on, optionally opening a JSONL sink at ``trace_path``."""
    global enabled, sink
    if trace_path is not None:
        if sink is not None:
            sink.close()
        sink = JsonlSink(trace_path)
    enabled = True


def disable() -> None:
    """Turn telemetry off, close the sink, and reset the registry."""
    global enabled, sink, _next_span_id
    enabled = False
    if sink is not None:
        sink.close()
        sink = None
    registry.clear()
    _span_stack.clear()
    _next_span_id = 1


def enable_from_env() -> bool:
    """Enable telemetry if ``REPRO_TELEMETRY`` names a trace path.

    Returns True when telemetry was enabled.  An empty value is
    treated as unset.
    """
    path = os.environ.get("REPRO_TELEMETRY", "").strip()
    if not path:
        return False
    enable(path)
    return True


def span(name: str):
    """A context-manager span, or the shared no-op when disabled."""
    if not enabled:
        return NULL_SPAN
    return Span(name, sys.modules[__name__])


#: Innermost-open-span stack of this process: ``(span_id, trace_id)``
#: pairs.  Gives every finished span its parent/trace identifiers so
#: nested spans (e.g. ``columnar.compile`` under a campaign cell) can
#: be reassembled into a tree from the flat JSONL.
_span_stack: list[tuple[str, str]] = []
_next_span_id: int = 1


def _open_span(span: Span) -> None:
    """Called by Span.__enter__: assign span/parent/trace identifiers."""
    global _next_span_id
    span_id = f"s{_next_span_id}"
    _next_span_id += 1
    if _span_stack:
        parent_id, trace_id = _span_stack[-1]
    else:
        parent_id, trace_id = None, span_id
    span.span_id = span_id
    span.parent_id = parent_id
    span.trace_id = trace_id
    _span_stack.append((span_id, trace_id))


def _finish_span(span: Span, seconds: float) -> None:
    """Called by Span.__exit__: record into the registry and the sink."""
    if _span_stack and _span_stack[-1][0] == span.span_id:
        _span_stack.pop()
    else:
        # Unbalanced exit (e.g. a span leaked across disable/enable):
        # drop it and anything opened inside it.
        for i in range(len(_span_stack) - 1, -1, -1):
            if _span_stack[i][0] == span.span_id:
                del _span_stack[i:]
                break
    registry.observe(f"span.{span.name}{TIMING_SUFFIX}", seconds, TIME_BOUNDS)
    if sink is not None:
        record = {
            "type": "span",
            "name": span.name,
            "seconds": seconds,
            "span_id": span.span_id,
            "trace_id": span.trace_id,
        }
        if span.parent_id is not None:
            record["parent_id"] = span.parent_id
        if span.attrs:
            record["attrs"] = span.attrs
        sink.write(record)


@contextmanager
def capture():
    """Swap in a fresh registry for the duration of the block.

    Yields the temporary :class:`MetricsRegistry`; the previous one is
    restored on exit (even on error).  The caller snapshots the yielded
    registry to get the block's metrics in isolation — this is how the
    parallel executor gives each task its own snapshot regardless of
    which worker process (or the inline path) runs it.

    No-op-ish when disabled: still swaps, but nothing records.
    """
    global registry
    previous = registry
    fresh = MetricsRegistry()
    registry = fresh
    try:
        yield fresh
    finally:
        registry = previous


def write_snapshot(
    snapshot: MetricsSnapshot | None = None, *, label: str = "metrics"
) -> None:
    """Append a metrics snapshot record to the sink (if open and owned).

    With no explicit ``snapshot``, snapshots the active registry.
    """
    if sink is None:
        return
    if snapshot is None:
        snapshot = registry.snapshot()
    sink.write(
        {"type": "metrics", "label": label, "metrics": snapshot.metrics}
    )
