"""The metrics registry: counters, gauges and fixed-bucket histograms.

Zero-dependency by design (the pickle boundary and the JSONL sink both
want plain built-in types), and built around two hard requirements:

* **Exact merges.**  Histogram bucket boundaries are fixed per metric at
  registration time, so merging two snapshots of the same metric is
  element-wise integer addition — never re-bucketing, never
  approximation.  Counter merges add; gauge merges keep the *last set*
  value in merge order.  Folding per-shard snapshots in serial shard
  order therefore yields one deterministic aggregate, independent of the
  worker count that produced the shards (the PR 4 determinism guarantee
  extended to telemetry itself — DESIGN.md §10).
* **Cheap hot paths.**  :class:`Counter`, :class:`Gauge` and
  :class:`Histogram` are slotted objects whose state is directly
  addressable (``counter.value += 1`` is the sanctioned hot-path idiom
  — the same cost as bumping a plain attribute), so instrumented inner
  loops pay no dict lookup and no method call when they hold a metric
  object.

Timing metrics — anything observed in wall-clock seconds — are named
with a ``.seconds`` suffix by convention.  They merge like any other
metric, but :meth:`MetricsSnapshot.deterministic` drops them: wall time
is the one quantity that legitimately differs between runs and across
the jobs axis, exactly like ``elapsed_seconds`` in
``merge_model_check_results``.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NONDET_PREFIX",
    "SIZE_BOUNDS",
    "TIME_BOUNDS",
    "TIMING_SUFFIX",
]

#: Metric-name suffix marking wall-clock observations (excluded from the
#: deterministic snapshot view).
TIMING_SUFFIX = ".seconds"

#: Metric-name prefix for worker-process-local observations whose values
#: depend on how the scheduler spread tasks over workers (cache
#: hits/misses, per-worker reuse).  Excluded from the deterministic
#: snapshot view for the same reason as wall time: legitimate variation
#: across the ``jobs`` axis.
NONDET_PREFIX = "worker."

#: Default boundaries for set-size style histograms (enabled-set sizes,
#: dirty-set sizes, selection sizes): powers of two up to 4096.  A value
#: ``v`` lands in the first bucket whose upper bound is ``>= v``; the
#: implicit last bucket is unbounded.
SIZE_BOUNDS: tuple[float, ...] = (
    0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096
)

#: Default boundaries for duration histograms, in seconds (100µs to ~2
#: minutes, roughly geometric).
TIME_BOUNDS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0
)


class Counter:
    """A monotonically increasing integer.

    Hot paths may bump :attr:`value` directly (``c.value += n``); the
    :meth:`inc` method is the readable spelling for warm paths.
    """

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: int = 0) -> None:
        self.name = name
        self.value = value

    def inc(self, n: int = 1) -> None:
        self.value += n

    def to_dict(self) -> dict:
        return {"kind": "counter", "value": self.value}


class Gauge:
    """A last-write-wins scalar (e.g. a capacity, a live set size)."""

    __slots__ = ("name", "value", "updates")

    def __init__(self, name: str, value: float = 0, updates: int = 0) -> None:
        self.name = name
        self.value = value
        #: How many times the gauge was set — merges use it to tell an
        #: untouched gauge (which must not clobber a set one) from a
        #: gauge legitimately set to its default.
        self.updates = updates

    def set(self, value: float) -> None:
        self.value = value
        self.updates += 1

    def to_dict(self) -> dict:
        return {"kind": "gauge", "value": self.value, "updates": self.updates}


class Histogram:
    """A fixed-boundary histogram with exact merge semantics.

    ``bounds`` is an ascending tuple of bucket upper bounds; an
    observation ``v`` increments ``counts[i]`` for the smallest ``i``
    with ``v <= bounds[i]``, or the implicit overflow bucket
    ``counts[len(bounds)]``.  Boundaries are part of the metric's
    identity: merging histograms with different boundaries is an error,
    so merged bucket counts are always exact sums.
    """

    __slots__ = ("name", "bounds", "counts", "count", "total")

    def __init__(self, name: str, bounds: tuple[float, ...]) -> None:
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(
                f"histogram bounds must be strictly ascending, got {bounds}"
            )
        self.name = name
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        # First bucket whose upper bound is >= value; overflow lands at
        # the sentinel index len(bounds).
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        return {
            "kind": "histogram",
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "total": self.total,
        }


@dataclass
class MetricsSnapshot:
    """A frozen, plain-data copy of a registry's metrics.

    ``metrics`` maps metric name to the metric's ``to_dict()`` payload —
    JSON-able and picklable, so snapshots travel across the pickle
    boundary (worker → parent) and into the JSONL sink unchanged.
    """

    metrics: dict[str, dict] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {"metrics": self.metrics}

    @classmethod
    def from_dict(cls, payload: dict) -> "MetricsSnapshot":
        metrics = payload.get("metrics")
        if not isinstance(metrics, dict):
            raise ValueError(f"malformed snapshot payload: {payload!r}")
        return cls(metrics=metrics)

    def deterministic(self) -> "MetricsSnapshot":
        """The snapshot without scheduling-dependent metrics.

        Drops wall-clock metrics (``*.seconds``) and worker-local
        metrics (``worker.*`` — e.g. protocol-cache hit rates, which
        depend on how tasks were spread over worker processes).
        Everything left is a deterministic function of the workload —
        the portion asserted bit-identical across ``jobs`` ∈ {1, 2, 4}
        by ``tests/telemetry/``.
        """
        return MetricsSnapshot(
            metrics={
                name: payload
                for name, payload in self.metrics.items()
                if not name.endswith(TIMING_SUFFIX)
                and not name.startswith(NONDET_PREFIX)
            }
        )

    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """Fold ``other`` into this snapshot (in place) and return it.

        Merge order is semantically significant only for gauges (last
        set in merge order wins); counters and histograms are exact
        sums.  Callers merging shard snapshots must fold them in serial
        shard order — then the aggregate is deterministic.
        """
        for name, payload in other.metrics.items():
            mine = self.metrics.get(name)
            if mine is None:
                self.metrics[name] = _copy_payload(payload)
                continue
            if mine["kind"] != payload["kind"]:
                raise ValueError(
                    f"metric {name!r} merged across kinds: "
                    f"{mine['kind']} vs {payload['kind']}"
                )
            if payload["kind"] == "counter":
                mine["value"] += payload["value"]
            elif payload["kind"] == "gauge":
                if payload.get("updates", 0):
                    mine["value"] = payload["value"]
                    mine["updates"] = (
                        mine.get("updates", 0) + payload["updates"]
                    )
            elif payload["kind"] == "histogram":
                if mine["bounds"] != payload["bounds"]:
                    raise ValueError(
                        f"histogram {name!r} merged across different "
                        f"bucket boundaries"
                    )
                mine["counts"] = [
                    a + b for a, b in zip(mine["counts"], payload["counts"])
                ]
                mine["count"] += payload["count"]
                mine["total"] += payload["total"]
            else:
                raise ValueError(
                    f"metric {name!r} has unknown kind {payload['kind']!r}"
                )
        return self

    @classmethod
    def merge_all(
        cls, snapshots: "list[MetricsSnapshot]"
    ) -> "MetricsSnapshot":
        """Merge snapshots in list order into a fresh aggregate."""
        merged = cls()
        for snapshot in snapshots:
            merged.merge(snapshot)
        return merged


def _copy_payload(payload: dict) -> dict:
    copied = dict(payload)
    for key in ("bounds", "counts"):
        if key in copied:
            copied[key] = list(copied[key])
    return copied


class MetricsRegistry:
    """A name → metric table with get-or-create accessors.

    One registry is "active" at a time (module state in
    :mod:`repro.telemetry`); instrumented code either holds metric
    objects directly (hot paths) or goes through the convenience
    mutators (:meth:`inc` / :meth:`set` / :meth:`observe`).
    """

    __slots__ = ("_metrics",)

    def __init__(self) -> None:
        self._metrics: dict[str, object] = {}

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    # -- get-or-create ---------------------------------------------------
    def counter(self, name: str) -> Counter:
        metric = self._metrics.get(name)
        if metric is None:
            metric = Counter(name)
            self._metrics[name] = metric
        elif not isinstance(metric, Counter):
            raise ValueError(f"metric {name!r} already registered as "
                             f"{type(metric).__name__}")
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._metrics.get(name)
        if metric is None:
            metric = Gauge(name)
            self._metrics[name] = metric
        elif not isinstance(metric, Gauge):
            raise ValueError(f"metric {name!r} already registered as "
                             f"{type(metric).__name__}")
        return metric

    def histogram(
        self, name: str, bounds: tuple[float, ...] = SIZE_BOUNDS
    ) -> Histogram:
        metric = self._metrics.get(name)
        if metric is None:
            metric = Histogram(name, bounds)
            self._metrics[name] = metric
        elif not isinstance(metric, Histogram):
            raise ValueError(f"metric {name!r} already registered as "
                             f"{type(metric).__name__}")
        elif metric.bounds != tuple(bounds):
            raise ValueError(
                f"histogram {name!r} re-registered with different bounds"
            )
        return metric

    # -- convenience mutators --------------------------------------------
    def inc(self, name: str, n: int = 1) -> None:
        self.counter(name).value += n

    def set(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(
        self, name: str, value: float, bounds: tuple[float, ...] = SIZE_BOUNDS
    ) -> None:
        self.histogram(name, bounds).observe(value)

    # -- snapshots -------------------------------------------------------
    def snapshot(self) -> MetricsSnapshot:
        """A plain-data copy of every metric, keyed by sorted name.

        Sorting makes two snapshots of equal registries structurally
        identical regardless of metric creation order — part of the
        bit-identity contract.
        """
        return MetricsSnapshot(
            metrics={
                name: self._metrics[name].to_dict()  # type: ignore[attr-defined]
                for name in sorted(self._metrics)
            }
        )

    def merge_snapshot(self, snapshot: MetricsSnapshot) -> None:
        """Fold a snapshot's metrics into the live registry."""
        for name, payload in snapshot.metrics.items():
            kind = payload.get("kind")
            if kind == "counter":
                self.counter(name).value += payload["value"]
            elif kind == "gauge":
                if payload.get("updates", 0):
                    gauge = self.gauge(name)
                    gauge.value = payload["value"]
                    gauge.updates += payload["updates"]
            elif kind == "histogram":
                hist = self.histogram(name, tuple(payload["bounds"]))
                if list(hist.bounds) != list(payload["bounds"]):
                    raise ValueError(
                        f"histogram {name!r} merged across different "
                        f"bucket boundaries"
                    )
                hist.counts = [
                    a + b for a, b in zip(hist.counts, payload["counts"])
                ]
                hist.count += payload["count"]
                hist.total += payload["total"]
            else:
                raise ValueError(
                    f"metric {name!r} has unknown kind {kind!r}"
                )

    def clear(self) -> None:
        self._metrics.clear()
