"""Span-based structured tracing with a JSONL sink.

A *span* wraps a unit of work (a campaign cell, a sharded sweep, one
parallel task) and records its wall time plus arbitrary attributes.
Spans serve two audiences:

* the **JSONL sink** — each finished span appends one JSON object to
  the trace file (``{"type": "span", "name": ..., "seconds": ...,
  "span_id": ..., "trace_id": ..., "parent_id": ..., "attrs":
  {...}}``), readable later by ``repro stats``;
* the **registry** — each finished span observes its duration into a
  ``span.<name>.seconds`` histogram, so per-shard task times survive
  the pickle boundary inside metric snapshots even when the worker
  process has no sink open.

When telemetry is disabled, :func:`repro.telemetry.span` returns the
:data:`NULL_SPAN` singleton whose every method is a no-op — the call
site pays one module-attribute check and nothing else.

Fork safety: the sink records the PID that opened it.  A forked worker
inheriting the parent's module state will refuse to write (its spans
still land in the worker registry, which ships back through the
executor), so the trace file is only ever written by one process and
stays well-formed.
"""

from __future__ import annotations

import json
import os
import time

__all__ = ["JsonlSink", "NULL_SPAN", "NullSpan", "Span", "read_trace"]


class NullSpan:
    """The disabled-telemetry span: every operation is a no-op."""

    __slots__ = ()

    def set(self, key: str, value) -> "NullSpan":
        return self

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None


NULL_SPAN = NullSpan()


class Span:
    """A live span.  Use as a context manager; attributes via :meth:`set`.

    On entry the span is assigned a process-unique ``span_id``, the
    ``span_id`` of the innermost open span as ``parent_id`` (``None``
    at top level), and the ``trace_id`` of the enclosing trace (a top
    level span starts a new trace named after its own id).  Nesting is
    tracked per process — e.g. a ``columnar.compile`` span opened while
    a campaign-cell span is running records that cell as its parent, so
    trace viewers can reassemble the tree from the flat JSONL.
    """

    __slots__ = (
        "name", "attrs", "span_id", "parent_id", "trace_id",
        "_start", "_telemetry",
    )

    def __init__(self, name: str, telemetry) -> None:
        self.name = name
        self.attrs: dict = {}
        self.span_id: str | None = None
        self.parent_id: str | None = None
        self.trace_id: str | None = None
        self._start = 0.0
        # The repro.telemetry module object — late-bound so a span
        # always finishes against the state that created it.
        self._telemetry = telemetry

    def set(self, key: str, value) -> "Span":
        self.attrs[key] = value
        return self

    def __enter__(self) -> "Span":
        self._telemetry._open_span(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._telemetry._finish_span(
            self, time.perf_counter() - self._start
        )


class JsonlSink:
    """An append-only JSONL trace writer owned by the opening process."""

    __slots__ = ("path", "_fh", "_pid")

    def __init__(self, path: str) -> None:
        self.path = path
        self._fh = open(path, "a", encoding="utf-8")
        self._pid = os.getpid()

    @property
    def owned(self) -> bool:
        """True in the process that opened the sink (fork guard)."""
        return os.getpid() == self._pid

    def write(self, record: dict) -> None:
        if not self.owned or self._fh is None:
            return
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()

    def close(self) -> None:
        if self._fh is not None and self.owned:
            self._fh.close()
        self._fh = None


def read_trace(path: str) -> list[dict]:
    """Parse a JSONL trace file into a list of records.

    Malformed lines raise ``ValueError`` naming the line number — a
    truncated trace is a bug worth surfacing, not skipping.
    """
    records: list[dict] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{lineno}: malformed trace line: {exc}"
                ) from None
            if not isinstance(record, dict):
                raise ValueError(
                    f"{path}:{lineno}: trace record is not an object"
                )
            records.append(record)
    return records
