"""The computation engine: drives protocols under a daemon.

A :class:`Simulator` owns a protocol, a network, a daemon and the current
configuration, and produces computation steps ``γ_i ↦ γ_{i+1}``
following the paper's model: the daemon selects a non-empty subset of the
enabled processors; every selected processor atomically evaluates its
guard and executes the corresponding statement *against* ``γ_i``; all
writes land simultaneously in ``γ_{i+1}``.

The simulator also maintains the round count (see
:mod:`repro.runtime.rounds`), cumulative move counts, an optional trace,
and invokes *monitors* — observers such as the PIF-cycle specification
checker — after every step.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from random import Random
from typing import Callable, Iterable, Mapping, Protocol as TypingProtocol, Sequence

from repro import telemetry as _telemetry
from repro.errors import ScheduleError, SimulationLimitError, VerificationError
from repro.runtime.daemons import Daemon, SynchronousDaemon
from repro.runtime.network import Network
from repro.runtime.protocol import Action, Protocol
from repro.runtime.rounds import RoundCounter
from repro.runtime.state import Configuration, NodeState
from repro.runtime.trace import StepRecord, Trace

__all__ = ["Monitor", "RunResult", "Simulator"]

#: Default safety valve for :meth:`Simulator.run`.
DEFAULT_MAX_STEPS = 1_000_000


class Monitor(TypingProtocol):
    """Observer interface invoked by the simulator.

    Monitors implement executable specifications (e.g. the PIF cycle
    conditions) or invariant assertions; they may raise
    :class:`~repro.errors.SpecificationViolation` to abort a run.
    """

    def on_start(self, configuration: Configuration) -> None:
        """Called once with the initial configuration."""

    def on_step(
        self,
        before: Configuration,
        record: StepRecord,
        after: Configuration,
    ) -> None:
        """Called after every computation step."""


@dataclass
class RunResult:
    """Outcome of a :meth:`Simulator.run` call."""

    final: Configuration
    steps: int
    rounds: int
    moves: int
    #: True if the run stopped because no action was enabled (terminal
    #: configuration — the computation is maximal and finite).
    terminated: bool
    #: True if the run stopped because the ``until`` predicate held.
    satisfied: bool
    trace: Trace | None = None
    action_counts: dict[str, int] = field(default_factory=dict)

    @property
    def stopped_by_limit(self) -> bool:
        """True if the run hit its step/round budget instead of finishing."""
        return not (self.terminated or self.satisfied)


class Simulator:
    """Drive a protocol on a network under a daemon.

    Parameters
    ----------
    protocol, network:
        The distributed program and the topology it runs on.
    daemon:
        Scheduler; defaults to :class:`SynchronousDaemon`.
    configuration:
        Starting configuration; defaults to the protocol's clean initial
        configuration.
    seed:
        Seed for the daemon's RNG — runs are fully reproducible.
    trace_level:
        ``"none"`` (default), ``"selections"`` or ``"configurations"``.
    monitors:
        Observers receiving every step (see :class:`Monitor`).
    engine:
        ``"incremental"`` (default) re-evaluates guards only on the
        1-hop neighborhood of the nodes a step actually rewrote;
        ``"full"`` re-evaluates every guard at every node after every
        step (the pre-optimization behavior, kept for benchmarking and
        cross-validation); ``"columnar"`` stores the configuration as
        flat per-variable arrays and runs compiled mask kernels (see
        :mod:`repro.columnar`), falling back to a per-node object
        bridge for protocols without a compiled kernel.  The
        ``REPRO_ENGINE`` environment variable overrides the default
        when the parameter is not given.

        Under the columnar engine object configurations are
        materialized lazily: :attr:`configuration` always works, but
        :class:`~repro.runtime.trace.StepRecord.after` is ``None``
        unless something needs the object view (monitors attached,
        ``trace_level="configurations"``, or lockstep validation).
    validate_engine:
        When true, every incremental/columnar update is checked in
        lockstep against a from-scratch recompute on the object path —
        for the columnar engine both the enabled map and the successor
        configuration are compared — and a mismatch raises
        :class:`~repro.errors.VerificationError`.  Defaults to the
        ``REPRO_ENGINE_VALIDATE`` environment variable (any value other
        than empty/``0`` enables it).
    region_parallel, region_threads:
        Columnar engine only (ignored otherwise): when on, each step is
        partitioned into independent dirty regions executed on a thread
        pool (see :mod:`repro.regions`); traces stay bit-identical to
        serial stepping for any thread count.  Default to the
        ``REPRO_REGION_PARALLEL`` / ``REPRO_REGION_THREADS``
        environment variables.
    """

    def __init__(
        self,
        protocol: Protocol,
        network: Network,
        daemon: Daemon | None = None,
        *,
        configuration: Configuration | None = None,
        seed: int = 0,
        trace_level: str = "none",
        monitors: Iterable[Monitor] = (),
        engine: str | None = None,
        validate_engine: bool | None = None,
        region_parallel: bool | None = None,
        region_threads: int | None = None,
    ) -> None:
        if engine is None:
            # An empty REPRO_ENGINE means "unset", like REPRO_ENGINE_VALIDATE.
            engine = os.environ.get("REPRO_ENGINE") or "incremental"
        if engine not in ("incremental", "full", "columnar"):
            raise ScheduleError(
                f"unknown engine {engine!r}; expected 'incremental', "
                f"'full' or 'columnar'"
            )
        if validate_engine is None:
            validate_engine = os.environ.get(
                "REPRO_ENGINE_VALIDATE", ""
            ) not in ("", "0")
        self.engine = engine
        self.validate_engine = validate_engine
        self.protocol = protocol
        self.network = network
        self.daemon = daemon if daemon is not None else SynchronousDaemon()
        self.rng = Random(seed)
        config = (
            configuration
            if configuration is not None
            else protocol.initial_configuration(network)
        )
        self._steps = 0
        self._moves = 0
        self._action_counts: dict[str, int] = {}
        self._monitors = list(monitors)
        #: Crashed processors: excluded from daemon selection and round
        #: accounting, but their memory stays readable by neighbors (the
        #: locally-shared-memory analogue of a fail-stop crash).
        self._crashed: set[int] = set()
        #: Guard-suppressed processors: the shared-memory analogue of
        #: message loss — the processor's guards "fire into the void"
        #: (it cannot act on what it reads) while its memory stays
        #: readable.  Mechanically identical to a crash for selection
        #: and round accounting, but semantically a link fault, so it
        #: is tracked and reported separately.
        self._suppressed: set[int] = set()
        self.trace = Trace(config, level=trace_level)

        self.daemon.reset()
        self._eval_cache: dict = {}
        if engine == "columnar":
            from repro.columnar import ColumnarRuntime

            self._columnar: ColumnarRuntime | None = ColumnarRuntime(
                protocol,
                network,
                config,
                region_parallel=region_parallel,
                region_threads=region_threads,
            )
            # The column block owns the state; ``self.configuration``
            # materializes object views on demand.
            self._configuration: Configuration | None = None
            self._enabled = self._columnar.enabled_map()
        else:
            self._columnar = None
            self._configuration = config
            self._enabled = protocol.enabled_map(
                config, network, cache=self._eval_cache
            )
        self._rounds = RoundCounter(self._enabled)
        for monitor in self._monitors:
            monitor.on_start(config)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def configuration(self) -> Configuration:
        """The current configuration ``γ``.

        Under the columnar engine this materializes an object view of
        the column block — cached until the next write, so repeated
        reads (and a fully no-op step) return the same object.
        """
        if self._columnar is not None:
            return self._columnar.configuration()
        return self._configuration

    @property
    def steps(self) -> int:
        """Computation steps executed so far."""
        return self._steps

    @property
    def rounds(self) -> int:
        """Rounds completed so far."""
        return self._rounds.completed_rounds

    @property
    def moves(self) -> int:
        """Total individual actions executed so far."""
        return self._moves

    @property
    def action_counts(self) -> dict[str, int]:
        """Histogram of executed action names."""
        return dict(self._action_counts)

    def enabled(self) -> dict[int, list[Action]]:
        """The enabled map of the current configuration."""
        return {p: list(actions) for p, actions in self._enabled.items()}

    def enabled_nodes(self) -> frozenset[int]:
        """Processors with at least one enabled action."""
        return frozenset(self._enabled)

    @property
    def crashed(self) -> frozenset[int]:
        """Processors currently crashed (see :meth:`crash`)."""
        return frozenset(self._crashed)

    @property
    def suppressed(self) -> frozenset[int]:
        """Processors currently guard-suppressed (see :meth:`suppress`)."""
        return frozenset(self._suppressed)

    def is_terminal(self) -> bool:
        """True if no action is enabled (the computation is maximal)."""
        return not self._enabled

    def is_stalled(self) -> bool:
        """True if actions are enabled but every enabled processor is crashed.

        A stalled simulator cannot step until some processor recovers —
        campaign runners fast-forward to the next recovery event.
        """
        return bool(self._enabled) and not self._selectable()

    def _selectable(self) -> dict[int, list[Action]]:
        """The enabled map minus crashed/suppressed processors."""
        if not self._crashed and not self._suppressed:
            return self._enabled
        excluded = self._crashed | self._suppressed
        return {
            p: actions
            for p, actions in self._enabled.items()
            if p not in excluded
        }

    def add_monitor(self, monitor: Monitor) -> None:
        """Attach a monitor; it sees the current configuration as start."""
        monitor.on_start(self.configuration)
        self._monitors.append(monitor)

    def reset_configuration(self, configuration: Configuration) -> None:
        """Replace the current configuration in place — a transient fault.

        Models faults striking *during* execution (arbitrary memory
        corruption at an arbitrary time), the scenario self- and
        snap-stabilization are about.  Counters (steps, rounds, moves)
        keep accumulating; the round in progress restarts from the new
        configuration's enabled set (the fault interrupts it), and every
        monitor is re-started so specifications are judged from the
        post-fault state.
        """
        if len(configuration) != self.network.n:
            raise ScheduleError(
                f"configuration has {len(configuration)} states for a "
                f"{self.network.n}-processor network"
            )
        # A fault can rewrite any subset of the memory, so the dirty-set
        # argument does not apply: recompute the enabled map from scratch.
        if self._columnar is not None:
            self._columnar.load(configuration)
            self._enabled = self._columnar.enabled_map()
            if self.validate_engine:
                self._check_against_full(set(self.network.nodes))
        else:
            self._configuration = configuration
            self._eval_cache = {}
            self._enabled = self.protocol.enabled_map(
                configuration, self.network, cache=self._eval_cache
            )
        self._rounds.restart(frozenset(self._enabled))
        for monitor in self._monitors:
            monitor.on_start(configuration)
        self._mark_fault("corrupt", "configuration replaced")

    # ------------------------------------------------------------------
    # Fault-event hooks (chaos campaigns)
    # ------------------------------------------------------------------
    def _mark_fault(self, kind: str, detail: str) -> None:
        """Record a fault event in the trace and (if on) telemetry."""
        self.trace.mark_fault(self._steps, kind, detail)
        if _telemetry.enabled:
            reg = _telemetry.registry
            reg.inc("sim.faults")
            reg.inc(f"sim.faults.{kind}")

    def perturb_configuration(self, updates: Mapping[int, NodeState]) -> set[int]:
        """Overwrite a *subset* of processor memories — a targeted fault.

        The incremental-engine counterpart of :meth:`reset_configuration`:
        only the touched nodes form the dirty set, so the enabled map is
        repaired on ``U ∪ N(U)`` instead of recomputed from scratch.
        Like any transient fault it restarts the round in progress and
        every monitor.  Returns the set of nodes whose state actually
        changed (no-op writes are dropped).
        """
        for p in updates:
            if p not in self.network.nodes:
                raise ScheduleError(f"perturbation targets unknown node {p}")
        current = self.configuration
        effective = {
            p: state
            for p, state in updates.items()
            if state != current[p]
        }
        if not effective:
            return set()
        if self._columnar is not None:
            self._columnar.apply_updates(effective)
            self._enabled = self._columnar.enabled_map()
            if self.validate_engine:
                self._check_against_full(set(effective))
            after = self.configuration
        else:
            after = current.replace(effective)
            self._configuration = after
            self._refresh_enabled(set(effective))
        self._rounds.restart(frozenset(self._enabled))
        for monitor in self._monitors:
            monitor.on_start(after)
        self._mark_fault("corrupt", f"nodes {sorted(effective)}")
        return set(effective)

    def crash(self, nodes: Iterable[int]) -> frozenset[int]:
        """Crash processors: they stop executing but their memory persists.

        Crashed processors are excluded from daemon selection and from
        round accounting's "continuously enabled" bookkeeping (a crash
        plays the disable action); neighbors keep reading their frozen
        state — the locally-shared-memory model has no way to make
        memory disappear.  Monitors are *not* restarted: the
        configuration is unchanged.  Returns the newly crashed set.
        """
        nodes = frozenset(nodes)
        unknown = nodes - set(self.network.nodes)
        if unknown:
            raise ScheduleError(f"cannot crash unknown nodes {sorted(unknown)}")
        newly = nodes - self._crashed
        if not newly:
            return frozenset()
        self._crashed |= newly
        self._rounds.set_excluded(
            frozenset(self._crashed | self._suppressed),
            frozenset(self._enabled),
        )
        self._mark_fault("crash", f"nodes {sorted(newly)}")
        return newly

    def recover(self, nodes: Iterable[int] | None = None) -> frozenset[int]:
        """Recover crashed processors (all of them when ``nodes`` is None).

        A recovered processor resumes from its pre-crash memory — the
        snap guarantees treat that memory as arbitrary, so nothing needs
        resetting — and re-enters fairness accounting with a fresh
        enabled-age of 1.  It joins round bookkeeping from the next
        round.  Returns the set that actually recovered.
        """
        wanted = self._crashed if nodes is None else frozenset(nodes)
        back = frozenset(wanted) & self._crashed
        if not back:
            return frozenset()
        self._crashed -= back
        self._rounds.set_excluded(
            frozenset(self._crashed | self._suppressed),
            frozenset(self._enabled),
        )
        self._mark_fault("recover", f"nodes {sorted(back)}")
        return back

    def suppress(self, nodes: Iterable[int]) -> frozenset[int]:
        """Suppress processors' guards — the shared-memory loss analogue.

        In the message-passing model a lossy link makes a processor act
        on stale neighbor copies; the closest shared-memory rendition
        is a processor whose enabled guards are never granted by the
        daemon (it reads, but its moves are "lost").  Suppressed
        processors keep their memory readable and are excluded from
        selection and round accounting exactly like crashed ones, but
        the fault is marked separately (``suppress``) so tapes and
        telemetry distinguish a loss window from an outage.  Returns
        the newly suppressed set.
        """
        nodes = frozenset(nodes)
        unknown = nodes - set(self.network.nodes)
        if unknown:
            raise ScheduleError(
                f"cannot suppress unknown nodes {sorted(unknown)}"
            )
        newly = nodes - self._suppressed
        if not newly:
            return frozenset()
        self._suppressed |= newly
        self._rounds.set_excluded(
            frozenset(self._crashed | self._suppressed),
            frozenset(self._enabled),
        )
        self._mark_fault("suppress", f"nodes {sorted(newly)}")
        return newly

    def release(self, nodes: Iterable[int] | None = None) -> frozenset[int]:
        """Release guard suppression (all of it when ``nodes`` is None).

        The mirror of :meth:`recover`: released processors re-enter
        fairness accounting with a fresh enabled-age.  Returns the set
        actually released.
        """
        wanted = self._suppressed if nodes is None else frozenset(nodes)
        back = frozenset(wanted) & self._suppressed
        if not back:
            return frozenset()
        self._suppressed -= back
        self._rounds.set_excluded(
            frozenset(self._crashed | self._suppressed),
            frozenset(self._enabled),
        )
        self._mark_fault("release", f"nodes {sorted(back)}")
        return back

    def apply_topology(self, network: Network) -> frozenset[int]:
        """Swap the network under the live run — link churn.

        ``network`` must have the same processor set (links change,
        processors do not).  States whose domains depend on the neighbor
        set are re-domained via the protocol's
        :meth:`~repro.runtime.protocol.Protocol.sanitize_state`; the
        incremental engine is repaired with the changed endpoints (plus
        sanitized nodes) as the dirty set — an edge flip dirties exactly
        its two endpoints.  Monitors are told the new topology and
        restarted.  Returns the dirty set used.
        """
        if network.n != self.network.n:
            raise ScheduleError(
                f"topology change must preserve the processor set "
                f"(have {self.network.n}, got {network.n})"
            )
        touched = self.network.changed_nodes(network)
        old_name = self.network.name
        current = self.configuration
        updates: dict[int, NodeState] = {}
        for p in touched:
            state = current[p]
            fixed = self.protocol.sanitize_state(p, state, network)
            if fixed != state:
                updates[p] = fixed
        dirty = set(touched) | set(updates)
        self.network = network
        if self._columnar is not None:
            # The compiled kernel's CSR index is per-network: recompile.
            self._columnar.rebuild(
                network, current.replace(updates) if updates else current
            )
            self._enabled = self._columnar.enabled_map()
            if self.validate_engine:
                self._check_against_full(dirty)
            if dirty:
                self._rounds.restart(frozenset(self._enabled))
        else:
            if updates:
                self._configuration = current.replace(updates)
            if dirty:
                self._refresh_enabled(dirty)
                self._rounds.restart(frozenset(self._enabled))
        for monitor in self._monitors:
            on_network = getattr(monitor, "on_network", None)
            if on_network is not None:
                on_network(network)
            monitor.on_start(self.configuration)
        self._mark_fault(
            "topology",
            f"{old_name} -> {network.name} (dirty {sorted(dirty)})",
        )
        return frozenset(dirty)

    def swap_daemon(self, daemon: Daemon) -> None:
        """Replace the scheduler mid-run (the adversary changes strategy)."""
        self.daemon = daemon
        daemon.reset()
        self._mark_fault("swap-daemon", daemon.name)

    def _refresh_enabled(self, dirty: set[int]) -> None:
        """Repair the enabled map after ``dirty`` nodes changed state/views."""
        if self.engine == "incremental":
            cache: dict = {}
            self._enabled = self.protocol.enabled_map_incremental(
                self._enabled,
                self._configuration,
                self.network,
                dirty,
                cache=cache,
            )
            self._eval_cache = cache
            if self.validate_engine:
                self._check_against_full(dirty)
        else:
            self._eval_cache = {}
            self._enabled = self.protocol.enabled_map(
                self._configuration, self.network, cache=self._eval_cache
            )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> StepRecord | None:
        """Execute one computation step.

        Returns ``None`` on a terminal configuration, and also when the
        run is *stalled* — actions are enabled but every enabled
        processor is crashed (check :meth:`is_stalled` to distinguish).
        """
        selectable = self._selectable()
        if not selectable:
            return None

        selection = self.daemon.select(
            selectable,
            network=self.network,
            step=self._steps,
            ages=self._rounds.ages,
            rng=self.rng,
        )
        self._validate_selection(selection, selectable)

        if self._columnar is not None:
            # Materialize object views only when something consumes them
            # — monitors, configuration-level traces, or the lockstep
            # validator.  Otherwise the step stays entirely columnar.
            need_objects = (
                bool(self._monitors)
                or self.trace.level == "configurations"
                or self.validate_engine
            )
            before = self._columnar.configuration() if need_objects else None
            dirty = self._columnar.execute_selection(selection)
            if dirty:
                self._enabled = self._columnar.enabled_map()
                if self.validate_engine:
                    self._check_against_full(dirty)
            after = self._columnar.configuration() if need_objects else None
            # Successor validation only applies to kernels that opt in:
            # the object bridge *is* the object path, and kernels with
            # object statements (which protocols may make impure) must
            # not re-execute them — that would itself perturb
            # application state.
            if self.validate_engine and self._columnar.validates_successor:
                self._check_columnar_successor(before, selection, after, dirty)
        else:
            before = self._configuration
            # Statements execute against ``before`` — the same
            # configuration the current enabled map was evaluated on — so
            # they share its evaluation cache.  No-op writes are excluded
            # from the dirty set by execute_selection.
            after, dirty = self.protocol.execute_selection(
                before, self.network, selection, cache=self._eval_cache
            )

            self._configuration = after
            if not dirty:
                pass  # configuration unchanged: enabled map + cache stay valid
            elif self.engine == "incremental":
                cache: dict = {}
                self._enabled = self.protocol.enabled_map_incremental(
                    self._enabled, after, self.network, dirty, cache=cache
                )
                self._eval_cache = cache
                if self.validate_engine:
                    self._check_against_full(dirty)
            else:
                self._eval_cache = {}
                self._enabled = self.protocol.enabled_map(
                    after, self.network, cache=self._eval_cache
                )
        rounds_completed = self._rounds.observe_step(
            set(selection), frozenset(self._enabled)
        )

        self._steps += 1
        self._moves += len(selection)
        for action in selection.values():
            self._action_counts[action.name] = (
                self._action_counts.get(action.name, 0) + 1
            )

        if _telemetry.enabled:
            reg = _telemetry.registry
            reg.inc("sim.steps")
            reg.inc("sim.moves", len(selection))
            reg.inc("sim.rounds", rounds_completed)
            reg.observe("sim.selection_size", len(selection))
            reg.observe("sim.enabled_set_size", len(self._enabled))
            reg.observe("sim.dirty_set_size", len(dirty))

        record = StepRecord(
            index=self._steps - 1,
            selection={p: a.name for p, a in selection.items()},
            rounds_completed=rounds_completed,
            after=after,
        )
        self.trace.append(record)
        for monitor in self._monitors:
            monitor.on_step(before, record, after)
        return record

    def run(
        self,
        *,
        until: Callable[[Configuration], bool] | None = None,
        max_steps: int = DEFAULT_MAX_STEPS,
        max_rounds: int | None = None,
        raise_on_limit: bool = False,
    ) -> RunResult:
        """Run until the predicate holds, the computation terminates, or a budget runs out.

        ``until`` is checked on the current configuration *before* each
        step, so a run whose starting configuration already satisfies the
        predicate returns immediately with ``steps == 0``.
        """
        satisfied = False
        terminated = False
        while True:
            if until is not None and until(self.configuration):
                satisfied = True
                break
            if not self._selectable():
                # Terminal, or stalled with every enabled processor
                # crashed — either way the run cannot advance by itself.
                terminated = not self._enabled
                break
            if self._steps >= max_steps or (
                max_rounds is not None and self.rounds >= max_rounds
            ):
                if raise_on_limit:
                    raise SimulationLimitError(
                        f"budget exhausted after {self._steps} steps / "
                        f"{self.rounds} rounds without reaching the goal"
                    )
                break
            self.step()

        return RunResult(
            final=self.configuration,
            steps=self._steps,
            rounds=self.rounds,
            moves=self._moves,
            terminated=terminated,
            satisfied=satisfied,
            trace=self.trace if self.trace.level != "none" else None,
            action_counts=dict(self._action_counts),
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _validate_selection(
        self,
        selection: dict[int, Action],
        selectable: Mapping[int, Sequence[Action]],
    ) -> None:
        if not selection:
            raise ScheduleError("daemon returned an empty selection")
        for p, action in selection.items():
            enabled_here: Sequence[Action] | None = selectable.get(p)
            if enabled_here is None:
                if p in self._crashed:
                    raise ScheduleError(
                        f"daemon selected crashed processor {p}"
                    )
                if p in self._suppressed:
                    raise ScheduleError(
                        f"daemon selected suppressed processor {p}"
                    )
                raise ScheduleError(
                    f"daemon selected disabled processor {p}"
                )
            if action not in enabled_here:
                raise ScheduleError(
                    f"daemon selected action {action.name!r} not enabled at "
                    f"processor {p}"
                )

    def _check_against_full(self, dirty: set[int]) -> None:
        full = self.protocol.enabled_map(self.configuration, self.network)
        if full != self._enabled or list(full) != list(self._enabled):
            raise VerificationError(
                f"{self.engine} enabled map diverged from full recompute "
                f"at step {self._steps} (dirty={sorted(dirty)}): "
                f"{self.engine}={ {p: [a.name for a in v] for p, v in self._enabled.items()} } "
                f"full={ {p: [a.name for a in v] for p, v in full.items()} }"
            )

    def _check_columnar_successor(
        self,
        before: Configuration,
        selection: dict[int, Action],
        after: Configuration,
        dirty: set[int],
    ) -> None:
        """Lockstep-check one columnar step against the object path.

        The object engine executes the same selection on the same
        pre-step configuration; successor and dirty set must agree
        bit for bit.
        """
        expect_after, expect_dirty = self.protocol.execute_selection(
            before, self.network, selection
        )
        if expect_dirty != dirty or expect_after != after:
            raise VerificationError(
                f"columnar successor diverged from the object path at "
                f"step {self._steps}: dirty={sorted(dirty)} vs "
                f"expected {sorted(expect_dirty)}; differing nodes: "
                f"{[p for p in range(len(after)) if after[p] != expect_after[p]]}"
            )
