"""Round accounting per the paper's definition (Dolev, Israeli, Moran).

Given a computation ``e``, the *first round* of ``e`` is the minimal
prefix containing the execution of one action — a protocol action or the
*disable action* — of every processor continuously enabled from the first
configuration.  The second round is the first round of the remaining
suffix, and so on.  Rounds capture the execution rate of the slowest
processor and are the time unit of every bound proved in the paper.

:class:`RoundCounter` implements this incrementally: it tracks the set
of processors that were enabled when the current round began and have
been *continuously enabled and inactive* since.  A processor leaves the
set by executing any action, or by becoming disabled without executing
(the disable action).  The round completes when the set empties.
"""

from __future__ import annotations

from typing import AbstractSet, Iterable, Mapping

__all__ = ["RoundCounter"]


class RoundCounter:
    """Incremental round counter for a single computation.

    Usage: construct with the initially enabled set, then call
    :meth:`observe_step` once per computation step with the processors
    that executed an action and the set enabled in the *next*
    configuration.
    """

    __slots__ = ("_pending", "_completed", "_ages", "_excluded")

    def __init__(
        self,
        initially_enabled: Iterable[int],
        *,
        excluded: Iterable[int] = (),
    ) -> None:
        self._excluded: frozenset[int] = frozenset(excluded)
        self._pending: set[int] = set(initially_enabled) - self._excluded
        self._completed = 0
        # Consecutive steps each processor has been enabled (>= 1 when
        # enabled); shared with daemons for fairness decisions.
        self._ages: dict[int, int] = {p: 1 for p in self._pending}

    @property
    def completed_rounds(self) -> int:
        """Number of fully completed rounds so far."""
        return self._completed

    @property
    def pending(self) -> frozenset[int]:
        """Processors still owed an action in the current round."""
        return frozenset(self._pending)

    @property
    def ages(self) -> Mapping[int, int]:
        """Consecutive-steps-enabled per currently enabled processor."""
        return self._ages

    @property
    def excluded(self) -> frozenset[int]:
        """Processors excluded from round accounting (crashed)."""
        return self._excluded

    def restart(self, enabled: Iterable[int]) -> None:
        """Restart the round in progress from a new enabled set.

        Used when a transient fault replaces the configuration mid-run:
        the completed-round count is preserved, the interrupted round's
        bookkeeping is discarded.  The excluded (crashed) set survives
        the restart — a memory fault does not revive a dead processor.
        """
        self._pending = set(enabled) - self._excluded
        self._ages = {p: 1 for p in self._pending}

    def set_excluded(
        self, excluded: Iterable[int], enabled_now: Iterable[int]
    ) -> int:
        """Replace the excluded set mid-run (crash / recovery).

        A crashed processor is no longer *continuously enabled* — its
        pending obligation is dropped exactly as if it had executed the
        disable action, and its enabled-age streak resets.  A recovered
        processor that is enabled re-enters the age table at 1 but joins
        round bookkeeping only from the *next* round (it was not
        continuously enabled from the current round's start).

        Returns the number of rounds completed by this change (1 when
        dropping crashed processors emptied the current round's pending
        set, else 0).
        """
        excluded = frozenset(excluded)
        newly = excluded - self._excluded
        self._excluded = excluded

        emptied = bool(self._pending) and not (self._pending - newly)
        self._pending -= newly
        for p in newly:
            self._ages.pop(p, None)
        for p in enabled_now:
            if p not in excluded and p not in self._ages:
                self._ages[p] = 1

        completed = 0
        if not self._pending:
            if emptied:
                completed = 1
                self._completed += 1
            self._pending = {
                p for p in enabled_now if p not in excluded
            }
        return completed

    def observe_step(
        self, executed: AbstractSet[int], enabled_after: AbstractSet[int]
    ) -> int:
        """Account for one computation step.

        Parameters
        ----------
        executed:
            Processors that executed a protocol action in this step.
        enabled_after:
            Processors enabled in the configuration *after* the step.

        Returns the number of rounds completed by this step (0 or more;
        more than one only if the round emptied and the next round's
        enabled set is empty too — which cannot happen because an empty
        enabled set means the computation is terminal).
        """
        # Ages: executing or becoming disabled resets the streak.
        # Excluded (crashed) processors carry no age at all — daemons
        # must not count them against fairness.
        excluded = self._excluded
        new_ages: dict[int, int] = {}
        for p in enabled_after:
            if p in excluded:
                continue
            if p in executed or p not in self._ages:
                new_ages[p] = 1
            else:
                new_ages[p] = self._ages[p] + 1
        self._ages = new_ages

        # Round bookkeeping: drop processors that acted, or that were
        # neutralized (disable action = enabled before, not after, no
        # action executed).
        self._pending = {
            p for p in self._pending if p not in executed and p in enabled_after
        }

        completed = 0
        if not self._pending:
            completed = 1
            self._completed += 1
            self._pending = {p for p in enabled_after if p not in excluded}
        return completed
