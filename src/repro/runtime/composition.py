"""Fair (collateral) composition of protocols.

Self-stabilizing systems are routinely built as stacks: a lower layer
stabilizes a structure (e.g. a spanning tree) while an upper layer
computes over it.  Under *fair composition*, both layers' actions run
interleaved under one weakly fair daemon, and the classic composition
theorem says the stack stabilizes if the upper layer stabilizes once the
lower one has.

:class:`ComposedProtocol` implements the interleaving: the composite
per-node state is a :class:`LayeredState` (one sub-state per layer), the
composite program is the union of the layers' programs (action names are
prefixed with the layer name), and each layer's guards/statements see
only their own layer — composition is non-interfering by construction.
Layers that must *read* a lower layer (e.g. a wave protocol reading the
tree under it) are cross-layer by nature and are modeled as a single
protocol instead (see :mod:`repro.protocols.tree_stack`).
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import Sequence

from repro.errors import ProtocolError
from repro.runtime.network import Network
from repro.runtime.protocol import Action, Context, Protocol
from repro.runtime.state import Configuration, NodeState

__all__ = ["LayeredState", "ComposedProtocol"]


@dataclass(frozen=True, slots=True)
class LayeredState(NodeState):
    """Composite per-node state: one sub-state per layer."""

    layers: tuple[NodeState, ...]

    def layer(self, index: int) -> NodeState:
        """The sub-state of one layer."""
        return self.layers[index]


class _LayerView:
    """Duck-typed :class:`Configuration` projecting one layer.

    Only ``__getitem__`` and ``__len__`` are needed by
    :class:`~repro.runtime.protocol.Context`.
    """

    __slots__ = ("_composite", "_index")

    def __init__(self, composite: Configuration, index: int) -> None:
        self._composite = composite
        self._index = index

    def __getitem__(self, node: int) -> NodeState:
        state = self._composite[node]
        assert isinstance(state, LayeredState)
        return state.layers[self._index]

    def __len__(self) -> int:
        return len(self._composite)


class ComposedProtocol(Protocol):
    """Run several protocols side by side under one daemon.

    The composite program of a node is the concatenation of the layers'
    programs in layer order; when several layers are enabled at a node
    the daemon's action policy decides which fires (weak fairness at the
    *node* level is inherited from the daemon; action-level fairness
    follows because an enabled layer action stays enabled until taken or
    disabled by its own layer's state).
    """

    def __init__(self, *layers: Protocol) -> None:
        super().__init__()
        if len(layers) < 2:
            raise ProtocolError("composition needs at least two layers")
        self.layers = tuple(layers)
        self.name = "+".join(layer.name for layer in layers)

    # ------------------------------------------------------------------
    # Projection machinery
    # ------------------------------------------------------------------
    def _lift(self, index: int, action: Action) -> Action:
        layer_name = self.layers[index].name

        def guard(ctx: Context) -> bool:
            view = _LayerView(ctx.configuration, index)
            return action.guard(Context(ctx.node, ctx.network, view))  # type: ignore[arg-type]

        def statement(ctx: Context) -> LayeredState:
            view = _LayerView(ctx.configuration, index)
            new_sub = action.statement(
                Context(ctx.node, ctx.network, view)  # type: ignore[arg-type]
            )
            composite = ctx.state
            assert isinstance(composite, LayeredState)
            layers = list(composite.layers)
            layers[index] = new_sub
            return LayeredState(tuple(layers))

        return Action(
            f"{layer_name}/{action.name}",
            guard,
            statement,
            correction=action.correction,
        )

    # ------------------------------------------------------------------
    # Protocol interface
    # ------------------------------------------------------------------
    def actions(self, node: int, network: Network) -> Sequence[Action]:
        lifted: list[Action] = []
        for index, layer in enumerate(self.layers):
            for action in layer.node_actions(node, network):
                lifted.append(self._lift(index, action))
        return lifted

    def initial_state(self, node: int, network: Network) -> LayeredState:
        return LayeredState(
            tuple(layer.initial_state(node, network) for layer in self.layers)
        )

    def random_state(
        self, node: int, network: Network, rng: Random
    ) -> LayeredState:
        return LayeredState(
            tuple(
                layer.random_state(node, network, rng) for layer in self.layers
            )
        )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def layer_configuration(
        self, configuration: Configuration, index: int
    ) -> Configuration:
        """Extract one layer's plain configuration (for layer-level checks)."""
        states = []
        for state in configuration:
            assert isinstance(state, LayeredState)
            states.append(state.layers[index])
        return Configuration(tuple(states))
