"""Daemons (schedulers) for the guarded-action model.

The paper assumes a *weakly fair distributed* daemon: at every
computation step the daemon activates a non-empty subset of the enabled
processors, and a continuously enabled processor is eventually
activated.  The distributed daemon is the most general adversary —
synchronous, central and locally central daemons are all special cases —
so a protocol proved correct under it is correct under all of them.

This module provides:

* :class:`SynchronousDaemon` — all enabled processors fire (one round per
  step); the reference scheduler for complexity measurements.
* :class:`CentralDaemon` — exactly one processor fires per step.
* :class:`LocallyCentralDaemon` — a maximal set of pairwise non-adjacent
  enabled processors fires.
* :class:`DistributedRandomDaemon` — each enabled processor fires with a
  given probability (at least one always fires).
* :class:`AdversarialDaemon` — starves processors as long as weak
  fairness permits, firing minimal subsets of the *youngest* enabled
  processors; used to stress the round bounds.
* :class:`ReplayDaemon` — replays a recorded schedule (trace replay).
* :class:`WeaklyFairDaemon` — wrapper enforcing weak fairness on any
  inner daemon via a starvation patience threshold.

A daemon's :meth:`Daemon.select` receives the enabled map (node → list
of enabled actions, in program order), the per-node *ages* (number of
consecutive steps each node has been enabled, ``1`` meaning freshly
enabled) and a seeded RNG, and must return a non-empty ``{node: action}``
selection.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from random import Random
from typing import Mapping, Sequence

from repro.errors import ReplayError, ScheduleError
from repro.runtime.network import Network
from repro.runtime.protocol import Action

__all__ = [
    "Daemon",
    "SynchronousDaemon",
    "CentralDaemon",
    "LocallyCentralDaemon",
    "DistributedRandomDaemon",
    "AdversarialDaemon",
    "ReplayDaemon",
    "RoundRobinDaemon",
    "WeaklyFairDaemon",
]


def _pick_action(actions: Sequence[Action], policy: str, rng: Random) -> Action:
    """Choose one enabled action according to ``policy``.

    ``"first"`` follows program order (the paper lists normal actions
    before corrections, and guards of distinct normal actions are
    designed to be near-exclusive); ``"random"`` lets the adversary pick.
    """
    if policy == "first":
        return actions[0]
    if policy == "random":
        return rng.choice(list(actions))
    raise ScheduleError(f"unknown action policy {policy!r}")


class Daemon(ABC):
    """Base class for schedulers."""

    name: str = "daemon"

    #: How to resolve several simultaneously enabled actions at one node.
    action_policy: str = "first"

    def __init__(self, *, action_policy: str = "first") -> None:
        if action_policy not in ("first", "random"):
            raise ScheduleError(f"unknown action policy {action_policy!r}")
        self.action_policy = action_policy

    @abstractmethod
    def select(
        self,
        enabled: Mapping[int, Sequence[Action]],
        *,
        network: Network,
        step: int,
        ages: Mapping[int, int],
        rng: Random,
    ) -> dict[int, Action]:
        """Return a non-empty selection ``{node: action}``."""

    def reset(self) -> None:
        """Clear any internal scheduling state (between runs)."""

    def _choose(self, actions: Sequence[Action], rng: Random) -> Action:
        return _pick_action(actions, self.action_policy, rng)


class SynchronousDaemon(Daemon):
    """Activate every enabled processor at every step.

    One computation step equals exactly one round, which makes this the
    canonical daemon for measuring round complexities.
    """

    name = "synchronous"

    def select(
        self,
        enabled: Mapping[int, Sequence[Action]],
        *,
        network: Network,
        step: int,
        ages: Mapping[int, int],
        rng: Random,
    ) -> dict[int, Action]:
        return {p: self._choose(actions, rng) for p, actions in enabled.items()}


class CentralDaemon(Daemon):
    """Activate exactly one enabled processor per step.

    ``choice`` controls which: ``"random"`` (default), ``"oldest"`` (the
    longest continuously enabled — a fair sequential scheduler) or
    ``"lowest"`` (smallest identifier — deterministic).
    """

    name = "central"

    def __init__(self, *, choice: str = "random", action_policy: str = "first") -> None:
        super().__init__(action_policy=action_policy)
        if choice not in ("random", "oldest", "lowest"):
            raise ScheduleError(f"unknown central choice {choice!r}")
        self._choice = choice

    def select(
        self,
        enabled: Mapping[int, Sequence[Action]],
        *,
        network: Network,
        step: int,
        ages: Mapping[int, int],
        rng: Random,
    ) -> dict[int, Action]:
        nodes = list(enabled)
        if self._choice == "random":
            p = rng.choice(nodes)
        elif self._choice == "oldest":
            p = max(nodes, key=lambda q: (ages.get(q, 0), -q))
        else:
            p = min(nodes)
        return {p: self._choose(enabled[p], rng)}


class LocallyCentralDaemon(Daemon):
    """Activate a maximal independent set of enabled processors.

    No two neighbors fire in the same step, a common intermediate
    adversary between central and distributed daemons.
    """

    name = "locally-central"

    def select(
        self,
        enabled: Mapping[int, Sequence[Action]],
        *,
        network: Network,
        step: int,
        ages: Mapping[int, int],
        rng: Random,
    ) -> dict[int, Action]:
        nodes = list(enabled)
        rng.shuffle(nodes)
        chosen: dict[int, Action] = {}
        blocked: set[int] = set()
        for p in nodes:
            if p in blocked:
                continue
            chosen[p] = self._choose(enabled[p], rng)
            blocked.add(p)
            blocked.update(network.neighbors(p))
        return chosen


class DistributedRandomDaemon(Daemon):
    """Activate each enabled processor independently with probability ``p``.

    At least one processor always fires (the daemon must make progress).
    With ``p = 1.0`` this degenerates to the synchronous daemon; small
    ``p`` approximates a highly asynchronous system.
    """

    name = "distributed-random"

    def __init__(
        self, probability: float = 0.5, *, action_policy: str = "first"
    ) -> None:
        super().__init__(action_policy=action_policy)
        if not 0.0 < probability <= 1.0:
            raise ScheduleError(
                f"activation probability must be in (0, 1], got {probability}"
            )
        self.probability = probability

    def select(
        self,
        enabled: Mapping[int, Sequence[Action]],
        *,
        network: Network,
        step: int,
        ages: Mapping[int, int],
        rng: Random,
    ) -> dict[int, Action]:
        chosen = {
            p: self._choose(actions, rng)
            for p, actions in enabled.items()
            if rng.random() < self.probability
        }
        if not chosen:
            p = rng.choice(list(enabled))
            chosen[p] = self._choose(enabled[p], rng)
        return chosen


class AdversarialDaemon(Daemon):
    """A starvation-maximizing daemon (still weakly fair via patience).

    Strategy: every step, fire only the single *most recently* enabled
    processor (smallest age), postponing long-enabled processors; any
    processor whose age reaches ``patience`` is forced to fire.  This
    stretches rounds as far as weak fairness allows and produces
    worst-case-ish executions for the stabilization bounds.
    """

    name = "adversarial"

    def __init__(self, *, patience: int = 8, action_policy: str = "random") -> None:
        super().__init__(action_policy=action_policy)
        if patience < 1:
            raise ScheduleError(f"patience must be >= 1, got {patience}")
        self.patience = patience

    def select(
        self,
        enabled: Mapping[int, Sequence[Action]],
        *,
        network: Network,
        step: int,
        ages: Mapping[int, int],
        rng: Random,
    ) -> dict[int, Action]:
        chosen: dict[int, Action] = {}
        for p, actions in enabled.items():
            if ages.get(p, 1) >= self.patience:
                chosen[p] = self._choose(actions, rng)
        if chosen:
            return chosen
        youngest = min(enabled, key=lambda q: (ages.get(q, 1), q))
        return {youngest: self._choose(enabled[youngest], rng)}


class RoundRobinDaemon(Daemon):
    """Deterministic fair scheduler: one processor per step, cycling.

    Visits processors in identifier order, skipping disabled ones; the
    strongest *deterministic* fairness (every enabled processor fires at
    least once every ``n`` of its enabled steps).  Useful for
    reproducible sequential executions without an RNG.
    """

    name = "round-robin"

    def __init__(self, *, action_policy: str = "first") -> None:
        super().__init__(action_policy=action_policy)
        self._next = 0

    def reset(self) -> None:
        self._next = 0

    def select(
        self,
        enabled: Mapping[int, Sequence[Action]],
        *,
        network: Network,
        step: int,
        ages: Mapping[int, int],
        rng: Random,
    ) -> dict[int, Action]:
        n = network.n
        for offset in range(n):
            p = (self._next + offset) % n
            if p in enabled:
                self._next = (p + 1) % n
                return {p: self._choose(enabled[p], rng)}
        raise ScheduleError("no enabled processor to select")


class ReplayDaemon(Daemon):
    """Replay a previously recorded schedule.

    ``schedule`` is a sequence of ``{node: action name}`` mappings, one
    per step (e.g. taken from a :class:`~repro.runtime.trace.Trace`).
    Raises :class:`~repro.errors.ReplayError` — carrying the schedule
    step index, the offending node/action, and the expected-vs-enabled
    map — if the schedule is exhausted or the recorded selection is no
    longer enabled.  Replay is only meaningful on the same initial
    configuration and protocol.
    """

    name = "replay"

    def __init__(self, schedule: Sequence[Mapping[int, str]]) -> None:
        super().__init__(action_policy="first")
        self._schedule = [dict(sel) for sel in schedule]
        self._cursor = 0

    def reset(self) -> None:
        self._cursor = 0

    @property
    def cursor(self) -> int:
        """Index of the next schedule entry to replay."""
        return self._cursor

    @property
    def exhausted(self) -> bool:
        """True once every scheduled step has been replayed."""
        return self._cursor >= len(self._schedule)

    @staticmethod
    def _enabled_names(
        enabled: Mapping[int, Sequence[Action]]
    ) -> dict[int, list[str]]:
        return {p: [a.name for a in actions] for p, actions in enabled.items()}

    def select(
        self,
        enabled: Mapping[int, Sequence[Action]],
        *,
        network: Network,
        step: int,
        ages: Mapping[int, int],
        rng: Random,
    ) -> dict[int, Action]:
        index = self._cursor
        if index >= len(self._schedule):
            raise ReplayError(
                f"replay schedule exhausted after {len(self._schedule)} "
                f"step(s) but the computation wants step {step}",
                step_index=index,
                reason="exhausted",
                enabled=self._enabled_names(enabled),
            )
        wanted = self._schedule[index]
        self._cursor += 1
        chosen: dict[int, Action] = {}
        for p, action_name in wanted.items():
            actions = enabled.get(p)
            if actions is None:
                raise ReplayError(
                    f"replay step {index}: node {p} expected to execute "
                    f"{action_name!r} but is not enabled "
                    f"(enabled: {sorted(enabled)})",
                    step_index=index,
                    reason="node-not-enabled",
                    node=p,
                    action=action_name,
                    enabled=self._enabled_names(enabled),
                )
            match = next((a for a in actions if a.name == action_name), None)
            if match is None:
                raise ReplayError(
                    f"replay step {index}: action {action_name!r} not enabled "
                    f"at node {p} (enabled: {[a.name for a in actions]})",
                    step_index=index,
                    reason="action-not-enabled",
                    node=p,
                    action=action_name,
                    enabled=self._enabled_names(enabled),
                )
            chosen[p] = match
        if not chosen:
            raise ReplayError(
                f"replay step {index}: empty selection",
                step_index=index,
                reason="empty-step",
                enabled=self._enabled_names(enabled),
            )
        return chosen


class WeaklyFairDaemon(Daemon):
    """Enforce weak fairness on an arbitrary inner daemon.

    After the inner daemon selects, every processor continuously enabled
    for at least ``patience`` steps is added to the selection (with its
    first enabled action).  Wrapping any daemon in this class guarantees
    the weak fairness assumption of the paper's model.
    """

    name = "weakly-fair"

    def __init__(self, inner: Daemon, *, patience: int = 32) -> None:
        super().__init__(action_policy=inner.action_policy)
        if patience < 1:
            raise ScheduleError(f"patience must be >= 1, got {patience}")
        self.inner = inner
        self.patience = patience
        self.name = f"weakly-fair({inner.name})"

    def reset(self) -> None:
        self.inner.reset()

    def select(
        self,
        enabled: Mapping[int, Sequence[Action]],
        *,
        network: Network,
        step: int,
        ages: Mapping[int, int],
        rng: Random,
    ) -> dict[int, Action]:
        chosen = dict(
            self.inner.select(
                enabled, network=network, step=step, ages=ages, rng=rng
            )
        )
        for p, actions in enabled.items():
            if p not in chosen and ages.get(p, 1) >= self.patience:
                chosen[p] = actions[0]
        return chosen
