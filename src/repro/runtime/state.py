"""Per-processor states and global configurations.

States are small immutable (frozen dataclass) objects; a global
configuration is an immutable tuple of per-processor states.  Both are
hashable so the exhaustive model checker can memoize visited
configurations, and so traces can be compared structurally in tests.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Iterator, Mapping, TypeVar

from repro.errors import ProtocolError

__all__ = ["NodeState", "Configuration", "InternTable"]


class NodeState:
    """Marker base class for immutable per-processor states.

    Concrete protocols subclass this with ``@dataclass(frozen=True,
    slots=True)``.  The base class provides a convenient ``replace``
    helper mirroring :func:`dataclasses.replace`.
    """

    def replace(self: "S", **changes: Any) -> "S":
        """Return a copy of this state with ``changes`` applied."""
        return dataclasses.replace(self, **changes)  # type: ignore[type-var]


S = TypeVar("S", bound=NodeState)


class Configuration:
    """A global configuration: one :class:`NodeState` per processor.

    The paper's ``γ``.  Immutable, hashable, and indexable by node
    identifier.
    """

    __slots__ = ("_states", "_hash")

    def __init__(self, states: tuple[NodeState, ...] | list[NodeState]) -> None:
        self._states: tuple[NodeState, ...] = tuple(states)
        self._hash: int | None = None

    @property
    def states(self) -> tuple[NodeState, ...]:
        """The per-processor states, indexed by node identifier."""
        return self._states

    def __getitem__(self, node: int) -> NodeState:
        return self._states[node]

    def __iter__(self) -> Iterator[NodeState]:
        return iter(self._states)

    def __len__(self) -> int:
        return len(self._states)

    def replace(self, updates: Mapping[int, NodeState]) -> "Configuration":
        """Return a new configuration with the given node states replaced.

        ``updates`` maps node identifiers to their new states.  Returns
        ``self`` (the same object, not merely an equal one) when
        ``updates`` is empty or every replacement is the node's current
        state object — no-op computation steps allocate nothing, and
        downstream identity checks (``after is before``) keep working.

        Validation and application happen in a single pass; an unknown
        node raises :class:`~repro.errors.ProtocolError` without a
        partially built copy escaping.
        """
        if not updates:
            return self
        states = self._states
        n = len(states)
        copied: list[NodeState] | None = None
        for node, state in updates.items():
            if not 0 <= node < n:
                raise ProtocolError(f"update for unknown node {node}")
            if copied is None:
                if state is states[node]:
                    continue
                copied = list(states)
            copied[node] = state
        if copied is None:
            return self
        return Configuration(tuple(copied))

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Configuration):
            return NotImplemented
        return self._states == other._states

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(self._states)
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(f"{i}:{s!r}" for i, s in enumerate(self._states))
        return f"Configuration({inner})"


class InternTable:
    """Canonicalizing table for :class:`Configuration` objects.

    ``intern`` maps every equal configuration to one representative
    object, so memo keys and visited-set members built from interned
    configurations share storage, their cached hashes are computed once,
    and equality checks between them short-circuit on identity.  The
    table grows with the number of *distinct* configurations seen — the
    same asymptotic footprint as any visited set holding them.
    """

    __slots__ = ("_table", "hits", "misses")

    def __init__(self) -> None:
        self._table: dict[Configuration, Configuration] = {}
        #: Lookups resolved to an already-interned object.
        self.hits = 0
        #: Lookups that inserted a new representative.
        self.misses = 0

    def __len__(self) -> int:
        return len(self._table)

    def intern(self, configuration: Configuration) -> Configuration:
        """Return the canonical object equal to ``configuration``."""
        canonical = self._table.get(configuration)
        if canonical is not None:
            self.hits += 1
            return canonical
        self._table[configuration] = configuration
        self.misses += 1
        return configuration
