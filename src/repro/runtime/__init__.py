"""Execution substrate: the locally shared memory guarded-action model.

This package implements the distributed-system model of Section 2 of the
paper -- networks with locally ordered neighbor sets, per-processor
guarded actions, configurations, weakly fair daemons (synchronous,
central, locally central, distributed, adversarial), the round-based
time measure, and a simulator producing reproducible, traceable
computations.
"""

from repro.runtime.daemons import (
    AdversarialDaemon,
    CentralDaemon,
    Daemon,
    DistributedRandomDaemon,
    LocallyCentralDaemon,
    ReplayDaemon,
    RoundRobinDaemon,
    SynchronousDaemon,
    WeaklyFairDaemon,
)
from repro.runtime.network import Network
from repro.runtime.protocol import Action, Context, Protocol
from repro.runtime.rounds import RoundCounter
from repro.runtime.simulator import Monitor, RunResult, Simulator
from repro.runtime.state import Configuration, NodeState
from repro.runtime.trace import StepRecord, Trace

__all__ = [
    "Action",
    "AdversarialDaemon",
    "CentralDaemon",
    "Configuration",
    "Context",
    "Daemon",
    "DistributedRandomDaemon",
    "LocallyCentralDaemon",
    "Monitor",
    "Network",
    "NodeState",
    "Protocol",
    "ReplayDaemon",
    "RoundCounter",
    "RoundRobinDaemon",
    "RunResult",
    "Simulator",
    "StepRecord",
    "SynchronousDaemon",
    "Trace",
    "WeaklyFairDaemon",
]

from repro.runtime.composition import ComposedProtocol, LayeredState

__all__ += ["ComposedProtocol", "LayeredState"]
