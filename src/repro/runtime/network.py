"""Network topologies for the locally shared memory model.

A :class:`Network` is an undirected, connected graph over processors
``0 .. n-1``.  Each processor ``p`` owns a *locally ordered* neighbor
tuple, the paper's ``Neig_p`` with its total order ``≻_p``; protocols
use this order to break ties deterministically (e.g. the snap PIF picks
``min`` of the ``Potential`` set in local order).

The class is immutable and hashable so that configurations over it can be
memoized by the model checker.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Iterator, Mapping, Sequence

from repro.errors import TopologyError

__all__ = ["Network"]


class Network:
    """An immutable undirected graph with locally ordered neighbor sets.

    Parameters
    ----------
    adjacency:
        Mapping from each node to an iterable of its neighbors.  Nodes
        must be the integers ``0 .. n-1``.  The adjacency must be
        symmetric and free of self loops.
    neighbor_orders:
        Optional mapping from node to an explicit neighbor ordering
        (a permutation of that node's neighbor set).  By default
        neighbors are ordered by ascending identifier.
    name:
        Optional human-readable topology name used in reports.
    require_connected:
        When true (the default), a disconnected graph raises
        :class:`~repro.errors.TopologyError`.  The PIF specification is
        only meaningful on connected networks.
    """

    # ``__weakref__`` lets protocols key their per-network action caches
    # weakly on the Network object (see Protocol.node_actions).
    __slots__ = ("_neighbors", "_name", "_edge_count", "_hash", "__weakref__")

    def __init__(
        self,
        adjacency: Mapping[int, Iterable[int]],
        *,
        neighbor_orders: Mapping[int, Sequence[int]] | None = None,
        name: str = "network",
        require_connected: bool = True,
    ) -> None:
        n = len(adjacency)
        if n == 0:
            raise TopologyError("a network must contain at least one processor")
        if set(adjacency) != set(range(n)):
            raise TopologyError(
                f"nodes must be exactly 0..{n - 1}, got {sorted(adjacency)!r}"
            )

        neighbor_sets = {p: frozenset(qs) for p, qs in adjacency.items()}
        for p, qs in neighbor_sets.items():
            if p in qs:
                raise TopologyError(f"self loop at node {p}")
            for q in qs:
                if q not in neighbor_sets:
                    raise TopologyError(f"node {p} lists unknown neighbor {q}")
                if p not in neighbor_sets[q]:
                    raise TopologyError(
                        f"asymmetric adjacency: {p} lists {q} but not vice versa"
                    )

        ordered: list[tuple[int, ...]] = []
        for p in range(n):
            if neighbor_orders is not None and p in neighbor_orders:
                order = tuple(neighbor_orders[p])
                if set(order) != neighbor_sets[p] or len(order) != len(
                    neighbor_sets[p]
                ):
                    raise TopologyError(
                        f"neighbor order for node {p} is not a permutation of "
                        f"its neighbor set"
                    )
            else:
                order = tuple(sorted(neighbor_sets[p]))
            ordered.append(order)

        self._neighbors: tuple[tuple[int, ...], ...] = tuple(ordered)
        self._name = name
        self._edge_count = sum(len(qs) for qs in ordered) // 2
        self._hash: int | None = None

        if require_connected and not self._is_connected():
            raise TopologyError(f"network {name!r} is not connected")

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of processors (the paper's ``N``)."""
        return len(self._neighbors)

    @property
    def name(self) -> str:
        """Human-readable topology name."""
        return self._name

    @property
    def nodes(self) -> range:
        """The processors, as ``range(n)``."""
        return range(len(self._neighbors))

    @property
    def edge_count(self) -> int:
        """Number of undirected edges."""
        return self._edge_count

    def neighbors(self, p: int) -> tuple[int, ...]:
        """Return ``Neig_p`` in the node's local order."""
        return self._neighbors[p]

    def degree(self, p: int) -> int:
        """Return the degree of node ``p``."""
        return len(self._neighbors[p])

    def has_edge(self, p: int, q: int) -> bool:
        """Return whether ``{p, q}`` is an edge."""
        return q in self._neighbors[p]

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate over undirected edges as ``(p, q)`` with ``p < q``."""
        for p in self.nodes:
            for q in self._neighbors[p]:
                if p < q:
                    yield (p, q)

    # ------------------------------------------------------------------
    # Topology churn (chaos campaigns)
    # ------------------------------------------------------------------
    def with_edge(self, p: int, q: int, *, name: str | None = None) -> "Network":
        """Return a copy of this network with the edge ``{p, q}`` added.

        The two endpoints' local neighbor orders gain the new neighbor at
        its ascending-identifier position; every other node keeps its
        order untouched.  This is the *only* locality an edge flip has in
        the locally-shared-memory model, which is what lets the
        incremental engine treat ``{p, q}`` as the dirty set of the flip.
        """
        if p == q:
            raise TopologyError(f"self loop at node {p}")
        if p not in self.nodes or q not in self.nodes:
            raise TopologyError(f"unknown endpoint in edge ({p}, {q})")
        if self.has_edge(p, q):
            raise TopologyError(f"edge ({p}, {q}) already present")
        return self._with_flipped_edge(
            p, q, add=True, name=name or f"{self._name}+{p}-{q}"
        )

    def without_edge(
        self,
        p: int,
        q: int,
        *,
        name: str | None = None,
        require_connected: bool = True,
    ) -> "Network":
        """Return a copy of this network with the edge ``{p, q}`` removed.

        Raises :class:`~repro.errors.TopologyError` if the edge does not
        exist, or (by default) if removing it would disconnect the
        network — the PIF specification is only meaningful on connected
        graphs, so chaos scenarios never cut bridges.
        """
        if not self.has_edge(p, q):
            raise TopologyError(f"edge ({p}, {q}) not present")
        return self._with_flipped_edge(
            p,
            q,
            add=False,
            name=name or f"{self._name}~{p}-{q}",
            require_connected=require_connected,
        )

    def _with_flipped_edge(
        self,
        p: int,
        q: int,
        *,
        add: bool,
        name: str,
        require_connected: bool = True,
    ) -> "Network":
        orders: dict[int, list[int]] = {}
        for node in self.nodes:
            order = list(self._neighbors[node])
            if node in (p, q):
                other = q if node == p else p
                if add:
                    at = next(
                        (i for i, x in enumerate(order) if x > other), len(order)
                    )
                    order.insert(at, other)
                else:
                    order.remove(other)
            orders[node] = order
        return Network(
            {node: tuple(qs) for node, qs in orders.items()},
            neighbor_orders=orders,
            name=name,
            require_connected=require_connected,
        )

    def changed_nodes(self, other: "Network") -> frozenset[int]:
        """Nodes whose neighbor view differs between ``self`` and ``other``.

        The sound dirty set for swapping ``self`` out for ``other`` under
        the incremental enabled-set engine (a guard at ``p`` reads only
        ``p``'s 1-hop view, so enabledness can flip only on the changed
        nodes and their neighbors).
        """
        if other.n != self.n:
            raise TopologyError(
                f"cannot diff networks of different sizes ({self.n} vs {other.n})"
            )
        return frozenset(
            node
            for node in self.nodes
            if self._neighbors[node] != other._neighbors[node]
        )

    # ------------------------------------------------------------------
    # Graph algorithms used throughout the library
    # ------------------------------------------------------------------
    def _is_connected(self) -> bool:
        seen = {0}
        queue = deque([0])
        while queue:
            p = queue.popleft()
            for q in self._neighbors[p]:
                if q not in seen:
                    seen.add(q)
                    queue.append(q)
        return len(seen) == self.n

    def bfs_levels(self, root: int) -> list[int]:
        """Return BFS distances from ``root`` (``-1`` for unreachable)."""
        if root not in self.nodes:
            raise TopologyError(f"unknown root {root}")
        levels = [-1] * self.n
        levels[root] = 0
        queue = deque([root])
        while queue:
            p = queue.popleft()
            for q in self._neighbors[p]:
                if levels[q] == -1:
                    levels[q] = levels[p] + 1
                    queue.append(q)
        return levels

    def eccentricity(self, p: int) -> int:
        """Return the eccentricity of ``p`` (max BFS distance)."""
        return max(self.bfs_levels(p))

    def diameter(self) -> int:
        """Return the graph diameter (max eccentricity over all nodes)."""
        return max(self.eccentricity(p) for p in self.nodes)

    def radius(self) -> int:
        """Return the graph radius (min eccentricity over all nodes)."""
        return min(self.eccentricity(p) for p in self.nodes)

    def subgraph_is_tree(self) -> bool:
        """Return whether the network itself is a tree."""
        return self._edge_count == self.n - 1

    # ------------------------------------------------------------------
    # Value semantics
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Network):
            return NotImplemented
        return self._neighbors == other._neighbors

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(self._neighbors)
        return self._hash

    def __repr__(self) -> str:
        return f"Network(name={self._name!r}, n={self.n}, edges={self._edge_count})"
