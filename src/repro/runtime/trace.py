"""Execution traces: step records, recording levels and replay support.

A :class:`Trace` is the executable counterpart of the paper's
*computation* ``e = γ_0, γ_1, …``: an initial configuration followed by
one :class:`StepRecord` per computation step.  Traces can be recorded at
three levels of detail:

* ``"selections"`` — only which node executed which action (enough for
  schedule replay and move counting);
* ``"configurations"`` — selections plus every intermediate
  configuration (enough for offline invariant checking);
* ``"none"`` — nothing retained (cheapest; metrics still accumulate).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping, Sequence

from repro.errors import ReproError
from repro.runtime.state import Configuration

__all__ = ["StepRecord", "FaultMark", "Trace", "TRACE_LEVELS", "load_schedule"]

TRACE_LEVELS = ("none", "selections", "configurations")


@dataclass(frozen=True, slots=True)
class StepRecord:
    """One computation step ``γ_i ↦ γ_{i+1}``.

    ``selection`` maps each activated node to the name of the action it
    executed.  ``rounds_completed`` is how many rounds ended with this
    step (0 or 1).  ``after`` is the post-step configuration when the
    trace level retains configurations, else ``None``.
    """

    index: int
    selection: Mapping[int, str]
    rounds_completed: int
    after: Configuration | None = None

    @property
    def moves(self) -> int:
        """Number of individual actions executed in this step."""
        return len(self.selection)


@dataclass(frozen=True, slots=True)
class FaultMark:
    """Annotation that a fault event struck the run between steps.

    ``at_step`` is the step count at the moment the event was applied
    (the event happened after step ``at_step - 1`` and before step
    ``at_step``).  ``kind`` is the event family (``"corrupt"``,
    ``"crash"``, ``"recover"``, ``"remove-link"``, ``"add-link"``,
    ``"swap-daemon"``) and ``detail`` a short human-readable summary.
    """

    at_step: int
    kind: str
    detail: str = ""


@dataclass
class Trace:
    """A recorded computation."""

    initial: Configuration
    level: str = "selections"
    steps: list[StepRecord] = field(default_factory=list)
    #: Fault events applied during the run, in order.  Recorded at every
    #: trace level (marks are tiny and essential for post-mortems).
    marks: list[FaultMark] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.level not in TRACE_LEVELS:
            raise ReproError(
                f"unknown trace level {self.level!r}; expected one of {TRACE_LEVELS}"
            )

    def append(self, record: StepRecord) -> None:
        """Record one step (respecting the trace level)."""
        if self.level == "none":
            return
        if self.level == "selections" and record.after is not None:
            record = StepRecord(
                index=record.index,
                selection=record.selection,
                rounds_completed=record.rounds_completed,
                after=None,
            )
        self.steps.append(record)

    def mark_fault(self, at_step: int, kind: str, detail: str = "") -> None:
        """Record that a fault event was applied at step count ``at_step``."""
        self.marks.append(FaultMark(at_step=at_step, kind=kind, detail=detail))

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self) -> Iterator[StepRecord]:
        return iter(self.steps)

    @property
    def total_moves(self) -> int:
        """Total number of actions executed across all recorded steps."""
        return sum(r.moves for r in self.steps)

    def schedule(self) -> list[dict[int, str]]:
        """Extract the schedule for :class:`~repro.runtime.daemons.ReplayDaemon`."""
        return [dict(r.selection) for r in self.steps]

    def configurations(self) -> list[Configuration]:
        """Return ``[γ_0, γ_1, …]`` (requires level ``"configurations"``)."""
        if self.level != "configurations":
            raise ReproError(
                "configurations were not recorded; use trace level "
                "'configurations'"
            )
        configs = [self.initial]
        configs.extend(r.after for r in self.steps if r.after is not None)
        return configs

    def action_counts(self) -> dict[str, int]:
        """Histogram of executed action names across the trace."""
        counts: dict[str, int] = {}
        for record in self.steps:
            for action_name in record.selection.values():
                counts[action_name] = counts.get(action_name, 0) + 1
        return counts

    def moves_of(self, node: int) -> int:
        """Number of actions executed by ``node`` across the trace."""
        return sum(1 for r in self.steps if node in r.selection)

    # ------------------------------------------------------------------
    # Schedule persistence
    # ------------------------------------------------------------------
    def save_schedule(self, path: str) -> None:
        """Write the schedule as JSON lines (one step per line).

        The saved schedule replays with
        :class:`~repro.runtime.daemons.ReplayDaemon` via
        :func:`load_schedule` — enough to reproduce any recorded
        execution from the same initial configuration.
        """
        import json

        with open(path, "w", encoding="utf-8") as fh:
            for record in self.steps:
                fh.write(
                    json.dumps(
                        {str(p): name for p, name in record.selection.items()}
                    )
                )
                fh.write("\n")


def load_schedule(path: str) -> list[dict[int, str]]:
    """Read a schedule written by :meth:`Trace.save_schedule`."""
    import json

    schedule: list[dict[int, str]] = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            raw = json.loads(line)
            if not isinstance(raw, dict):
                raise ReproError(f"malformed schedule line: {line!r}")
            schedule.append({int(p): str(name) for p, name in raw.items()})
    return schedule
