"""Guarded-action protocol abstraction.

This module implements the paper's computation model: the program of a
processor is a finite set of actions ``<label> :: <guard> --> <statement>``.
A guard is a boolean expression over the processor's own variables and
those of its neighbors; a statement updates the processor's own variables.
Guard evaluation and statement execution are atomic: both read the *same*
configuration ``γ_i`` and the write lands in ``γ_{i+1}``.

A :class:`Protocol` supplies, for every node, an ordered sequence of
:class:`Action` objects (the textual order of the paper's algorithm
listing, which daemons may use as a default priority) plus initial and
random state constructors.  Protocols are stateless with respect to the
simulation: all dynamic information lives in the configuration.
"""

from __future__ import annotations

import weakref
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from random import Random
from typing import Callable, Iterable, Iterator, Sequence

from repro.errors import ProtocolError
from repro.runtime.network import Network
from repro.runtime.state import Configuration, NodeState

__all__ = ["Context", "EvalCache", "Action", "Protocol"]

#: Per-configuration evaluation cache: ``(node, macro-name) -> value``.
#: Valid only for evaluations against a single configuration under a
#: single protocol instance; see :attr:`Context.cache`.
EvalCache = dict


@dataclass(frozen=True, slots=True)
class Context:
    """Read-only view a guard/statement has of the system.

    Matches the locally shared memory model: a processor can read its own
    state and the states of its neighbors, and nothing else.

    ``cache`` is an optional per-configuration memo table shared between
    all contexts of one guard-evaluation pass.  Macros and predicates
    that are re-derived by several guards at the same node (``Sum``,
    ``Potential``, ``Normal``, …) store their results under
    ``(node, name)`` keys; because every cached value is a pure function
    of the configuration, the table stays valid for every evaluation —
    guard or statement — against that same configuration.  ``None``
    (the default) disables memoization.
    """

    node: int
    network: Network
    configuration: Configuration
    cache: EvalCache | None = None

    @property
    def state(self) -> NodeState:
        """The executing processor's own state."""
        return self.configuration[self.node]

    @property
    def neighbors(self) -> tuple[int, ...]:
        """``Neig_p`` in local order."""
        return self.network.neighbors(self.node)

    def neighbor_state(self, q: int) -> NodeState:
        """Read neighbor ``q``'s state.

        Raises :class:`~repro.errors.ProtocolError` if ``q`` is not a
        neighbor — protocols must not read remote state.
        """
        if not self.network.has_edge(self.node, q):
            raise ProtocolError(
                f"node {self.node} tried to read non-neighbor {q}"
            )
        return self.configuration[q]

    def neighbor_states(self) -> Iterator[tuple[int, NodeState]]:
        """Iterate over ``(q, state_q)`` for all neighbors in local order."""
        for q in self.network.neighbors(self.node):
            yield q, self.configuration[q]


@dataclass(frozen=True)
class Action:
    """A guarded action of a processor program.

    ``guard(ctx)`` decides enabledness; ``statement(ctx)`` computes the
    processor's *next* state from the current configuration.  Statements
    are pure: they never mutate the configuration.
    """

    name: str
    guard: Callable[[Context], bool]
    statement: Callable[[Context], NodeState]
    #: Actions tagged as corrections are counted separately in metrics.
    correction: bool = field(default=False)

    def enabled(self, ctx: Context) -> bool:
        """Evaluate the guard on ``ctx``."""
        return bool(self.guard(ctx))

    def execute(self, ctx: Context) -> NodeState:
        """Run the statement, checking the guard first.

        The model executes guard evaluation and statement atomically; a
        daemon scheduling an action whose guard is false is a scheduler
        bug, reported as :class:`~repro.errors.ProtocolError`.
        """
        if not self.guard(ctx):
            raise ProtocolError(
                f"action {self.name!r} executed at node {ctx.node} "
                f"while its guard is false"
            )
        return self.statement(ctx)

    def __repr__(self) -> str:
        return f"Action({self.name!r})"


class Protocol(ABC):
    """A distributed protocol in the guarded-action model.

    Subclasses define the per-node program via :meth:`actions`, a clean
    starting state via :meth:`initial_state`, and (for stabilization
    experiments) an arbitrary-state sampler via :meth:`random_state`.
    """

    #: Short protocol name used in reports.
    name: str = "protocol"

    def __init__(self) -> None:
        # Keyed on the Network object itself (weakly, so transient
        # networks do not leak); keying on ``id(network)`` is unsound
        # because id values are reused after garbage collection.
        self._action_cache: weakref.WeakKeyDictionary[
            Network, dict[int, tuple[Action, ...]]
        ] = weakref.WeakKeyDictionary()

    # ------------------------------------------------------------------
    # Program definition
    # ------------------------------------------------------------------
    @abstractmethod
    def actions(self, node: int, network: Network) -> Sequence[Action]:
        """Return the ordered program (actions) of ``node``."""

    @abstractmethod
    def initial_state(self, node: int, network: Network) -> NodeState:
        """Return the clean starting state of ``node``.

        For the snap PIF this is the *normal starting configuration*
        where every ``Pif_p = C``; stabilizing protocols are correct from
        any state, so this is primarily a convenience for examples and
        complexity measurements.
        """

    def random_state(self, node: int, network: Network, rng: Random) -> NodeState:
        """Sample an arbitrary (possibly corrupt) state of ``node``.

        Used by fault injection and the model checker to realize the
        "starting from any configuration" quantifier.  The default raises
        :class:`NotImplementedError`; protocols meant for stabilization
        experiments override it.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not define random_state"
        )

    def sanitize_state(
        self, node: int, state: NodeState, network: Network
    ) -> NodeState:
        """Coerce ``state`` back into ``node``'s variable domains on ``network``.

        Called when the topology changes under a live run: a variable
        whose domain depends on the neighbor set (e.g. a parent pointer
        ``Par_p ∈ Neig_p``) may be left pointing at a node that is no
        longer a neighbor.  In the shared-memory model such a value is
        simply *arbitrary garbage in the domain of the new topology* —
        exactly the transient-fault semantics snap-stabilization already
        absorbs — so protocols map it to some in-domain value and let
        their corrections handle the rest.  The default returns the
        state unchanged (protocols with topology-independent domains).
        """
        return state

    # ------------------------------------------------------------------
    # Derived helpers (shared by the simulator and the model checker)
    # ------------------------------------------------------------------
    def node_actions(self, node: int, network: Network) -> tuple[Action, ...]:
        """Memoized per-node program."""
        per_network = self._action_cache.get(network)
        if per_network is None:
            per_network = {}
            self._action_cache[network] = per_network
        cached = per_network.get(node)
        if cached is None:
            cached = tuple(self.actions(node, network))
            if not cached:
                raise ProtocolError(f"node {node} has an empty program")
            per_network[node] = cached
        return cached

    def enabled_actions(
        self,
        configuration: Configuration,
        network: Network,
        node: int,
        *,
        cache: EvalCache | None = None,
    ) -> list[Action]:
        """Return the actions of ``node`` whose guards hold in ``configuration``."""
        ctx = Context(node, network, configuration, cache)
        return [a for a in self.node_actions(node, network) if a.enabled(ctx)]

    def enabled_map(
        self,
        configuration: Configuration,
        network: Network,
        *,
        cache: EvalCache | None = None,
    ) -> dict[int, list[Action]]:
        """Return ``{node: enabled actions}`` for all enabled nodes.

        Pass an empty dict as ``cache`` to memoize repeated macro
        evaluations across the pass (and to keep the table for executing
        statements against the same configuration).
        """
        enabled: dict[int, list[Action]] = {}
        for node in network.nodes:
            actions = self.enabled_actions(
                configuration, network, node, cache=cache
            )
            if actions:
                enabled[node] = actions
        return enabled

    def enabled_map_incremental(
        self,
        prev_enabled: dict[int, list[Action]],
        configuration: Configuration,
        network: Network,
        dirty: Iterable[int],
        *,
        cache: EvalCache | None = None,
    ) -> dict[int, list[Action]]:
        """Update ``prev_enabled`` after a step that rewrote the ``dirty`` nodes.

        A guard at ``p`` reads only ``p``'s own state and its neighbors'
        states (the locally shared memory model — :class:`Context`
        enforces it), so when a step changes exactly the states of the
        nodes in ``dirty``, enabledness can flip only on
        ``dirty ∪ N(dirty)``.  Guards are re-evaluated on that region
        only; every other node keeps its previous entry.

        The returned map lists nodes in ascending identifier order —
        byte-identical to a full :meth:`enabled_map` recompute — so
        daemons that iterate or sample the map see the same order under
        either engine and seeded runs stay reproducible.
        """
        affected = set(dirty)
        for p in tuple(affected):
            affected.update(network.neighbors(p))
        if not affected:
            return dict(prev_enabled)

        fresh: dict[int, list[Action] | None] = {
            node: self.enabled_actions(configuration, network, node, cache=cache)
            or None
            for node in affected
        }
        enabled: dict[int, list[Action]] = {}
        for node in network.nodes:
            if node in fresh:
                actions = fresh[node]
                if actions is not None:
                    enabled[node] = actions
            else:
                prev = prev_enabled.get(node)
                if prev is not None:
                    enabled[node] = prev
        return enabled

    def execute_selection(
        self,
        configuration: Configuration,
        network: Network,
        selection: dict[int, Action],
        *,
        cache: EvalCache | None = None,
        next_state: Callable[[int, Action], NodeState] | None = None,
    ) -> tuple[Configuration, set[int]]:
        """Execute one computation step and return ``(after, dirty)``.

        All selected actions read ``configuration`` and their writes land
        simultaneously in the returned successor.  ``dirty`` is the set
        of nodes whose state actually changed — writes with
        ``new == old`` rewrite no variable, so they are excluded, which
        both shrinks the dirty region for
        :meth:`enabled_map_incremental` and lets
        :meth:`Configuration.replace` return ``configuration`` unchanged
        for a fully no-op step.

        ``next_state`` is the memo-aware variant's hook: when given, it
        replaces direct statement execution with a callable
        ``(node, action) -> NodeState`` (e.g. a local-view memo of the
        model checker).  Because statements are pure functions of the
        node's 1-hop view, a memoized lookup must return exactly what
        :meth:`Action.execute` would.
        """
        updates: dict[int, NodeState] = {}
        for p, action in selection.items():
            if next_state is not None:
                state = next_state(p, action)
            else:
                state = action.execute(Context(p, network, configuration, cache))
            if state != configuration[p]:
                updates[p] = state
        return configuration.replace(updates), set(updates)

    def columnar_spec(self):
        """Declare this protocol's guards for the columnar compiler.

        Protocols that support flat-array execution return a
        :class:`~repro.columnar.expr.ColumnarSpec` — a column schema
        plus, per role, the program's guards and statement updates as
        guard-expression IR.  The generic compiler
        (:mod:`repro.columnar.compiler`) turns the spec into scalar
        and vectorized kernels; nothing protocol-specific is written
        by hand.  The default ``None`` means "no columnar form" and
        the engine falls back to the per-node object bridge.
        """
        return None

    def compile_columnar(self, network: Network, backend: str):
        """Compile this protocol into a columnar kernel for ``network``.

        The columnar engine calls this once per ``(protocol, network)``
        pair with a resolved backend name (``"pure"`` or ``"numpy"``).
        The default builds a :class:`~repro.columnar.compiler.
        CompiledSpecKernel` from :meth:`columnar_spec`, or returns
        ``None`` (→ object-bridge fallback) for protocols without a
        spec.  Protocols with hand-written kernels may still override
        this hook directly.
        """
        spec_fn = getattr(self, "columnar_spec", None)
        spec = spec_fn() if callable(spec_fn) else None
        if spec is None:
            return None
        from repro.columnar.compiler import CompiledSpecKernel

        return CompiledSpecKernel(self, network, backend, spec)

    def is_enabled(
        self, configuration: Configuration, network: Network, node: int
    ) -> bool:
        """Return whether ``node`` has at least one enabled action."""
        ctx = Context(node, network, configuration)
        return any(a.enabled(ctx) for a in self.node_actions(node, network))

    def initial_configuration(self, network: Network) -> Configuration:
        """Build the clean starting configuration."""
        return Configuration(
            tuple(self.initial_state(p, network) for p in network.nodes)
        )

    def random_configuration(self, network: Network, rng: Random) -> Configuration:
        """Sample an arbitrary configuration (for stabilization runs)."""
        return Configuration(
            tuple(self.random_state(p, network, rng) for p in network.nodes)
        )
