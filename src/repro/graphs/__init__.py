"""Topology library: generators, graph metrics and chordless paths."""

from repro.graphs.chordless import (
    is_chordless_path,
    is_path,
    longest_chordless_path,
    longest_chordless_path_from,
)
from repro.graphs.metrics import GraphMetrics, compute_metrics, default_l_max
from repro.graphs.topologies import (
    TOPOLOGY_FAMILIES,
    balanced_tree,
    by_name,
    caterpillar,
    complete,
    grid,
    hypercube,
    line,
    lollipop,
    petersen,
    random_connected,
    random_tree,
    ring,
    star,
    torus,
    wheel,
)

__all__ = [
    "GraphMetrics",
    "TOPOLOGY_FAMILIES",
    "balanced_tree",
    "by_name",
    "caterpillar",
    "complete",
    "compute_metrics",
    "default_l_max",
    "grid",
    "hypercube",
    "is_chordless_path",
    "is_path",
    "line",
    "lollipop",
    "longest_chordless_path",
    "longest_chordless_path_from",
    "petersen",
    "random_connected",
    "random_tree",
    "ring",
    "star",
    "torus",
    "wheel",
]

from repro.graphs.io import from_edges, to_dot

__all__ += ["from_edges", "to_dot"]
