"""Graph metrics used by the complexity experiments.

Collects, for a network and a root, every quantity appearing in the
paper's bounds: ``N``, ``L_max``, the diameter, the root's eccentricity
(a lower bound on any broadcast tree height), and the longest chordless
path length (the upper bound on the height ``h`` of the tree the snap
PIF builds — Theorem 4).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graphs.chordless import longest_chordless_path_from
from repro.runtime.network import Network

__all__ = ["GraphMetrics", "compute_metrics", "default_l_max"]


def default_l_max(network: Network) -> int:
    """The canonical ``L_max`` input: ``N - 1`` (the paper requires ``≥ N-1``)."""
    return max(1, network.n - 1)


@dataclass(frozen=True, slots=True)
class GraphMetrics:
    """Bound-relevant facts about a rooted network."""

    name: str
    n: int
    edges: int
    root: int
    diameter: int
    root_eccentricity: int
    #: Length (edge count) of the longest chordless path starting at the
    #: root — the paper's upper bound on the built tree height ``h``.
    longest_chordless_from_root: int
    l_max: int

    @property
    def height_bounds(self) -> tuple[int, int]:
        """``(lower, upper)`` bounds on the built tree height ``h``.

        The broadcast tree must reach the farthest node, so
        ``h ≥ ecc(r)``; Theorem 4 shows parent paths are chordless, so
        ``h ≤ longest chordless path from r``.
        """
        return (self.root_eccentricity, self.longest_chordless_from_root)


def compute_metrics(
    network: Network,
    root: int = 0,
    *,
    l_max: int | None = None,
    chordless_budget: int = 2_000_000,
) -> GraphMetrics:
    """Compute the metrics bundle for a rooted network.

    ``chordless_budget`` caps the exact chordless-path search; on
    exhaustion the reported value is a lower bound (see
    :mod:`repro.graphs.chordless`).
    """
    path = longest_chordless_path_from(
        network, root, max_work=chordless_budget, strict=False
    )
    return GraphMetrics(
        name=network.name,
        n=network.n,
        edges=network.edge_count,
        root=root,
        diameter=network.diameter(),
        root_eccentricity=network.eccentricity(root),
        longest_chordless_from_root=len(path) - 1,
        l_max=l_max if l_max is not None else default_l_max(network),
    )
