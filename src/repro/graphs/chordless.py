"""Chordless (induced) path machinery.

Theorem 4 bounds the height ``h`` of the tree built by the snap PIF by
the length of the longest *elementary chordless path* in the network: a
simple path ``p_0, …, p_k`` such that ``p_i`` and ``p_j`` are adjacent
iff ``j = i + 1``.  The algorithm's minimum-level parent choice
(``Potential_p``) guarantees every parent path is chordless, which is
what keeps ``h`` small on dense graphs (e.g. ``h = 1`` on ``K_n``).

Finding the longest chordless (induced) path is NP-hard in general, so
this module offers an exact branch-and-bound search with a work budget,
suitable for the experiment sizes used here, plus cheap verification
helpers used as runtime assertions on parent paths.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import ReproError, TopologyError
from repro.runtime.network import Network

__all__ = [
    "is_path",
    "is_chordless_path",
    "longest_chordless_path_from",
    "longest_chordless_path",
]


def is_path(network: Network, path: Sequence[int]) -> bool:
    """Return whether ``path`` is an elementary path of the network."""
    if len(path) != len(set(path)):
        return False
    return all(
        network.has_edge(path[i], path[i + 1]) for i in range(len(path) - 1)
    )


def is_chordless_path(network: Network, path: Sequence[int]) -> bool:
    """Return whether ``path`` is an elementary *chordless* path.

    Nodes ``path[i]`` and ``path[j]`` must be adjacent iff ``j = i+1``
    (Definition in the proof of Theorem 4).
    """
    if not is_path(network, path):
        return False
    for i in range(len(path)):
        for j in range(i + 2, len(path)):
            if network.has_edge(path[i], path[j]):
                return False
    return True


def _extend(
    network: Network,
    path: list[int],
    forbidden: set[int],
    best: list[int],
    budget: list[int],
) -> None:
    """DFS over chordless extensions of ``path``.

    ``forbidden`` is the set of nodes on the path or adjacent to an
    *interior* prefix of it — extending into them would create a chord or
    a repeat.  ``budget`` is a single-element work counter.
    """
    if budget[0] <= 0:
        return
    budget[0] -= 1
    if len(path) > len(best):
        best[:] = path
    tip = path[-1]
    for q in network.neighbors(tip):
        if q in forbidden:
            continue
        # Appending q keeps the path chordless because q is not adjacent
        # to any node before the tip (those are all in `forbidden`).
        newly_forbidden = [
            u for u in (q, *network.neighbors(tip)) if u not in forbidden
        ]
        forbidden.update(newly_forbidden)
        path.append(q)
        _extend(network, path, forbidden, best, budget)
        path.pop()
        forbidden.difference_update(newly_forbidden)


def longest_chordless_path_from(
    network: Network, start: int, *, max_work: int = 2_000_000, strict: bool = True
) -> list[int]:
    """Longest chordless path starting at ``start``.

    Returns the node sequence; its *length* (edge count) is
    ``len(result) - 1``.  The search is exact unless the work budget is
    exhausted; in that case ``strict=True`` (the default) raises
    :class:`~repro.errors.ReproError`, while ``strict=False`` returns the
    best path found so far (a valid lower bound).
    """
    if start not in network.nodes:
        raise TopologyError(f"unknown start node {start}")
    best: list[int] = [start]
    budget = [max_work]
    # Forbid the start itself; its neighbors remain extendable (the first
    # edge cannot create a chord).
    _extend(network, [start], {start}, best, budget)
    if budget[0] <= 0 and strict:
        raise ReproError(
            "chordless path search budget exhausted; increase max_work, "
            "pass strict=False, or use a smaller network"
        )
    return best


def longest_chordless_path(
    network: Network,
    *,
    starts: Iterable[int] | None = None,
    max_work: int = 2_000_000,
    strict: bool = True,
) -> list[int]:
    """Longest chordless path over the given start nodes (default: all).

    See :func:`longest_chordless_path_from` for the ``strict`` semantics.
    """
    best: list[int] = []
    for start in starts if starts is not None else network.nodes:
        candidate = longest_chordless_path_from(
            network, start, max_work=max_work, strict=strict
        )
        if len(candidate) > len(best):
            best = candidate
    return best
