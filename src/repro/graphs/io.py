"""Topology I/O helpers: edge-list construction and DOT export.

Conveniences for users bringing their own topologies: build a
:class:`~repro.runtime.network.Network` from an edge list, and export a
network — optionally annotated with a PIF configuration — to Graphviz
DOT for visualization.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.state import Phase, PifState
from repro.errors import TopologyError
from repro.runtime.network import Network
from repro.runtime.state import Configuration

__all__ = ["from_edges", "to_dot"]


def from_edges(
    edges: Iterable[tuple[int, int]],
    *,
    n: int | None = None,
    name: str = "custom",
    require_connected: bool = True,
) -> Network:
    """Build a network from an undirected edge list.

    Nodes are ``0 .. n-1``; ``n`` defaults to ``max node + 1``.  Isolated
    nodes can be included by passing ``n`` explicitly (only meaningful
    with ``require_connected=False``).
    """
    edge_list = [(int(p), int(q)) for p, q in edges]
    if not edge_list and n is None:
        raise TopologyError("empty edge list needs an explicit n")
    highest = max((max(p, q) for p, q in edge_list), default=-1)
    size = n if n is not None else highest + 1
    if highest >= size:
        raise TopologyError(
            f"edge references node {highest} but n={size}"
        )
    adjacency: dict[int, set[int]] = {p: set() for p in range(size)}
    for p, q in edge_list:
        if p == q:
            raise TopologyError(f"self loop at {p}")
        adjacency[p].add(q)
        adjacency[q].add(p)
    return Network(
        {p: sorted(qs) for p, qs in adjacency.items()},
        name=name,
        require_connected=require_connected,
    )


_PHASE_COLORS = {
    Phase.B: "lightblue",
    Phase.F: "lightgreen",
    Phase.C: "white",
}


def to_dot(
    network: Network,
    configuration: Configuration | None = None,
    *,
    root: int = 0,
) -> str:
    """Render the network (optionally a PIF configuration over it) as DOT.

    With a configuration, nodes are colored by phase, labeled with their
    variables, and tree edges (parent pointers of active processors) are
    drawn directed and bold.
    """
    lines = ["graph pif {", "  node [style=filled];"]
    tree_edges: set[tuple[int, int]] = set()

    for p in network.nodes:
        attrs = []
        if configuration is not None:
            state = configuration[p]
            if isinstance(state, PifState):
                attrs.append(f'fillcolor="{_PHASE_COLORS[state.pif]}"')
                attrs.append(f'label="{p}\\n{state.brief()}"')
                if state.pif is not Phase.C and state.par is not None:
                    tree_edges.add((p, state.par))
        else:
            attrs.append('fillcolor="white"')
        if p == root:
            attrs.append("penwidth=2")
        lines.append(f"  {p} [{', '.join(attrs)}];")

    for p, q in network.edges():
        if (p, q) in tree_edges or (q, p) in tree_edges:
            child, parent = (p, q) if (p, q) in tree_edges else (q, p)
            lines.append(
                f"  {child} -- {parent} [penwidth=2, dir=forward];"
            )
        else:
            lines.append(f"  {p} -- {q} [color=gray];")
    lines.append("}")
    return "\n".join(lines)
