"""Topology generators.

All generators return a :class:`~repro.runtime.network.Network` over
nodes ``0 .. n-1`` with node ``0`` conventionally used as the PIF root.
Randomized generators take an explicit ``seed`` so every experiment is
reproducible.

The catalogue covers the regimes the paper's bounds distinguish:

* *deep* topologies (line, ring, caterpillar, lollipop) where
  ``h ≈ L_max`` stresses the round bounds;
* *shallow* topologies (star, complete, wheel) where the tree height is
  constant;
* *intermediate* ones (grids, tori, hypercubes, random graphs, random
  trees) for the scalability sweeps.
"""

from __future__ import annotations

from random import Random
from typing import Callable, Mapping

from repro.errors import TopologyError
from repro.runtime.network import Network

__all__ = [
    "line",
    "ring",
    "star",
    "complete",
    "grid",
    "torus",
    "hypercube",
    "balanced_tree",
    "random_tree",
    "caterpillar",
    "lollipop",
    "wheel",
    "petersen",
    "random_connected",
    "TOPOLOGY_FAMILIES",
    "by_name",
]


def _network(adj: dict[int, set[int]], name: str) -> Network:
    return Network({p: sorted(qs) for p, qs in adj.items()}, name=name)


def _empty(n: int, what: str) -> dict[int, set[int]]:
    if n < 1:
        raise TopologyError(f"{what} needs at least 1 node, got {n}")
    return {p: set() for p in range(n)}


def _add_edge(adj: dict[int, set[int]], p: int, q: int) -> None:
    if p == q:
        raise TopologyError(f"self loop at {p}")
    adj[p].add(q)
    adj[q].add(p)


def line(n: int) -> Network:
    """A path ``0 - 1 - … - n-1`` (diameter ``n-1``, the deepest topology)."""
    adj = _empty(n, "line")
    for p in range(n - 1):
        _add_edge(adj, p, p + 1)
    return _network(adj, f"line-{n}")


def ring(n: int) -> Network:
    """A cycle on ``n ≥ 3`` nodes."""
    if n < 3:
        raise TopologyError(f"ring needs at least 3 nodes, got {n}")
    adj = _empty(n, "ring")
    for p in range(n):
        _add_edge(adj, p, (p + 1) % n)
    return _network(adj, f"ring-{n}")


def star(n: int) -> Network:
    """A star with center ``0`` and ``n-1`` leaves."""
    if n < 2:
        raise TopologyError(f"star needs at least 2 nodes, got {n}")
    adj = _empty(n, "star")
    for p in range(1, n):
        _add_edge(adj, 0, p)
    return _network(adj, f"star-{n}")


def complete(n: int) -> Network:
    """The complete graph ``K_n``."""
    if n < 2:
        raise TopologyError(f"complete graph needs at least 2 nodes, got {n}")
    adj = _empty(n, "complete")
    for p in range(n):
        for q in range(p + 1, n):
            _add_edge(adj, p, q)
    return _network(adj, f"complete-{n}")


def grid(rows: int, cols: int) -> Network:
    """A ``rows × cols`` 2-D mesh."""
    if rows < 1 or cols < 1 or rows * cols < 2:
        raise TopologyError(f"grid {rows}x{cols} is too small")
    adj = _empty(rows * cols, "grid")
    for r in range(rows):
        for c in range(cols):
            p = r * cols + c
            if c + 1 < cols:
                _add_edge(adj, p, p + 1)
            if r + 1 < rows:
                _add_edge(adj, p, p + cols)
    return _network(adj, f"grid-{rows}x{cols}")


def torus(rows: int, cols: int) -> Network:
    """A ``rows × cols`` 2-D torus (wrap-around mesh); needs ``rows, cols ≥ 3``."""
    if rows < 3 or cols < 3:
        raise TopologyError(f"torus needs rows, cols >= 3, got {rows}x{cols}")
    adj = _empty(rows * cols, "torus")
    for r in range(rows):
        for c in range(cols):
            p = r * cols + c
            _add_edge(adj, p, r * cols + (c + 1) % cols)
            _add_edge(adj, p, ((r + 1) % rows) * cols + c)
    return _network(adj, f"torus-{rows}x{cols}")


def hypercube(dimension: int) -> Network:
    """The ``d``-dimensional hypercube on ``2^d`` nodes."""
    if dimension < 1:
        raise TopologyError(f"hypercube dimension must be >= 1, got {dimension}")
    n = 1 << dimension
    adj = _empty(n, "hypercube")
    for p in range(n):
        for bit in range(dimension):
            q = p ^ (1 << bit)
            if p < q:
                _add_edge(adj, p, q)
    return _network(adj, f"hypercube-{dimension}")


def balanced_tree(branching: int, height: int) -> Network:
    """A complete ``branching``-ary tree of the given height, rooted at 0."""
    if branching < 1 or height < 1:
        raise TopologyError(
            f"balanced tree needs branching, height >= 1, got "
            f"{branching}, {height}"
        )
    nodes = [0]
    adj: dict[int, set[int]] = {0: set()}
    frontier = [0]
    next_id = 1
    for _level in range(height):
        new_frontier = []
        for parent in frontier:
            for _child in range(branching):
                child = next_id
                next_id += 1
                adj[child] = set()
                _add_edge(adj, parent, child)
                new_frontier.append(child)
                nodes.append(child)
        frontier = new_frontier
    return _network(adj, f"tree-{branching}ary-h{height}")


def random_tree(n: int, seed: int = 0) -> Network:
    """A uniform random recursive tree: node ``i`` attaches to a random ``j < i``."""
    if n < 2:
        raise TopologyError(f"random tree needs at least 2 nodes, got {n}")
    rng = Random(seed)
    adj = _empty(n, "random tree")
    for p in range(1, n):
        _add_edge(adj, p, rng.randrange(p))
    return _network(adj, f"rtree-{n}-s{seed}")


def caterpillar(spine: int, legs_per_node: int = 1) -> Network:
    """A caterpillar: a spine path with ``legs_per_node`` leaves per spine node."""
    if spine < 2 or legs_per_node < 0:
        raise TopologyError(
            f"caterpillar needs spine >= 2, legs >= 0, got {spine}, {legs_per_node}"
        )
    n = spine * (1 + legs_per_node)
    adj = _empty(n, "caterpillar")
    for p in range(spine - 1):
        _add_edge(adj, p, p + 1)
    next_id = spine
    for p in range(spine):
        for _leg in range(legs_per_node):
            _add_edge(adj, p, next_id)
            next_id += 1
    return _network(adj, f"caterpillar-{spine}x{legs_per_node}")


def lollipop(clique: int, tail: int) -> Network:
    """A ``K_clique`` with a path of ``tail`` nodes attached (deep + dense)."""
    if clique < 2 or tail < 1:
        raise TopologyError(
            f"lollipop needs clique >= 2, tail >= 1, got {clique}, {tail}"
        )
    n = clique + tail
    adj = _empty(n, "lollipop")
    for p in range(clique):
        for q in range(p + 1, clique):
            _add_edge(adj, p, q)
    _add_edge(adj, clique - 1, clique)
    for p in range(clique, n - 1):
        _add_edge(adj, p, p + 1)
    return _network(adj, f"lollipop-{clique}+{tail}")


def wheel(n: int) -> Network:
    """A wheel: a hub (node 0) connected to every node of an ``(n-1)``-ring."""
    if n < 4:
        raise TopologyError(f"wheel needs at least 4 nodes, got {n}")
    adj = _empty(n, "wheel")
    rim = list(range(1, n))
    for i, p in enumerate(rim):
        _add_edge(adj, p, rim[(i + 1) % len(rim)])
        _add_edge(adj, 0, p)
    return _network(adj, f"wheel-{n}")


def petersen() -> Network:
    """The Petersen graph (10 nodes, 3-regular, girth 5)."""
    adj = _empty(10, "petersen")
    for p in range(5):
        _add_edge(adj, p, (p + 1) % 5)  # outer pentagon
        _add_edge(adj, 5 + p, 5 + (p + 2) % 5)  # inner pentagram
        _add_edge(adj, p, 5 + p)  # spokes
    return _network(adj, "petersen")


def random_connected(n: int, extra_edge_probability: float = 0.15, seed: int = 0) -> Network:
    """A random connected graph: a random spanning tree plus extra edges.

    Every non-tree pair is added independently with
    ``extra_edge_probability``, so density interpolates between a tree
    (``0.0``) and the complete graph (``1.0``).
    """
    if n < 2:
        raise TopologyError(f"random graph needs at least 2 nodes, got {n}")
    if not 0.0 <= extra_edge_probability <= 1.0:
        raise TopologyError(
            f"edge probability must be in [0, 1], got {extra_edge_probability}"
        )
    rng = Random(seed)
    adj = _empty(n, "random connected")
    order = list(range(n))
    rng.shuffle(order)
    for i in range(1, n):
        _add_edge(adj, order[i], order[rng.randrange(i)])
    for p in range(n):
        for q in range(p + 1, n):
            if q not in adj[p] and rng.random() < extra_edge_probability:
                _add_edge(adj, p, q)
    return _network(adj, f"random-{n}-p{extra_edge_probability}-s{seed}")


#: Named topology families used by the experiment grids: each entry maps a
#: family name to a callable ``size -> Network``.
TOPOLOGY_FAMILIES: Mapping[str, Callable[[int], Network]] = {
    "line": line,
    "ring": ring,
    "star": star,
    "complete": complete,
    "grid": lambda n: grid(max(2, round(n**0.5)), max(2, round(n**0.5))),
    "hypercube": lambda n: hypercube(max(1, (n - 1).bit_length())),
    "random-tree": lambda n: random_tree(n, seed=n),
    "random-sparse": lambda n: random_connected(n, 0.05, seed=n),
    "random-dense": lambda n: random_connected(n, 0.3, seed=n),
    "caterpillar": lambda n: caterpillar(max(2, n // 2), 1),
    "lollipop": lambda n: lollipop(max(2, n // 2), max(1, n - n // 2)),
}


def by_name(family: str, size: int) -> Network:
    """Instantiate a named topology family at roughly the given size."""
    try:
        factory = TOPOLOGY_FAMILIES[family]
    except KeyError:
        raise TopologyError(
            f"unknown topology family {family!r}; known: "
            f"{sorted(TOPOLOGY_FAMILIES)}"
        ) from None
    return factory(size)
