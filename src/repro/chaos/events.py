"""Declarative mid-run fault events.

A :class:`FaultEvent` is one adversarial act against a live
:class:`~repro.runtime.simulator.Simulator`: memory corruption, a
processor crash or recovery, a link flip, or a scheduler change.  Events
are immutable, JSON-round-trippable values scheduled at a step count
(``at_step``) and resolved *deterministically* — every random choice an
event makes (which nodes to corrupt, which edge to cut) is drawn from a
``Random`` seeded by the event's own ``seed`` field, so replaying the
same event against the same runtime state reproduces the same act
bit-for-bit.

:meth:`FaultEvent.apply` hits a simulator and returns
``(resolved, followups)``:

* ``resolved`` — the event as actually applied (random targets pinned to
  explicit ones where that keeps replay deterministic), suitable for the
  campaign *tape*; ``None`` when the event was a no-op (e.g. a link
  removal that found only bridges) and should not be recorded;
* ``followups`` — events the application itself schedules (a
  :class:`CrashNodes` with a ``duration`` plants its own
  :class:`RecoverNodes`).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from random import Random
from typing import TYPE_CHECKING, ClassVar, Mapping

from repro.errors import ReproError, TopologyError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.simulator import Simulator

__all__ = [
    "FaultEvent",
    "CorruptNodes",
    "CrashNodes",
    "RecoverNodes",
    "RemoveLink",
    "AddLink",
    "SwapDaemon",
    "SuppressGuards",
    "ReleaseGuards",
    "ByzantineNode",
    "DropMessage",
    "DuplicateMessage",
    "ReorderWindow",
    "DelayLink",
    "EVENT_KINDS",
    "event_from_dict",
]

#: ``kind`` string -> event class, for deserialization.
EVENT_KINDS: dict[str, type["FaultEvent"]] = {}


def _register(cls: type["FaultEvent"]) -> type["FaultEvent"]:
    EVENT_KINDS[cls.kind] = cls
    return cls


@dataclass(frozen=True)
class FaultEvent:
    """Base class: a scheduled, seeded, serializable fault.

    ``at_step`` is the step count at (or after) which the event fires;
    ``seed`` pins the event's own random choices (``None`` means "to be
    assigned by :meth:`FaultScenario.seeded` before the run").
    """

    kind: ClassVar[str] = "fault"
    #: True for the link-fault family, which needs a simulator with
    #: channels (:class:`~repro.messaging.MessageSimulator`) and cannot
    #: be mirrored into a shared-memory run.
    link_fault: ClassVar[bool] = False

    at_step: int = 0
    seed: int | None = None

    # ------------------------------------------------------------------
    # Composition helpers
    # ------------------------------------------------------------------
    def shift(self, delta: int) -> "FaultEvent":
        """Return a copy scheduled ``delta`` steps later."""
        return dataclasses.replace(self, at_step=self.at_step + delta)

    def seeded(self, seed: int) -> "FaultEvent":
        """Pin the event's RNG seed (no-op if already pinned)."""
        if self.seed is not None:
            return self
        return dataclasses.replace(self, seed=seed)

    def _rng(self) -> Random:
        return Random(0 if self.seed is None else self.seed)

    # ------------------------------------------------------------------
    # Application
    # ------------------------------------------------------------------
    def apply(
        self, sim: "Simulator"
    ) -> tuple["FaultEvent | None", tuple["FaultEvent", ...]]:
        """Apply to a live simulator; see the module docstring."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready payload (``kind`` plus the non-``None`` fields)."""
        payload: dict = {"kind": self.kind}
        for f in dataclasses.fields(self):
            value = getattr(self, f.name)
            if value is None:
                continue
            payload[f.name] = list(value) if isinstance(value, tuple) else value
        return payload


def event_from_dict(payload: Mapping) -> FaultEvent:
    """Rebuild an event from :meth:`FaultEvent.to_dict` output."""
    data = dict(payload)
    kind = data.pop("kind", None)
    cls = EVENT_KINDS.get(kind)
    if cls is None:
        raise ReproError(
            f"unknown fault event kind {kind!r}; known: {sorted(EVENT_KINDS)}"
        )
    valid = {f.name for f in dataclasses.fields(cls)}
    kwargs = {}
    for key, value in data.items():
        if key not in valid:
            raise ReproError(f"unknown field {key!r} for event kind {kind!r}")
        kwargs[key] = tuple(value) if isinstance(value, list) else value
    return cls(**kwargs)


@_register
@dataclass(frozen=True)
class CorruptNodes(FaultEvent):
    """Overwrite processor memories with random in-domain garbage.

    ``mode="random"`` (the default) redraws each victim's state via the
    protocol's ``random_state``; victims are ``nodes`` when given, else
    each node independently with probability ``fraction`` (at least
    one).  Any other mode name is delegated to
    :class:`~repro.analysis.faults.FaultInjector` (``uniform``,
    ``fake_wave``, ``stale_feedback``, …) and replaces the *whole*
    configuration.

    The resolved tape event is the event itself: replaying it re-derives
    the same victims and the same garbage from ``seed``.
    """

    kind: ClassVar[str] = "corrupt"

    mode: str = "random"
    fraction: float = 0.35
    nodes: tuple[int, ...] | None = None

    def apply(
        self, sim: "Simulator"
    ) -> tuple["FaultEvent | None", tuple["FaultEvent", ...]]:
        rng = self._rng()
        if self.mode == "random":
            if self.nodes is not None:
                victims = [p for p in self.nodes if p in sim.network.nodes]
            else:
                victims = [
                    p
                    for p in sim.network.nodes
                    if rng.random() < self.fraction
                ]
                if not victims:
                    victims = [rng.choice(list(sim.network.nodes))]
            updates = {
                p: sim.protocol.random_state(p, sim.network, rng)
                for p in sorted(victims)
            }
            changed = sim.perturb_configuration(updates)
            if not changed:
                return None, ()
            return self, ()
        injector = self._injector(sim)
        sim.reset_configuration(injector.generate(self.mode, rng.randrange(1 << 30)))
        return self, ()

    @staticmethod
    def _injector(sim: "Simulator"):
        from repro.analysis.faults import FaultInjector

        constants = getattr(sim.protocol, "constants", None)
        if constants is None:
            raise ReproError(
                "whole-configuration fault modes require a protocol with "
                "PIF constants; use mode='random'"
            )
        return FaultInjector(sim.protocol, sim.network, constants)


@_register
@dataclass(frozen=True)
class CrashNodes(FaultEvent):
    """Crash processors (fail-stop; memory stays readable by neighbors).

    Victims are ``nodes`` when given, else ``count`` nodes sampled from
    the currently alive ones.  With a ``duration``, the event plants a
    :class:`RecoverNodes` follow-up ``duration`` steps after the crash;
    the resolved tape event pins the victims and drops the duration (the
    recovery lands on the tape as its own entry when it fires).
    """

    kind: ClassVar[str] = "crash"

    nodes: tuple[int, ...] | None = None
    count: int = 1
    duration: int | None = None

    def apply(
        self, sim: "Simulator"
    ) -> tuple["FaultEvent | None", tuple["FaultEvent", ...]]:
        if self.nodes is not None:
            victims = frozenset(self.nodes)
        else:
            rng = self._rng()
            alive = sorted(set(sim.network.nodes) - sim.crashed)
            if not alive:
                return None, ()
            victims = frozenset(rng.sample(alive, min(self.count, len(alive))))
        newly = sim.crash(victims)
        if not newly:
            return None, ()
        followups: tuple[FaultEvent, ...] = ()
        if self.duration is not None:
            followups = (
                RecoverNodes(
                    at_step=sim.steps + self.duration,
                    nodes=tuple(sorted(newly)),
                ),
            )
        resolved = dataclasses.replace(
            self, nodes=tuple(sorted(newly)), duration=None
        )
        return resolved, followups


@_register
@dataclass(frozen=True)
class RecoverNodes(FaultEvent):
    """Recover crashed processors (all currently crashed when ``nodes`` is None)."""

    kind: ClassVar[str] = "recover"

    nodes: tuple[int, ...] | None = None

    def apply(
        self, sim: "Simulator"
    ) -> tuple["FaultEvent | None", tuple["FaultEvent", ...]]:
        back = sim.recover(self.nodes)
        if not back:
            return None, ()
        return dataclasses.replace(self, nodes=tuple(sorted(back))), ()


@_register
@dataclass(frozen=True)
class RemoveLink(FaultEvent):
    """Cut one link, never disconnecting the network.

    With explicit endpoints the cut is attempted literally (skipped when
    the edge is absent or a bridge).  Otherwise the event walks the
    current edges in seeded-random order and cuts the first non-bridge;
    the resolved tape event pins the chosen endpoints.
    """

    kind: ClassVar[str] = "remove-link"

    u: int | None = None
    v: int | None = None

    def apply(
        self, sim: "Simulator"
    ) -> tuple["FaultEvent | None", tuple["FaultEvent", ...]]:
        net = sim.network
        if self.u is not None and self.v is not None:
            candidates = [(self.u, self.v)]
        else:
            rng = self._rng()
            candidates = sorted(net.edges())
            rng.shuffle(candidates)
        for a, b in candidates:
            if not net.has_edge(a, b):
                continue
            try:
                successor = net.without_edge(a, b)
            except TopologyError:
                continue  # removing (a, b) would disconnect the network
            sim.apply_topology(successor)
            return dataclasses.replace(self, u=a, v=b), ()
        return None, ()


@_register
@dataclass(frozen=True)
class AddLink(FaultEvent):
    """Add one link between currently non-adjacent processors.

    With explicit endpoints the addition is attempted literally (skipped
    when the edge already exists).  Otherwise a seeded-random non-edge
    is chosen; the resolved tape event pins the endpoints.
    """

    kind: ClassVar[str] = "add-link"

    u: int | None = None
    v: int | None = None

    def apply(
        self, sim: "Simulator"
    ) -> tuple["FaultEvent | None", tuple["FaultEvent", ...]]:
        net = sim.network
        if self.u is not None and self.v is not None:
            candidates = [(self.u, self.v)]
        else:
            rng = self._rng()
            candidates = sorted(
                (p, q)
                for p in net.nodes
                for q in net.nodes
                if p < q and not net.has_edge(p, q)
            )
            rng.shuffle(candidates)
        for a, b in candidates:
            if a == b or net.has_edge(a, b):
                continue
            sim.apply_topology(net.with_edge(a, b))
            return dataclasses.replace(self, u=a, v=b), ()
        return None, ()


@_register
@dataclass(frozen=True)
class SwapDaemon(FaultEvent):
    """Swap the scheduler mid-run (the adversary changes strategy).

    ``daemon`` names an entry of
    :data:`repro.chaos.campaign.DAEMON_FACTORIES`.  During tape replay
    this event is a no-op — the replayed schedule already encodes every
    selection the new daemon made.
    """

    kind: ClassVar[str] = "swap-daemon"

    daemon: str = "synchronous"

    def apply(
        self, sim: "Simulator"
    ) -> tuple["FaultEvent | None", tuple["FaultEvent", ...]]:
        from repro.chaos.campaign import make_daemon

        sim.swap_daemon(make_daemon(self.daemon))
        return self, ()


@_register
@dataclass(frozen=True)
class SuppressGuards(FaultEvent):
    """Suppress processors' moves — the shared-memory loss analogue.

    A lossy link in the message model makes a processor's writes fail
    to reach its neighbors; the closest shared-memory rendition is a
    processor whose enabled guards are never granted (its memory stays
    readable, it just cannot act).  Mirrors :class:`CrashNodes`'s
    surface: victims are ``nodes`` when given, else ``count`` sampled
    from the currently unsuppressed ones; with a ``duration`` the event
    plants a :class:`ReleaseGuards` follow-up.
    """

    kind: ClassVar[str] = "suppress-guards"

    nodes: tuple[int, ...] | None = None
    count: int = 1
    duration: int | None = None

    def apply(
        self, sim: "Simulator"
    ) -> tuple["FaultEvent | None", tuple["FaultEvent", ...]]:
        if self.nodes is not None:
            victims = frozenset(self.nodes)
        else:
            rng = self._rng()
            candidates = sorted(
                set(sim.network.nodes) - sim.suppressed - sim.crashed
            )
            if not candidates:
                return None, ()
            victims = frozenset(
                rng.sample(candidates, min(self.count, len(candidates)))
            )
        newly = sim.suppress(victims)
        if not newly:
            return None, ()
        followups: tuple[FaultEvent, ...] = ()
        if self.duration is not None:
            followups = (
                ReleaseGuards(
                    at_step=sim.steps + self.duration,
                    nodes=tuple(sorted(newly)),
                ),
            )
        resolved = dataclasses.replace(
            self, nodes=tuple(sorted(newly)), duration=None
        )
        return resolved, followups


@_register
@dataclass(frozen=True)
class ReleaseGuards(FaultEvent):
    """Release guard suppression (all suppressed when ``nodes`` is None)."""

    kind: ClassVar[str] = "release-guards"

    nodes: tuple[int, ...] | None = None

    def apply(
        self, sim: "Simulator"
    ) -> tuple["FaultEvent | None", tuple["FaultEvent", ...]]:
        back = sim.release(self.nodes)
        if not back:
            return None, ()
        return dataclasses.replace(self, nodes=tuple(sorted(back))), ()


@_register
@dataclass(frozen=True)
class ByzantineNode(FaultEvent):
    """One node writes seeded arbitrary garbage to its registers each step.

    A bounded byzantine adversary: for ``duration`` consecutive steps
    the (pinned or seeded-chosen) victim's register state is redrawn
    via the protocol's ``random_state`` — every firing chains the next
    one as a follow-up with a derived seed, so each step's garbage is
    fresh yet fully replay-deterministic.  Each firing lands on the
    tape as its own resolved single-step event (replay ignores
    follow-ups; the chain is already recorded).  When the storm
    expires the node follows the real protocol again — from garbage,
    which is exactly the transient-fault state snap-stabilization
    absorbs — and waves started after that point must satisfy the
    specification on the non-byzantine remainder (the
    :class:`~repro.core.monitor.PifCycleMonitor` ``quarantine``
    parameter excludes the victim from the wave-subtree accounting).
    """

    kind: ClassVar[str] = "byzantine"

    node: int | None = None
    duration: int = 8

    def apply(
        self, sim: "Simulator"
    ) -> tuple["FaultEvent | None", tuple["FaultEvent", ...]]:
        rng = self._rng()
        if self.node is not None:
            if self.node not in sim.network.nodes:
                return None, ()
            victim = self.node
        else:
            candidates = sorted(set(sim.network.nodes) - sim.crashed)
            if not candidates:
                return None, ()
            victim = rng.choice(candidates)
        changed = sim.perturb_configuration(
            {victim: sim.protocol.random_state(victim, sim.network, rng)}
        )
        followups: tuple[FaultEvent, ...] = ()
        if self.duration > 1:
            base = 0 if self.seed is None else self.seed
            followups = (
                dataclasses.replace(
                    self,
                    at_step=sim.steps + 1,
                    node=victim,
                    duration=self.duration - 1,
                    seed=base * 31 + 17,
                ),
            )
        if not changed:
            return None, followups
        resolved = dataclasses.replace(self, node=victim, duration=1)
        return resolved, followups


def _channels_or_raise(sim: "Simulator", kind: str):
    channels = getattr(sim, "channels", None)
    if channels is None:
        from repro.errors import MessagingError

        raise MessagingError(
            f"fault event {kind!r} needs a message-passing simulator "
            f"(per-link channels); this run uses the shared-memory model"
        )
    return channels


def _pick_link(
    sim: "Simulator",
    kind: str,
    u: int | None,
    v: int | None,
    rng: Random,
    *,
    nonempty: bool,
) -> tuple[int, int] | None:
    """Choose the target link: pinned endpoints or a seeded choice.

    Unpinned events stay unpinned on the tape (like unpinned
    ``corrupt``): replaying the tape re-creates the exact channel state
    at this point, so the same seed re-derives the same link — pinning
    would instead shift the event's RNG stream between record and
    replay.
    """
    channels = _channels_or_raise(sim, kind)
    if u is not None and v is not None:
        link = (u, v)
        if link not in channels:
            return None
        if nonempty and len(channels[link]) == 0:
            return None
        return link
    candidates = [
        link
        for link in sorted(channels)
        if not nonempty or len(channels[link]) > 0
    ]
    if not candidates:
        return None
    return rng.choice(candidates)


@_register
@dataclass(frozen=True)
class DropMessage(FaultEvent):
    """Lose in-flight messages on one link (seeded positions).

    With pinned ``u``/``v`` the drop targets that directed channel
    (skipped when absent or empty); otherwise a seeded choice among the
    currently non-empty channels.  ``count`` bounds how many buffered
    messages are removed.
    """

    kind: ClassVar[str] = "drop-message"
    link_fault: ClassVar[bool] = True

    u: int | None = None
    v: int | None = None
    count: int = 1

    def apply(
        self, sim: "Simulator"
    ) -> tuple["FaultEvent | None", tuple["FaultEvent", ...]]:
        if self.count < 1:
            return None, ()
        rng = self._rng()
        link = _pick_link(sim, self.kind, self.u, self.v, rng, nonempty=True)
        if link is None:
            return None, ()
        lost = sim.drop_messages(link[0], link[1], self.count, rng)
        if not lost:
            return None, ()
        return self, ()


@_register
@dataclass(frozen=True)
class DuplicateMessage(FaultEvent):
    """Duplicate in-flight messages on one link (copies enqueue at the tail)."""

    kind: ClassVar[str] = "duplicate-message"
    link_fault: ClassVar[bool] = True

    u: int | None = None
    v: int | None = None
    count: int = 1

    def apply(
        self, sim: "Simulator"
    ) -> tuple["FaultEvent | None", tuple["FaultEvent", ...]]:
        if self.count < 1:
            return None, ()
        rng = self._rng()
        link = _pick_link(sim, self.kind, self.u, self.v, rng, nonempty=True)
        if link is None:
            return None, ()
        copied = sim.duplicate_messages(link[0], link[1], self.count, rng)
        if not copied:
            return None, ()
        return self, ()


@_register
@dataclass(frozen=True)
class ReorderWindow(FaultEvent):
    """Permute the oldest ``window`` in-flight messages on one link."""

    kind: ClassVar[str] = "reorder-window"
    link_fault: ClassVar[bool] = True

    u: int | None = None
    v: int | None = None
    window: int = 3

    def apply(
        self, sim: "Simulator"
    ) -> tuple["FaultEvent | None", tuple["FaultEvent", ...]]:
        if self.window < 2:
            return None, ()
        rng = self._rng()
        link = _pick_link(sim, self.kind, self.u, self.v, rng, nonempty=True)
        if link is None:
            return None, ()
        permuted = sim.reorder_window(link[0], link[1], self.window, rng)
        if not permuted:
            return None, ()
        return self, ()


@_register
@dataclass(frozen=True)
class DelayLink(FaultEvent):
    """Postpone one link's deliveries by ``delay`` extra steps for a window.

    Bounded delay: sends on the chosen directed channel during the next
    ``duration`` steps arrive ``delay`` steps later than they would
    have.  ``delay`` and ``duration`` must be positive integers
    (:class:`~repro.errors.MessagingError` names bad values).
    """

    kind: ClassVar[str] = "delay-link"
    link_fault: ClassVar[bool] = True

    u: int | None = None
    v: int | None = None
    delay: int = 1
    duration: int = 5

    def apply(
        self, sim: "Simulator"
    ) -> tuple["FaultEvent | None", tuple["FaultEvent", ...]]:
        from repro.messaging.env import check_positive_int

        check_positive_int(self.delay, name="link delay", source="DelayLink")
        check_positive_int(
            self.duration, name="delay duration", source="DelayLink"
        )
        rng = self._rng()
        link = _pick_link(sim, self.kind, self.u, self.v, rng, nonempty=False)
        if link is None:
            return None, ()
        sim.delay_link(link[0], link[1], self.delay, self.duration)
        return self, ()
