"""Counterexample shrinking and the regression corpus.

When a campaign run violates the PIF specification, its *tape* — the
interleaved record of daemon selections and resolved fault events — is a
complete, deterministic reproducer, but usually a long one.
:func:`shrink_run` minimizes it with the classic ddmin delta-debugging
algorithm: candidate sub-tapes are re-replayed through a
:class:`~repro.runtime.daemons.ReplayDaemon` (fault entries applied
between the scheduled steps) and a candidate survives only if it
reproduces the *identical* violation message.  The result is a locally
minimal :class:`Repro` artifact: removing any single tested chunk makes
the violation disappear.

Reproducers serialize to small JSON files under ``tests/corpus/`` and
are replayed forever after by tier-1 (:func:`replay_repro`), so a
once-found protocol bug can never silently return.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable, Mapping, Sequence

from repro import telemetry as _telemetry
from repro.chaos.campaign import ChaosRun
from repro.chaos.events import event_from_dict
from repro.core.monitor import PifCycleMonitor
from repro.errors import ReplayError, ReproError
from repro.runtime.daemons import ReplayDaemon
from repro.runtime.network import Network
from repro.runtime.protocol import Protocol
from repro.runtime.simulator import Simulator

__all__ = [
    "replay_tape",
    "ddmin",
    "shrink_entry_payloads",
    "Repro",
    "shrink_run",
    "shrink_sweep",
    "falsify",
    "save_repro",
    "load_repro",
    "network_from_adjacency",
    "replay_repro",
]


def replay_tape(
    protocol: Protocol,
    network: Network,
    tape: Sequence[Mapping],
    *,
    strict: bool = False,
    validate_engine: bool | None = None,
    transport: str = "shared-memory",
    seed: int = 0,
    capacity: int | None = None,
    model: str | None = None,
    heartbeat: int | None = None,
    loss_rate: float = 0.0,
) -> str | None:
    """Deterministically re-execute a tape; return the violation message.

    Steps are driven through a :class:`ReplayDaemon`; fault entries are
    applied between them exactly as recorded (``swap-daemon`` entries
    are no-ops — the schedule already encodes the swapped daemon's
    choices).  Returns the first violation message, or ``None`` if the
    tape replays cleanly.

    ``transport="message"`` replays over the message-passing runtime
    with the recorded knobs and — crucially — the recorded ``seed``:
    the per-step delivery and publish-loss RNGs are stateless functions
    of ``(seed, step)``, so the same seed re-rolls the same losses at
    the same steps.  Idle steps (recorded with an empty selection) do
    not consult the daemon, so only non-empty selections enter the
    replay schedule; each executed step is then compared against its
    recorded selection and any mismatch raises a *diverged*
    :class:`~repro.errors.ReplayError`.

    With ``strict=False`` (the shrinker's oracle mode), a tape that
    *diverges* — a recorded selection no longer enabled, a stall with
    steps left — counts as "does not reproduce" and returns ``None``;
    with ``strict=True`` the underlying
    :class:`~repro.errors.ReplayError` propagates.
    """
    messaging = transport == "message"
    schedule = [
        {int(p): str(name) for p, name in item["selection"].items()}
        for item in tape
        if item["kind"] == "step"
        and (not messaging or item["selection"])
    ]
    monitor = PifCycleMonitor(protocol, network)
    if messaging:
        from repro.messaging import MessageSimulator

        sim: Simulator | MessageSimulator = MessageSimulator(
            protocol,
            network,
            ReplayDaemon(schedule),
            seed=seed,
            monitors=[monitor],
            validate_engine=validate_engine,
            capacity=capacity,
            model=model,
            heartbeat=heartbeat,
            loss_rate=loss_rate,
        )
    else:
        sim = Simulator(
            protocol,
            network,
            ReplayDaemon(schedule),
            seed=seed,
            monitors=[monitor],
            validate_engine=validate_engine,
        )
    step_index = 0
    try:
        for item in tape:
            if item["kind"] == "fault":
                event = event_from_dict(item["event"])
                if event.kind != "swap-daemon":
                    event.apply(sim)
            elif item["kind"] == "step":
                record = sim.step()
                if record is None:
                    raise ReplayError(
                        f"replay stalled before scheduled step {step_index} "
                        f"(crashed: {sorted(sim.crashed)})",
                        step_index=step_index,
                        reason="stalled",
                    )
                if messaging:
                    replayed = {
                        str(p): name for p, name in record.selection.items()
                    }
                    if replayed != dict(item["selection"]):
                        raise ReplayError(
                            f"replay diverged at step {step_index}: "
                            f"recorded {dict(item['selection'])!r}, "
                            f"replayed {replayed!r}",
                            step_index=step_index,
                            reason="diverged",
                        )
                step_index += 1
            else:
                raise ReproError(f"malformed tape entry: {item!r}")
            for report in monitor.reports:
                if report.violations:
                    return report.violations[0]
    except ReproError:
        if strict:
            raise
        return None
    return None


def _record_shrink_test(candidate_entries: int, accepted: bool) -> None:
    """Stream one shrink-oracle evaluation into telemetry.

    Emitted per candidate replay from both shrinking passes, so live
    dashboards see shrink *progress* rather than only the end-of-run
    totals :func:`shrink_run` publishes.  Counters and a histogram
    only — both merge deterministically across workers, keeping the
    aggregated snapshot bit-identical across ``jobs``.
    """
    if not _telemetry.enabled:
        return
    reg = _telemetry.registry
    reg.inc("chaos.shrink.tests")
    reg.observe("chaos.shrink.candidate_entries", candidate_entries)
    if accepted:
        reg.inc("chaos.shrink.accepted")


def ddmin(
    items: list,
    test: Callable[[list], bool],
    *,
    max_tests: int = 1000,
) -> tuple[list, int]:
    """Zeller–Hildebrandt delta debugging over a list of tape entries.

    ``test(candidate)`` must return True when the candidate still
    reproduces the failure; ``test(items)`` is assumed True.  Returns
    ``(minimal, tests_run)``; when the test budget runs out the
    best-so-far reduction is returned (still a valid reproducer, merely
    not guaranteed 1-minimal).
    """
    tests_run = 0

    def check(candidate: list) -> bool:
        nonlocal tests_run
        tests_run += 1
        ok = test(candidate)
        _record_shrink_test(len(candidate), ok)
        return ok

    granularity = 2
    while len(items) >= 2 and tests_run < max_tests:
        size = len(items) // granularity
        chunks = [
            items[i : i + size] for i in range(0, len(items), size)
        ] if size else [items]
        reduced = False

        for chunk in chunks:
            if tests_run >= max_tests:
                return items, tests_run
            if len(chunk) < len(items) and check(chunk):
                items = chunk
                granularity = 2
                reduced = True
                break

        if not reduced and granularity > 2:
            for index in range(len(chunks)):
                if tests_run >= max_tests:
                    return items, tests_run
                complement = [
                    entry
                    for j, chunk in enumerate(chunks)
                    if j != index
                    for entry in chunk
                ]
                if len(complement) < len(items) and check(complement):
                    items = complement
                    granularity = max(granularity - 1, 2)
                    reduced = True
                    break

        if not reduced:
            if granularity >= len(items):
                break
            granularity = min(len(items), granularity * 2)
    return items, tests_run


def _entry_reductions(entry: Mapping, all_nodes: Sequence[int]):
    """Smaller same-position variants of one tape entry, in deterministic order.

    * A multi-node **step** sheds one selected processor at a time
      (canonicalization: the surviving selection is what the violation
      actually needs, not what the daemon happened to pick).
    * A **fault** event with an explicit multi-node victim list sheds one
      victim at a time (magnitude lowering).
    * An *unpinned* ``corrupt`` event (``nodes`` absent: victims are
      re-derived from the seed at replay) is offered pinned to each
      single node — the strongest magnitude reduction, and it makes the
      reproducer's blast radius explicit in the artifact.
    """
    if entry["kind"] == "step":
        selection = entry["selection"]
        if len(selection) > 1:
            for node in sorted(selection, key=int):
                yield {
                    "kind": "step",
                    "selection": {
                        p: a for p, a in selection.items() if p != node
                    },
                }
    elif entry["kind"] == "fault":
        event = entry["event"]
        nodes = event.get("nodes")
        if isinstance(nodes, list) and len(nodes) > 1:
            for node in nodes:
                smaller = dict(event)
                smaller["nodes"] = [q for q in nodes if q != node]
                yield {"kind": "fault", "event": smaller}
        elif nodes is None and event.get("kind") == "corrupt":
            for node in sorted(all_nodes):
                pinned = dict(event)
                pinned["nodes"] = [node]
                yield {"kind": "fault", "event": pinned}


def shrink_entry_payloads(
    tape: Sequence[Mapping],
    test: Callable[[list], bool],
    *,
    nodes: Sequence[int] = (),
    max_tests: int = 1000,
) -> tuple[list, int]:
    """Second shrinking pass: minimize *inside* the surviving entries.

    ddmin removes whole tape entries; this pass then greedily applies
    :func:`_entry_reductions` to each entry in turn, keeping a reduction
    only when ``test`` confirms the identical violation still
    reproduces, and repeats to a fixpoint (or until ``max_tests``
    oracle calls).  The entry count never changes, so the result is
    never larger than its input — it is the same reproducer with
    smaller selections and smaller fault blast radii.

    ``nodes`` is the network's node set, needed to propose singleton
    pinnings for unpinned ``corrupt`` events.
    """
    items = list(tape)
    tests_run = 0
    progress = True
    while progress and tests_run < max_tests:
        progress = False
        for index in range(len(items)):
            for candidate in _entry_reductions(items[index], nodes):
                if tests_run >= max_tests:
                    return items, tests_run
                trial = items[:index] + [candidate] + items[index + 1 :]
                tests_run += 1
                ok = test(trial)
                _record_shrink_test(len(trial), ok)
                if ok:
                    items = trial
                    progress = True
                    break
    return items, tests_run


@dataclass
class Repro:
    """A minimized, self-contained, deterministic reproducer."""

    protocol: str
    topology: str
    #: Node → neighbor list *in local order* (rebuilds the exact network).
    adjacency: dict[int, list[int]]
    root: int
    scenario: str
    daemon: str
    seed: int
    violation: str
    original_entries: int
    shrunk_entries: int
    shrink_tests: int
    tape: list[dict] = field(default_factory=list)
    #: Transport the run was recorded under; ``"message"`` reproducers
    #: carry their resolved channel knobs so replay re-rolls the exact
    #: same delivery/loss coins.  Defaults keep pre-messaging corpus
    #: files loading unchanged.
    transport: str = "shared-memory"
    capacity: int | None = None
    model: str | None = None
    heartbeat: int | None = None
    loss_rate: float = 0.0

    @property
    def strictly_smaller(self) -> bool:
        """The shrinker actually removed something."""
        return self.shrunk_entries < self.original_entries


def shrink_run(
    protocol: Protocol,
    run: ChaosRun,
    *,
    max_tests: int = 1000,
) -> Repro | None:
    """Minimize a violating run's tape into a :class:`Repro`.

    The oracle accepts a candidate only if it replays to the *identical*
    violation message.  After ddmin has removed every removable entry, a
    second pass (:func:`shrink_entry_payloads`) minimizes inside the
    survivors — dropping processors from multi-node steps and lowering
    fault magnitudes — under the same oracle and the same shared test
    budget.  Returns ``None`` when the original tape itself fails to
    re-reproduce (which would indicate nondeterminism — worth a bug
    report of its own).
    """
    if run.ok or run.network is None:
        raise ReproError("shrink_run needs a violating run with its network")
    network = run.network
    target = run.violation

    def reproduces(candidate: list) -> bool:
        return (
            replay_tape(
                protocol,
                network,
                candidate,
                transport=run.transport,
                seed=run.seed if run.transport == "message" else 0,
                capacity=run.capacity,
                model=run.model,
                heartbeat=run.heartbeat,
                loss_rate=run.loss_rate,
            )
            == target
        )

    if not reproduces(run.tape):
        return None
    with _telemetry.span("chaos.shrink") as shrink_span:
        minimal, tests_run = ddmin(
            list(run.tape), reproduces, max_tests=max_tests
        )
        minimal, payload_tests = shrink_entry_payloads(
            minimal,
            reproduces,
            nodes=list(network.nodes),
            max_tests=max(0, max_tests - tests_run),
        )
        tests_run += payload_tests
        shrink_span.set("scenario", run.scenario).set("tests", tests_run)
    if _telemetry.enabled:
        reg = _telemetry.registry
        reg.inc("chaos.shrinks")
        reg.inc("chaos.shrink_iterations", tests_run)
        reg.inc("chaos.shrink_entries_removed",
                len(run.tape) - len(minimal))
    return Repro(
        protocol=run.protocol_name,
        topology=network.name,
        adjacency={p: list(network.neighbors(p)) for p in network.nodes},
        root=run.root,
        scenario=run.scenario,
        daemon=run.daemon,
        seed=run.seed,
        violation=target,
        original_entries=len(run.tape),
        shrunk_entries=len(minimal),
        shrink_tests=tests_run + 1,
        tape=minimal,
        transport=run.transport,
        capacity=run.capacity,
        model=run.model,
        heartbeat=run.heartbeat,
        loss_rate=run.loss_rate,
    )


def falsify(
    protocol_factory: Callable[..., Protocol],
    networks: Sequence[Network],
    scenarios: Sequence,
    *,
    daemons: Sequence[str] = ("central", "adversarial", "distributed-random"),
    seeds: Sequence[int] = (0, 1, 2),
    budget: int = 400,
    max_tests: int = 3000,
    require_strictly_smaller: bool = True,
    transport: str = "shared-memory",
    capacity: int | None = None,
    model: str | None = None,
    heartbeat: int | None = None,
    loss_rate: float = 0.0,
) -> Repro | None:
    """Hunt the grid for a violation and return its shrunk reproducer.

    Sweeps ``networks × daemons × seeds × scenarios`` (in that nesting)
    until a violating run shrinks to a reproducer — by default one that
    is *strictly smaller* than the original failing tape, so violations
    whose first witness is already minimal keep being hunted until a
    witness with removable slack turns up.  Returns ``None`` when the
    whole grid passes (the protocol survived falsification).
    """
    from repro.chaos.campaign import run_chaos

    for network in networks:
        protocol = protocol_factory(network)
        for daemon in daemons:
            for seed in seeds:
                for scenario in scenarios:
                    run = run_chaos(
                        protocol,
                        network,
                        scenario,
                        daemon=daemon,
                        seed=seed,
                        budget=budget,
                        transport=transport,
                        capacity=capacity,
                        model=model,
                        heartbeat=heartbeat,
                        loss_rate=loss_rate,
                    )
                    if run.ok:
                        continue
                    repro = shrink_run(protocol, run, max_tests=max_tests)
                    if repro is None:
                        continue
                    if repro.strictly_smaller or not require_strictly_smaller:
                        return repro
    return None


def shrink_sweep(
    protocol_factory: Callable[..., Protocol],
    networks: Sequence[Network],
    scenarios: Sequence,
    *,
    daemons: Sequence[str] = ("central",),
    seeds: Sequence[int] = (0,),
    budget: int = 400,
    max_tests: int = 1000,
    transport: str = "shared-memory",
    capacity: int | None = None,
    model: str | None = None,
    heartbeat: int | None = None,
    loss_rate: float = 0.0,
    jobs: int | None = None,
    task_timeout: float | None = None,
) -> list[Repro | None]:
    """Shrink every violating cell of a ``networks × daemons × seeds ×
    scenarios`` grid.

    Unlike :func:`falsify` (first reproducer wins), the sweep processes
    the *whole* grid and returns one entry per cell in grid order:
    the shrunk :class:`Repro` for violating cells, ``None`` for cells
    that pass (or whose tape fails to re-reproduce).  ``jobs`` fans the
    cells out across the process pool (``None`` falls back to
    ``REPRO_JOBS``, then the serial loop); each cell is an independent
    deterministic run-then-shrink, results merge in submission order,
    and each worker's shrink telemetry is captured and merged in that
    same order — so the reproducers *and* the aggregated deterministic
    metrics are bit-identical across job counts.
    """
    from repro.parallel.executor import resolve_jobs

    grid = []
    for network in networks:
        for daemon in daemons:
            for seed in seeds:
                for scenario in scenarios:
                    grid.append((network, daemon, seed, scenario))

    n_jobs = resolve_jobs(jobs)
    if n_jobs is not None:
        from repro.parallel.executor import ParallelExecutor, raise_failures
        from repro.parallel.workers import shrink_cell

        tasks = []
        for network, daemon, seed, scenario in grid:
            key = (network.name, scenario.name, daemon, seed)
            payload = {
                "factory": protocol_factory,
                "network": network,
                "scenario": scenario,
                "daemon": daemon,
                "seed": seed,
                "budget": budget,
                "max_tests": max_tests,
                "transport": transport,
                "capacity": capacity,
                "model": model,
                "heartbeat": heartbeat,
                "loss_rate": loss_rate,
            }
            tasks.append((key, payload))
        executor = ParallelExecutor(
            shrink_cell, jobs=n_jobs, timeout=task_timeout
        )
        outcomes = executor.map(tasks)
        raise_failures(outcomes)
        return list(outcomes)

    from repro.chaos.campaign import run_chaos

    results: list[Repro | None] = []
    for network, daemon, seed, scenario in grid:
        protocol = protocol_factory(network)
        run = run_chaos(
            protocol,
            network,
            scenario,
            daemon=daemon,
            seed=seed,
            budget=budget,
            transport=transport,
            capacity=capacity,
            model=model,
            heartbeat=heartbeat,
            loss_rate=loss_rate,
        )
        if run.ok:
            results.append(None)
        else:
            results.append(shrink_run(protocol, run, max_tests=max_tests))
    return results


# ----------------------------------------------------------------------
# Corpus persistence
# ----------------------------------------------------------------------
def save_repro(repro: Repro, path: str | Path) -> None:
    """Write a reproducer as indented JSON (corpus-friendly diffs)."""
    payload = asdict(repro)
    payload["adjacency"] = {
        str(p): neighbors for p, neighbors in repro.adjacency.items()
    }
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def load_repro(path: str | Path) -> Repro:
    """Read a reproducer written by :func:`save_repro`."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    try:
        payload["adjacency"] = {
            int(p): [int(q) for q in neighbors]
            for p, neighbors in payload["adjacency"].items()
        }
        return Repro(**payload)
    except (KeyError, TypeError, ValueError):
        raise ReproError(f"malformed reproducer file: {path}") from None


def network_from_adjacency(
    adjacency: Mapping[int, Sequence[int]], name: str
) -> Network:
    """Rebuild a network preserving the recorded local neighbor orders."""
    return Network(
        {p: tuple(qs) for p, qs in adjacency.items()},
        neighbor_orders={p: list(qs) for p, qs in adjacency.items()},
        name=name,
    )


def replay_repro(
    repro: Repro,
    protocol_registry: Mapping[str, Callable[[Network, int], Protocol]],
    *,
    validate_engine: bool | None = None,
) -> str | None:
    """Replay a corpus reproducer and return the violation it produces.

    ``protocol_registry`` maps protocol names (``Repro.protocol``) to
    ``(network, root) -> Protocol`` factories; mutants used by the
    falsifiability tests register here too.  Replay is strict: a
    diverging tape raises :class:`~repro.errors.ReplayError` instead of
    silently passing.
    """
    factory = protocol_registry.get(repro.protocol)
    if factory is None:
        raise ReproError(
            f"no protocol factory registered for {repro.protocol!r}; "
            f"known: {sorted(protocol_registry)}"
        )
    network = network_from_adjacency(repro.adjacency, repro.topology)
    protocol = factory(network, repro.root)
    return replay_tape(
        protocol,
        network,
        repro.tape,
        strict=True,
        validate_engine=validate_engine,
        transport=repro.transport,
        seed=repro.seed if repro.transport == "message" else 0,
        capacity=repro.capacity,
        model=repro.model,
        heartbeat=repro.heartbeat,
        loss_rate=repro.loss_rate,
    )
