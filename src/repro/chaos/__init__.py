"""Chaos campaigns: composable mid-run fault scenarios for live runs.

Snap-stabilization quantifies over *arbitrary* configurations — i.e.
the system state immediately after a transient fault strikes a running
system.  This package realizes that adversary as a first-class engine:

* :mod:`~repro.chaos.events` — declarative, seeded fault events
  (corruption, crash/recover, link churn, daemon swaps);
* :mod:`~repro.chaos.scenario` — the scenario DSL: JSON-serializable
  schedules composable sequentially (``>>``) and in parallel (``|``),
  plus the builtin shapes in ``SCENARIO_SHAPES``;
* :mod:`~repro.chaos.campaign` — the campaign runner sweeping
  scenarios × topologies × daemons × seeds under the PIF specification
  monitor;
* :mod:`~repro.chaos.shrink` — ddmin counterexample shrinking and the
  JSON reproducer corpus replayed by tier-1.

Quick start::

    from repro.chaos import run_campaign, standard_scenarios
    from repro.graphs import ring

    result = run_campaign(
        None,                      # default: SnapPif.for_network
        [ring(6)],
        standard_scenarios(),
        daemons=("synchronous", "central", "adversarial"),
        seeds=(0, 1),
    )
    assert result.ok, result.violations[0].violation
"""

from repro.chaos.campaign import (
    DAEMON_FACTORIES,
    CampaignResult,
    ChaosRun,
    make_daemon,
    run_campaign,
    run_chaos,
)
from repro.chaos.events import (
    EVENT_KINDS,
    AddLink,
    ByzantineNode,
    CorruptNodes,
    CrashNodes,
    DelayLink,
    DropMessage,
    DuplicateMessage,
    FaultEvent,
    RecoverNodes,
    ReleaseGuards,
    RemoveLink,
    ReorderWindow,
    SuppressGuards,
    SwapDaemon,
    event_from_dict,
)
from repro.chaos.scenario import (
    MESSAGE_SCENARIO_SHAPES,
    SCENARIO_SHAPES,
    FaultScenario,
    byzantine_storm,
    corruption_burst,
    crash_recover,
    daemon_flip,
    full_chaos,
    guard_suppression,
    link_churn,
    link_delay_storm,
    message_chaos,
    message_duplication,
    message_loss,
    message_reorder,
    rolling_crash,
    standard_message_scenarios,
    standard_scenarios,
)
from repro.chaos.shrink import (
    Repro,
    ddmin,
    falsify,
    load_repro,
    network_from_adjacency,
    replay_repro,
    replay_tape,
    save_repro,
    shrink_run,
    shrink_sweep,
)

__all__ = [
    "FaultEvent",
    "CorruptNodes",
    "CrashNodes",
    "RecoverNodes",
    "RemoveLink",
    "AddLink",
    "SwapDaemon",
    "SuppressGuards",
    "ReleaseGuards",
    "ByzantineNode",
    "DropMessage",
    "DuplicateMessage",
    "ReorderWindow",
    "DelayLink",
    "EVENT_KINDS",
    "event_from_dict",
    "FaultScenario",
    "SCENARIO_SHAPES",
    "MESSAGE_SCENARIO_SHAPES",
    "corruption_burst",
    "crash_recover",
    "rolling_crash",
    "link_churn",
    "daemon_flip",
    "full_chaos",
    "message_loss",
    "message_duplication",
    "message_reorder",
    "link_delay_storm",
    "guard_suppression",
    "message_chaos",
    "byzantine_storm",
    "standard_scenarios",
    "standard_message_scenarios",
    "DAEMON_FACTORIES",
    "make_daemon",
    "ChaosRun",
    "CampaignResult",
    "run_chaos",
    "run_campaign",
    "Repro",
    "ddmin",
    "replay_tape",
    "shrink_run",
    "shrink_sweep",
    "falsify",
    "save_repro",
    "load_repro",
    "network_from_adjacency",
    "replay_repro",
]
