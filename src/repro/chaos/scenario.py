"""Fault scenarios: composable, seeded schedules of fault events.

A :class:`FaultScenario` is a named, immutable bag of
:class:`~repro.chaos.events.FaultEvent` values, each scheduled at a step
count.  Scenarios compose:

* **sequentially** — ``a >> b`` (or ``a.then(b, gap=...)``) shifts ``b``
  past ``a``'s horizon so its faults strike strictly after ``a``'s;
* **in parallel** — ``a | b`` (or ``a.alongside(b)``) interleaves both
  schedules on the shared step clock.

Scenarios serialize to/from JSON and are made deterministic by
:meth:`FaultScenario.seeded`, which pins a distinct sub-seed (derived
from the campaign seed and the event's position) on every event that
does not already carry one.  The module also ships the builtin *scenario
shapes* — parameterized generators covering the adversary classes the
snap-stabilization literature cares about — in :data:`SCENARIO_SHAPES`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from repro.chaos.events import (
    AddLink,
    ByzantineNode,
    CorruptNodes,
    CrashNodes,
    DelayLink,
    DropMessage,
    DuplicateMessage,
    FaultEvent,
    RemoveLink,
    ReorderWindow,
    SuppressGuards,
    SwapDaemon,
    event_from_dict,
)
from repro.errors import ReproError

__all__ = [
    "FaultScenario",
    "SCENARIO_SHAPES",
    "MESSAGE_SCENARIO_SHAPES",
    "corruption_burst",
    "crash_recover",
    "rolling_crash",
    "link_churn",
    "daemon_flip",
    "full_chaos",
    "message_loss",
    "message_duplication",
    "message_reorder",
    "link_delay_storm",
    "guard_suppression",
    "message_chaos",
    "byzantine_storm",
]

#: Multiplier decorrelating per-event sub-seeds from the campaign seed.
_SEED_STRIDE = 1_000_003


@dataclass(frozen=True)
class FaultScenario:
    """A named, deterministic schedule of fault events."""

    name: str
    events: tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))

    # ------------------------------------------------------------------
    # Composition
    # ------------------------------------------------------------------
    @property
    def horizon(self) -> int:
        """The latest scheduled step (0 for an empty scenario)."""
        return max((e.at_step for e in self.events), default=0)

    def shift(self, delta: int) -> "FaultScenario":
        """Return a copy with every event delayed by ``delta`` steps."""
        return FaultScenario(self.name, tuple(e.shift(delta) for e in self.events))

    def then(self, other: "FaultScenario", *, gap: int = 1) -> "FaultScenario":
        """Sequential composition: ``other`` starts after this scenario."""
        shifted = other.shift(self.horizon + gap)
        return FaultScenario(
            f"{self.name}>>{other.name}", self.events + shifted.events
        )

    def alongside(self, other: "FaultScenario") -> "FaultScenario":
        """Parallel composition on the shared step clock."""
        merged = sorted(self.events + other.events, key=lambda e: e.at_step)
        return FaultScenario(f"{self.name}|{other.name}", tuple(merged))

    def __rshift__(self, other: "FaultScenario") -> "FaultScenario":
        return self.then(other)

    def __or__(self, other: "FaultScenario") -> "FaultScenario":
        return self.alongside(other)

    def renamed(self, name: str) -> "FaultScenario":
        """Return a copy under a new name (for composed scenarios)."""
        return FaultScenario(name, self.events)

    # ------------------------------------------------------------------
    # Determinism
    # ------------------------------------------------------------------
    def seeded(self, seed: int) -> "FaultScenario":
        """Pin a distinct deterministic sub-seed on every unseeded event."""
        return FaultScenario(
            self.name,
            tuple(
                e.seeded(seed * _SEED_STRIDE + index * 7919 + 1)
                for index, e in enumerate(self.events)
            ),
        )

    def timeline(self) -> list[FaultEvent]:
        """Events in firing order (stable sort by ``at_step``)."""
        return sorted(self.events, key=lambda e: e.at_step)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "events": [e.to_dict() for e in self.events],
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "FaultScenario":
        try:
            name = payload["name"]
            raw_events = payload["events"]
        except (KeyError, TypeError):
            raise ReproError(
                f"malformed scenario payload: {payload!r}"
            ) from None
        return cls(str(name), tuple(event_from_dict(e) for e in raw_events))

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultScenario":
        return cls.from_dict(json.loads(text))


# ----------------------------------------------------------------------
# Builtin scenario shapes
# ----------------------------------------------------------------------
def corruption_burst(
    *, at: int = 30, bursts: int = 3, gap: int = 45, fraction: float = 0.4,
    mode: str = "random",
) -> FaultScenario:
    """Repeated transient faults striking a live run — the core snap claim."""
    return FaultScenario(
        "corruption-burst",
        tuple(
            CorruptNodes(at_step=at + i * gap, mode=mode, fraction=fraction)
            for i in range(bursts)
        ),
    )


def crash_recover(
    *, at: int = 25, count: int = 2, duration: int = 50, waves: int = 2,
    gap: int = 90,
) -> FaultScenario:
    """Groups of processors fail-stop and later resume from stale memory."""
    return FaultScenario(
        "crash-recover",
        tuple(
            CrashNodes(at_step=at + i * gap, count=count, duration=duration)
            for i in range(waves)
        ),
    )


def rolling_crash(
    *, at: int = 20, gap: int = 30, duration: int = 65, waves: int = 3,
) -> FaultScenario:
    """Single-node crashes marching across the network with overlap."""
    return FaultScenario(
        "rolling-crash",
        tuple(
            CrashNodes(at_step=at + i * gap, count=1, duration=duration)
            for i in range(waves)
        ),
    )


def link_churn(*, at: int = 25, flips: int = 3, gap: int = 50) -> FaultScenario:
    """Alternating link removals and additions (dynamic topology)."""
    events: list[FaultEvent] = []
    for i in range(flips):
        start = at + i * gap
        events.append(RemoveLink(at_step=start))
        events.append(AddLink(at_step=start + gap // 2))
    return FaultScenario("link-churn", tuple(events))


def daemon_flip(
    *, at: int = 20, gap: int = 60,
    daemons: Sequence[str] = ("central", "adversarial", "synchronous"),
) -> FaultScenario:
    """The adversary switches scheduling strategy mid-run."""
    return FaultScenario(
        "daemon-flip",
        tuple(
            SwapDaemon(at_step=at + i * gap, daemon=d)
            for i, d in enumerate(daemons)
        ),
    )


def full_chaos(*, at: int = 20) -> FaultScenario:
    """Corruption, link churn and crash/recovery all at once."""
    combined = (
        corruption_burst(at=at + 10, bursts=2, gap=70)
        | link_churn(at=at, flips=2, gap=60)
        | crash_recover(at=at + 25, count=1, duration=40, waves=2, gap=80)
    )
    return combined.renamed("full-chaos")


#: Named generators for campaign grids (each returns a fresh scenario).
SCENARIO_SHAPES: dict[str, Callable[..., FaultScenario]] = {
    "corruption-burst": corruption_burst,
    "crash-recover": crash_recover,
    "rolling-crash": rolling_crash,
    "link-churn": link_churn,
    "daemon-flip": daemon_flip,
    "full-chaos": full_chaos,
}


def standard_scenarios(seed: int = 0) -> list[FaultScenario]:
    """One seeded instance of every builtin shape (campaign default)."""
    return [
        SCENARIO_SHAPES[name]().seeded(seed) for name in sorted(SCENARIO_SHAPES)
    ]


__all__.append("standard_scenarios")


# ----------------------------------------------------------------------
# Message-passing scenario shapes
# ----------------------------------------------------------------------
# Kept in their own registry: the link-fault shapes need a simulator
# with channels (``run_chaos(..., transport="message")``) and raise
# :class:`~repro.errors.MessagingError` against a shared-memory run, so
# they must not leak into :data:`SCENARIO_SHAPES`-driven grids.
def message_loss(
    *, at: int = 2, bursts: int = 12, gap: int = 3, count: int = 2,
) -> FaultScenario:
    """Repeated in-flight message drops on seeded-chosen links."""
    return FaultScenario(
        "message-loss",
        tuple(
            DropMessage(at_step=at + i * gap, count=count)
            for i in range(bursts)
        ),
    )


def message_duplication(
    *, at: int = 2, bursts: int = 10, gap: int = 4, count: int = 2,
) -> FaultScenario:
    """Repeated duplication of buffered messages on seeded-chosen links."""
    return FaultScenario(
        "message-duplication",
        tuple(
            DuplicateMessage(at_step=at + i * gap, count=count)
            for i in range(bursts)
        ),
    )


def message_reorder(
    *, at: int = 2, bursts: int = 10, gap: int = 4, window: int = 3,
) -> FaultScenario:
    """Repeated permutation of each chosen link's oldest in-flight window."""
    return FaultScenario(
        "message-reorder",
        tuple(
            ReorderWindow(at_step=at + i * gap, window=window)
            for i in range(bursts)
        ),
    )


def link_delay_storm(
    *, at: int = 3, links: int = 3, gap: int = 12, delay: int = 2,
    duration: int = 8,
) -> FaultScenario:
    """Rolling bounded-delay windows on seeded-chosen links."""
    return FaultScenario(
        "link-delay",
        tuple(
            DelayLink(
                at_step=at + i * gap, delay=delay, duration=duration
            )
            for i in range(links)
        ),
    )


def guard_suppression(
    *, at: int = 10, count: int = 1, duration: int = 12, waves: int = 2,
    gap: int = 40,
) -> FaultScenario:
    """Guard-suppression windows — the loss analogue that runs under
    *both* models (no channels needed)."""
    return FaultScenario(
        "guard-suppression",
        tuple(
            SuppressGuards(at_step=at + i * gap, count=count, duration=duration)
            for i in range(waves)
        ),
    )


def message_chaos(*, at: int = 2) -> FaultScenario:
    """Loss, duplication, reordering and bounded delay all at once."""
    combined = (
        message_loss(at=at, bursts=8, gap=4)
        | message_duplication(at=at + 1, bursts=6, gap=5)
        | message_reorder(at=at + 2, bursts=6, gap=5)
        | link_delay_storm(at=at + 3, links=2, gap=15)
    )
    return combined.renamed("message-chaos")


def byzantine_storm(*, at: int = 10, duration: int = 12) -> FaultScenario:
    """One seeded-chosen node writes arbitrary garbage for ``duration`` steps."""
    return FaultScenario(
        "byzantine-storm",
        (ByzantineNode(at_step=at, duration=duration),),
    )


#: Shapes for message-transport campaigns (plus the model-agnostic
#: guard-suppression and byzantine shapes, which also run shared-memory).
MESSAGE_SCENARIO_SHAPES: dict[str, Callable[..., FaultScenario]] = {
    "message-loss": message_loss,
    "message-duplication": message_duplication,
    "message-reorder": message_reorder,
    "link-delay": link_delay_storm,
    "message-chaos": message_chaos,
    "guard-suppression": guard_suppression,
    "byzantine-storm": byzantine_storm,
}


def standard_message_scenarios(seed: int = 0) -> list[FaultScenario]:
    """One seeded instance of every message-campaign shape."""
    return [
        MESSAGE_SCENARIO_SHAPES[name]().seeded(seed)
        for name in sorted(MESSAGE_SCENARIO_SHAPES)
    ]


__all__.append("standard_message_scenarios")
