"""Campaign runner: sweep scenarios × topologies × daemons × seeds.

:func:`run_chaos` drives one protocol instance through one seeded
scenario, recording the *tape* — the interleaved sequence of executed
daemon selections and applied fault events — and watching a
:class:`~repro.core.monitor.PifCycleMonitor` for specification
violations.  :func:`run_campaign` sweeps a grid of scenarios,
topologies, daemons and seeds and aggregates the outcomes; a violating
run's tape is what the shrinker (:mod:`repro.chaos.shrink`) minimizes
into a corpus reproducer.

The tape is the ground truth for replay: fault events are recorded *as
resolved* (random victims pinned where needed), so replaying the tape
through a :class:`~repro.runtime.daemons.ReplayDaemon` — applying the
fault entries between the scheduled steps — reproduces the run exactly,
with no daemon and no wall-clock nondeterminism left.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence

from repro import telemetry as _telemetry
from repro.chaos.events import FaultEvent
from repro.chaos.scenario import FaultScenario
from repro.core.monitor import PifCycleMonitor
from repro.core.pif import SnapPif
from repro.errors import MessagingError, ScheduleError
from repro.runtime.daemons import (
    AdversarialDaemon,
    CentralDaemon,
    Daemon,
    DistributedRandomDaemon,
    LocallyCentralDaemon,
    RoundRobinDaemon,
    SynchronousDaemon,
    WeaklyFairDaemon,
)
from repro.runtime.network import Network
from repro.runtime.protocol import Protocol
from repro.runtime.simulator import Simulator

__all__ = [
    "DAEMON_FACTORIES",
    "make_daemon",
    "ChaosRun",
    "CampaignResult",
    "run_chaos",
    "run_campaign",
]

#: Daemon-name registry shared by campaigns, the CLI and ``SwapDaemon``
#: events.  Every factory builds a *fresh* daemon (daemons carry
#: scheduling state); randomized daemons draw from the simulator's
#: seeded RNG, so runs stay deterministic per seed.
DAEMON_FACTORIES: dict[str, Callable[[], Daemon]] = {
    "synchronous": SynchronousDaemon,
    "central": lambda: CentralDaemon(choice="random"),
    "central-oldest": lambda: CentralDaemon(choice="oldest"),
    "locally-central": LocallyCentralDaemon,
    "distributed-random": lambda: DistributedRandomDaemon(0.6),
    "round-robin": RoundRobinDaemon,
    "adversarial": lambda: WeaklyFairDaemon(
        AdversarialDaemon(patience=6), patience=24
    ),
}


def make_daemon(name: str) -> Daemon:
    """Instantiate a daemon by registry name."""
    factory = DAEMON_FACTORIES.get(name)
    if factory is None:
        raise ScheduleError(
            f"unknown daemon {name!r}; known: {sorted(DAEMON_FACTORIES)}"
        )
    return factory()


@dataclass
class ChaosRun:
    """Outcome of one scenario run (one cell of the campaign grid)."""

    scenario: str
    topology: str
    daemon: str
    seed: int
    protocol_name: str
    root: int
    #: ``"shared-memory"`` or ``"message"`` — and, for message runs, the
    #: *resolved* runtime knobs (explicit > environment > default), so a
    #: recorded run replays under the exact same channel semantics.
    transport: str = "shared-memory"
    capacity: int | None = None
    model: str | None = None
    heartbeat: int | None = None
    loss_rate: float = 0.0
    steps: int = 0
    faults_applied: int = 0
    faults_skipped: int = 0
    cycles_completed: int = 0
    violation: str | None = None
    violation_step: int | None = None
    #: Serialized tape: ``{"kind": "step", "selection": {...}}`` and
    #: ``{"kind": "fault", "event": {...}}`` entries in execution order.
    tape: list[dict] = field(default_factory=list)
    #: The (initial) network the run started on — churn events replace
    #: the live network, but replay always restarts from this one.
    network: Network | None = field(default=None, repr=False)

    @property
    def ok(self) -> bool:
        """True when the run finished without a specification violation."""
        return self.violation is None


@dataclass
class CampaignResult:
    """Aggregated outcome of a scenario × topology × daemon × seed sweep."""

    runs: list[ChaosRun] = field(default_factory=list)

    @property
    def violations(self) -> list[ChaosRun]:
        return [r for r in self.runs if not r.ok]

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def total_steps(self) -> int:
        return sum(r.steps for r in self.runs)

    @property
    def total_faults(self) -> int:
        return sum(r.faults_applied for r in self.runs)


def _first_violation(monitor: PifCycleMonitor) -> str | None:
    for report in monitor.reports:
        if report.violations:
            return report.violations[0]
    return None


def run_chaos(
    protocol: Protocol,
    network: Network,
    scenario: FaultScenario,
    *,
    daemon: str = "synchronous",
    seed: int = 0,
    budget: int = 1500,
    engine: str | None = None,
    validate_engine: bool | None = None,
    transport: str = "shared-memory",
    capacity: int | None = None,
    model: str | None = None,
    heartbeat: int | None = None,
    loss_rate: float = 0.0,
    quarantine: Sequence[int] = (),
) -> ChaosRun:
    """Drive ``protocol`` through one seeded fault scenario.

    The scenario is seeded with ``seed`` (events that already carry a
    seed keep it), the simulator's daemon RNG with the same ``seed``.
    The run ends at the first monitor violation, when the step
    ``budget`` is exhausted, or when the computation can no longer
    advance and no fault event remains to unblock it.

    ``transport="message"`` runs the scenario over the message-passing
    runtime (:class:`~repro.messaging.MessageSimulator`) — required for
    the link-fault event family — with ``capacity`` / ``model`` /
    ``heartbeat`` / ``loss_rate`` resolved through the usual
    explicit > environment > default chain and recorded on the run.
    ``quarantine`` excludes nodes from the monitor's judged wave
    subtree (byzantine containment).
    """
    run = ChaosRun(
        scenario=scenario.name,
        topology=network.name,
        daemon=daemon,
        seed=seed,
        protocol_name=protocol.name,
        root=getattr(protocol, "root", 0),
        transport=transport,
        network=network,
    )
    monitor = PifCycleMonitor(protocol, network, quarantine=quarantine)
    if transport == "message":
        from repro.messaging import MessageSimulator

        sim: Simulator | MessageSimulator = MessageSimulator(
            protocol,
            network,
            make_daemon(daemon),
            seed=seed,
            monitors=[monitor],
            engine=engine,
            validate_engine=validate_engine,
            capacity=capacity,
            model=model,
            heartbeat=heartbeat,
            loss_rate=loss_rate,
        )
        run.capacity = sim.capacity
        run.model = sim.model
        run.heartbeat = sim.heartbeat
        run.loss_rate = sim.loss_rate
    elif transport == "shared-memory":
        sim = Simulator(
            protocol,
            network,
            make_daemon(daemon),
            seed=seed,
            monitors=[monitor],
            engine=engine,
            validate_engine=validate_engine,
        )
    else:
        raise MessagingError(
            f"unknown transport {transport!r}; "
            f"known: 'shared-memory', 'message'"
        )

    queue: list[FaultEvent] = scenario.seeded(seed).timeline()
    cell_span = (
        _telemetry.span("chaos.cell")
        .set("scenario", scenario.name)
        .set("topology", network.name)
        .set("daemon", daemon)
        .set("seed", seed)
        .set("transport", transport)
    )
    cell_span.__enter__()

    def fire(event: FaultEvent) -> None:
        resolved, followups = event.apply(sim)
        if resolved is None:
            run.faults_skipped += 1
        else:
            run.faults_applied += 1
            run.tape.append({"kind": "fault", "event": resolved.to_dict()})
        for extra in followups:
            # Keep the queue sorted by firing time (stable insertion).
            at = next(
                (
                    i
                    for i, pending in enumerate(queue)
                    if pending.at_step > extra.at_step
                ),
                len(queue),
            )
            queue.insert(at, extra)

    while sim.steps < budget:
        while queue and queue[0].at_step <= sim.steps:
            fire(queue.pop(0))
        run.violation = _first_violation(monitor)
        if run.violation is not None:
            break
        record = sim.step()
        if record is None:
            # Stalled (all enabled processors crashed) or terminal:
            # fast-forward to the next fault event, which is the only
            # thing that can change anything.
            if queue:
                fire(queue.pop(0))
                continue
            break
        run.tape.append(
            {
                "kind": "step",
                "selection": {
                    str(p): name for p, name in record.selection.items()
                },
            }
        )
        run.violation = _first_violation(monitor)
        if run.violation is not None:
            run.violation_step = record.index
            break

    run.steps = sim.steps
    run.cycles_completed = len(monitor.completed_cycles)
    cell_span.set("violation", run.violation)
    cell_span.__exit__(None, None, None)
    if _telemetry.enabled:
        reg = _telemetry.registry
        reg.inc("chaos.runs")
        reg.inc("chaos.faults_applied", run.faults_applied)
        reg.inc("chaos.faults_skipped", run.faults_skipped)
        if run.violation is not None:
            reg.inc("chaos.violations")
    return run


def run_campaign(
    protocol_factory: Callable[[Network], Protocol] | None,
    networks: Mapping[str, Network] | Iterable[Network],
    scenarios: Iterable[FaultScenario],
    *,
    daemons: Sequence[str] = ("synchronous", "central", "distributed-random"),
    seeds: Sequence[int] = (0,),
    budget: int = 1500,
    engine: str | None = None,
    validate_engine: bool | None = None,
    transport: str = "shared-memory",
    capacity: int | None = None,
    model: str | None = None,
    heartbeat: int | None = None,
    loss_rate: float = 0.0,
    stop_on_violation: bool = False,
    jobs: int | None = None,
    task_timeout: float | None = None,
) -> CampaignResult:
    """Sweep scenarios × topologies × daemons × seeds.

    ``protocol_factory`` builds a protocol per network
    (default: ``SnapPif.for_network``).  ``networks`` is a name → network
    mapping or an iterable of networks (keyed by their ``name``).

    ``jobs`` fans the grid cells out across a process pool (``None``
    falls back to the ``REPRO_JOBS`` environment variable, then to the
    in-process serial loop).  Every cell is an independent deterministic
    run and the merged result preserves grid order, so parallel and
    serial campaigns are bit-identical — same runs, same tapes, same
    violations — for the same seeds.  With ``jobs``, ``protocol_factory``
    must be picklable (a module-level callable); a permanently failing
    cell raises :class:`~repro.parallel.executor.ParallelError` carrying
    the grid-cell identity.  ``task_timeout`` bounds each cell's
    wall-clock seconds in pool mode (timed-out cells are retried once,
    then reported).
    """
    from repro.parallel.executor import resolve_jobs

    if isinstance(networks, Mapping):
        grid = list(networks.values())
    else:
        grid = list(networks)
    scenarios = list(scenarios)

    # Any explicit jobs (including 1) goes through the executor path, so
    # the executor's telemetry counters (parallel.tasks, …) accumulate
    # identically for jobs ∈ {1, 2, 4}; jobs=1 runs the tasks in-process
    # (no pool) and is bit-identical to the serial loop.
    n_jobs = resolve_jobs(jobs)
    if n_jobs is not None:
        return _publish_campaign(
            _run_campaign_parallel(
                protocol_factory,
                grid,
                scenarios,
                daemons=daemons,
                seeds=seeds,
                budget=budget,
                engine=engine,
                validate_engine=validate_engine,
                transport=transport,
                capacity=capacity,
                model=model,
                heartbeat=heartbeat,
                loss_rate=loss_rate,
                stop_on_violation=stop_on_violation,
                jobs=n_jobs,
                task_timeout=task_timeout,
            )
        )

    if protocol_factory is None:
        protocol_factory = SnapPif.for_network
    result = CampaignResult()
    for network in grid:
        protocol = protocol_factory(network)
        for scenario in scenarios:
            for daemon in daemons:
                for seed in seeds:
                    run = run_chaos(
                        protocol,
                        network,
                        scenario,
                        daemon=daemon,
                        seed=seed,
                        budget=budget,
                        engine=engine,
                        validate_engine=validate_engine,
                        transport=transport,
                        capacity=capacity,
                        model=model,
                        heartbeat=heartbeat,
                        loss_rate=loss_rate,
                    )
                    result.runs.append(run)
                    if stop_on_violation and not run.ok:
                        return _publish_campaign(result)
    return _publish_campaign(result)


def _publish_campaign(result: CampaignResult) -> CampaignResult:
    """Fold campaign-level counters into the telemetry registry.

    Cell-level metrics are published by :func:`run_chaos` itself — in
    the parallel path that happens inside the worker's captured
    registry, which the executor merges back in grid order, so these
    campaign-level counters are the only parent-side addition and the
    aggregate stays identical across ``jobs``.
    """
    if _telemetry.enabled:
        reg = _telemetry.registry
        reg.inc("chaos.campaigns")
        reg.inc("chaos.cells", len(result.runs))
    return result


def _run_campaign_parallel(
    protocol_factory: Callable[[Network], Protocol] | None,
    grid: list[Network],
    scenarios: list[FaultScenario],
    *,
    daemons: Sequence[str],
    seeds: Sequence[int],
    budget: int,
    engine: str | None,
    validate_engine: bool | None,
    transport: str,
    capacity: int | None,
    model: str | None,
    heartbeat: int | None,
    loss_rate: float,
    stop_on_violation: bool,
    jobs: int,
    task_timeout: float | None,
) -> CampaignResult:
    """Fan the campaign grid out across a process pool.

    One task per grid cell, in the exact nesting order of the serial
    loop; results merge back in that order, so the returned
    :class:`CampaignResult` is bit-identical to the serial one.  With
    ``stop_on_violation`` the whole grid still executes (there is no
    cross-worker cancellation), but the merged run list is truncated at
    the first violating cell — exactly the prefix the serial loop would
    have produced.
    """
    from repro.parallel.executor import (
        ParallelExecutor,
        raise_failures,
    )
    from repro.parallel.workers import campaign_cell

    tasks = []
    for network in grid:
        for scenario in scenarios:
            for daemon in daemons:
                for seed in seeds:
                    key = (network.name, scenario.name, daemon, seed)
                    payload = {
                        "factory": protocol_factory,
                        "network": network,
                        "scenario": scenario,
                        "daemon": daemon,
                        "seed": seed,
                        "budget": budget,
                        "engine": engine,
                        "validate_engine": validate_engine,
                        "transport": transport,
                        "capacity": capacity,
                        "model": model,
                        "heartbeat": heartbeat,
                        "loss_rate": loss_rate,
                    }
                    tasks.append((key, payload))

    executor = ParallelExecutor(
        campaign_cell, jobs=jobs, timeout=task_timeout
    )
    outcomes = executor.map(tasks)
    raise_failures(outcomes)

    result = CampaignResult()
    for run in outcomes:
        result.runs.append(run)
        if stop_on_violation and not run.ok:
            break
    return result
