"""Exhaustive convergence and closure checks on small networks.

Complements the snap-safety checker (:mod:`repro.verification.model_check`)
with the two classic stabilization obligations:

* **Convergence** (:func:`check_convergence_synchronous`): from *every*
  configuration of the full product state space, the synchronous
  execution reaches an all-normal configuration within Theorem 1's
  ``3·L_max + 3`` rounds and the clean SBN configuration within the
  Theorem 3 + Theorem 4 budget.
* **Closure** (:func:`check_normal_closure`): the set of normal
  configurations is closed under *every* daemon choice — no computation
  step executed from an all-normal configuration produces an abnormal
  processor.  (This is the executable converse of Lemma 5: abnormality
  only ever flows out of existing abnormality.)

Both enumerate the complete per-node state domains, so they are
exponential in ``n``; budgets cap the work and the result reports
coverage honestly.
"""

from __future__ import annotations

import itertools
import time
from typing import Iterator

from repro.analysis import bounds
from repro.core import definitions as defs
from repro.core.pif import SnapPif
from repro.core.state import PifConstants, PifState
from repro.errors import ScheduleError, VerificationError
from repro.runtime.daemons import ReplayDaemon
from repro.runtime.network import Network
from repro.runtime.simulator import Simulator
from repro.runtime.state import Configuration
from repro.verification.model_check import (
    DEFAULT_MEMO_CAPACITY,
    Counterexample,
    ModelCheckMemo,
    ModelCheckResult,
    ModelCheckStats,
    _memo_enabled_default,
    _selections,
    _validate_default,
    apply_selection,
    node_state_domain,
    synchronous_selection,
)

__all__ = [
    "enumerate_all_configurations",
    "check_convergence_synchronous",
    "check_normal_closure",
]


def enumerate_all_configurations(
    network: Network, k: PifConstants
) -> Iterator[Configuration]:
    """Every configuration of the full product state space."""
    domains = [node_state_domain(network, k, p) for p in network.nodes]
    for states in itertools.product(*domains):
        yield Configuration(states)


def check_convergence_synchronous(
    network: Network,
    root: int = 0,
    *,
    protocol: SnapPif | None = None,
    max_configurations: int | None = None,
    stride: int = 1,
    memo: bool | None = None,
    validate_memo: bool | None = None,
) -> ModelCheckResult:
    """Theorem 1 + return-to-SBN, from every configuration, synchronously.

    ``stride`` subsamples the enumeration (every ``stride``-th
    configuration) to trade coverage for time on larger state spaces;
    ``stride=1`` is exhaustive.

    With the memo engine on (the default; same ``memo`` /
    ``validate_memo`` semantics as
    :func:`~repro.verification.model_check.check_snap_safety`) the
    synchronous trajectories step through the shared
    :class:`~repro.verification.model_check.ModelCheckMemo` — distinct
    starting configurations funnel into the same convergence suffixes,
    so each transition is computed once — and the per-configuration
    abnormality / SBN classifications are memoized per interned
    configuration.  Verdicts, counterexamples and counters are
    bit-identical to the direct simulator path (one synchronous step is
    one round, so the step count *is* the round count).
    """
    if protocol is None:
        protocol = SnapPif.for_network(network, root)
    k = protocol.constants
    if memo is None:
        memo = _memo_enabled_default()
    if validate_memo is None:
        validate_memo = _validate_default()
    engine = (
        ModelCheckMemo(
            protocol,
            network,
            capacity=DEFAULT_MEMO_CAPACITY,
            validate=validate_memo,
        )
        if memo
        else None
    )
    result = ModelCheckResult(
        property_name="convergence (synchronous): normal within 3L+3, "
        "SBN within 8L+7 + 5L+5"
    )
    stats = ModelCheckStats(
        memo_enabled=engine is not None,
        memo_capacity=DEFAULT_MEMO_CAPACITY if engine is not None else 0,
    )
    result.stats = stats
    normal_budget = bounds.normalization_bound(k.l_max)
    sbn_budget = bounds.glt_bound(k.l_max) + bounds.cycle_bound(k.l_max) + 4

    #: Interned configuration -> (is all-normal, is SBN).  Both are pure
    #: functions of the configuration, so entries never go stale; with
    #: interning the lookups hash once and hit across trajectories.
    classified: dict[Configuration, tuple[bool, bool]] = {}

    def classify(config: Configuration) -> tuple[bool, bool]:
        flags = classified.get(config)
        if flags is None:
            flags = (
                not defs.abnormal_nodes(config, network, k),
                defs.is_sbn_configuration(config, network, k),
            )
            classified[config] = flags
        return flags

    start = time.perf_counter()
    try:
        for index, config in enumerate(
            enumerate_all_configurations(network, k)
        ):
            if stride > 1 and index % stride:
                continue
            if (
                max_configurations is not None
                and result.configurations_checked >= max_configurations
            ):
                result.complete = False
                result.truncation = (
                    f"max_configurations={max_configurations} reached"
                )
                break
            result.configurations_checked += 1

            normal_round: int | None = None
            sbn_round: int | None = None
            if engine is not None:
                # Synchronous rounds == steps, so the step counter below
                # is exactly ``sim.rounds`` of the direct path.
                current = engine.interner.intern(config)
                enabled = engine.enabled_map(current)
                steps = 0
                while steps <= sbn_budget:
                    is_normal, is_sbn = classify(current)
                    if normal_round is None and is_normal:
                        normal_round = steps
                    if is_sbn:
                        sbn_round = steps
                        break
                    if not enabled:  # terminal without SBN: impossible
                        break
                    selection, signature = synchronous_selection(enabled)
                    current, dirty, _joins, _joins_key = engine.transition(
                        current, selection, signature
                    )
                    enabled = engine.successor_enabled_map(
                        enabled, current, dirty
                    )
                    steps += 1
                result.states_explored += steps
            else:
                sim = Simulator(protocol, network, configuration=config)
                while sim.rounds <= sbn_budget:
                    if normal_round is None and not defs.abnormal_nodes(
                        sim.configuration, network, k
                    ):
                        normal_round = sim.rounds
                    if defs.is_sbn_configuration(sim.configuration, network, k):
                        sbn_round = sim.rounds
                        break
                    if sim.step() is None:  # terminal without SBN: impossible
                        break
                result.states_explored += sim.steps

            if normal_round is None or normal_round > normal_budget:
                result.counterexamples.append(
                    Counterexample(
                        config,
                        (),
                        f"not all-normal within {normal_budget} rounds "
                        f"(first normal: {normal_round})",
                    )
                )
            if sbn_round is None:
                result.counterexamples.append(
                    Counterexample(
                        config, (), f"SBN not reached within {sbn_budget} rounds"
                    )
                )
            if len(result.counterexamples) >= 5:
                result.complete = False
                result.truncation = "stopped after 5 counterexamples"
                break
    finally:
        stats.elapsed_seconds = time.perf_counter() - start
        stats.states_per_second = (
            result.states_explored / stats.elapsed_seconds
            if stats.elapsed_seconds > 0
            else 0.0
        )
        if engine is not None:
            engine.fill_stats(stats)
    return result


def check_normal_closure(
    network: Network,
    root: int = 0,
    *,
    protocol: SnapPif | None = None,
    max_configurations: int | None = None,
    memo: bool | None = None,
    validate_memo: bool | None = None,
    replay_counterexamples: bool = True,
) -> ModelCheckResult:
    """No daemon choice leads from an all-normal configuration to an abnormal one.

    Enumerates every configuration, keeps the normal ones, and applies
    every possible selection one step.  With the memo engine on (the
    default; ``REPRO_MODELCHECK_MEMO=0`` disables) guard and statement
    evaluation goes through the local-view memo of
    :class:`~repro.verification.model_check.ModelCheckMemo`; the
    ``(configuration, selection)`` pairs of this sweep never recur, so
    successors bypass the transition memo entirely
    (:meth:`~repro.verification.model_check.ModelCheckMemo.successor`).
    Counterexamples are confirmed by replaying the single offending step
    through the real simulator (``replay_counterexamples``).
    """
    if protocol is None:
        protocol = SnapPif.for_network(network, root)
    k = protocol.constants
    if memo is None:
        memo = _memo_enabled_default()
    if validate_memo is None:
        validate_memo = _validate_default()
    engine = (
        ModelCheckMemo(
            protocol,
            network,
            capacity=DEFAULT_MEMO_CAPACITY,
            validate=validate_memo,
        )
        if memo
        else None
    )
    result = ModelCheckResult(property_name="closure of normal configurations")
    stats = ModelCheckStats(
        memo_enabled=engine is not None,
        memo_capacity=DEFAULT_MEMO_CAPACITY if engine is not None else 0,
    )
    result.stats = stats

    def emit(config: Configuration, step: tuple, bad: set[int]) -> None:
        counterexample = Counterexample(
            config,
            (step,),
            f"processors {sorted(bad)} abnormal after a step "
            f"from a normal configuration",
        )
        if replay_counterexamples:
            _replay_closure_counterexample(
                protocol, network, k, counterexample
            )
        result.counterexamples.append(counterexample)

    start = time.perf_counter()
    try:
        for config in enumerate_all_configurations(network, k):
            if not defs.is_normal_configuration(config, network, k):
                continue
            if (
                max_configurations is not None
                and result.configurations_checked >= max_configurations
            ):
                result.complete = False
                result.truncation = (
                    f"max_configurations={max_configurations} reached"
                )
                break
            result.configurations_checked += 1
            if engine is not None:
                config = engine.interner.intern(config)
                enabled = engine.enabled_map(config)
                for selection, step in _selections(enabled):
                    result.transitions_explored += 1
                    after, _dirty = engine.successor(config, selection)
                    bad = defs.abnormal_nodes(after, network, k)
                    if bad:
                        emit(config, step, bad)
                        if len(result.counterexamples) >= 5:
                            return result
            else:
                # One evaluation cache per configuration: the guard pass
                # and all of the exhaustive daemon's selections execute
                # against it.
                cache: dict = {}
                enabled = protocol.enabled_map(config, network, cache=cache)
                for selection, step in _selections(enabled):
                    result.transitions_explored += 1
                    after = apply_selection(
                        protocol, network, config, selection, cache=cache
                    )
                    bad = defs.abnormal_nodes(after, network, k)
                    if bad:
                        emit(config, step, bad)
                        if len(result.counterexamples) >= 5:
                            return result
    finally:
        stats.elapsed_seconds = time.perf_counter() - start
        stats.states_per_second = (
            result.transitions_explored / stats.elapsed_seconds
            if stats.elapsed_seconds > 0
            else 0.0
        )
        if engine is not None:
            engine.fill_stats(stats)
    return result


def _replay_closure_counterexample(
    protocol: SnapPif,
    network: Network,
    k: PifConstants,
    counterexample: Counterexample,
) -> None:
    """Confirm a closure counterexample by executing its one step for real.

    Runs the recorded selection through the simulator with a scripted
    daemon (which verifies every selected action is genuinely enabled)
    and re-derives the abnormal set on the resulting configuration.
    """
    (step,) = counterexample.schedule
    sim = Simulator(
        protocol,
        network,
        ReplayDaemon([dict(step)]),
        configuration=counterexample.initial,
    )
    try:
        if sim.step() is None:
            raise VerificationError(
                "closure counterexample replays to a terminal configuration"
            )
    except ScheduleError as exc:
        raise VerificationError(
            f"closure counterexample schedule is not executable: {exc}"
        ) from exc
    bad = defs.abnormal_nodes(sim.configuration, network, k)
    if not bad:
        raise VerificationError(
            "closure counterexample did not reproduce: no abnormal "
            "processor after replaying the recorded step"
        )
