"""Exhaustive convergence and closure checks on small networks.

Complements the snap-safety checker (:mod:`repro.verification.model_check`)
with the two classic stabilization obligations:

* **Convergence** (:func:`check_convergence_synchronous`): from *every*
  configuration of the full product state space, the synchronous
  execution reaches an all-normal configuration within Theorem 1's
  ``3·L_max + 3`` rounds and the clean SBN configuration within the
  Theorem 3 + Theorem 4 budget.
* **Closure** (:func:`check_normal_closure`): the set of normal
  configurations is closed under *every* daemon choice — no computation
  step executed from an all-normal configuration produces an abnormal
  processor.  (This is the executable converse of Lemma 5: abnormality
  only ever flows out of existing abnormality.)

Both enumerate the complete per-node state domains, so they are
exponential in ``n``; budgets cap the work and the result reports
coverage honestly.
"""

from __future__ import annotations

import itertools
import time
from typing import Iterator

from repro.analysis import bounds
from repro.core import definitions as defs
from repro.core.pif import SnapPif
from repro.core.state import PifConstants, PifState
from repro.errors import ScheduleError, VerificationError
from repro.runtime.daemons import ReplayDaemon
from repro.runtime.network import Network
from repro.runtime.simulator import Simulator
from repro.runtime.state import Configuration
from repro.verification.model_check import (
    DEFAULT_MEMO_CAPACITY,
    Counterexample,
    ModelCheckMemo,
    ModelCheckResult,
    ModelCheckStats,
    _memo_enabled_default,
    _resolve_parallel_jobs,
    _selections,
    _validate_default,
    apply_selection,
    merge_model_check_results,
    node_state_domain,
    synchronous_selection,
    _publish_check,
)

__all__ = [
    "enumerate_all_configurations",
    "count_all_configurations",
    "check_convergence_synchronous",
    "check_normal_closure",
]


def enumerate_all_configurations(
    network: Network, k: PifConstants
) -> Iterator[Configuration]:
    """Every configuration of the full product state space."""
    domains = [node_state_domain(network, k, p) for p in network.nodes]
    for states in itertools.product(*domains):
        yield Configuration(states)


_CONVERGENCE_PROPERTY = (
    "convergence (synchronous): normal within 3L+3, SBN within 8L+7 + 5L+5"
)


def count_all_configurations(network: Network, k: PifConstants) -> int:
    """``len(list(enumerate_all_configurations(...)))`` without the list."""
    total = 1
    for p in network.nodes:
        total *= len(node_state_domain(network, k, p))
    return total


def check_convergence_synchronous(
    network: Network,
    root: int = 0,
    *,
    protocol: SnapPif | None = None,
    protocol_factory=None,
    max_configurations: int | None = None,
    stride: int = 1,
    memo: bool | None = None,
    validate_memo: bool | None = None,
    jobs: int | None = None,
    shards: int | None = None,
    config_slice: tuple[int, int] | None = None,
    task_timeout: float | None = None,
) -> ModelCheckResult:
    """Theorem 1 + return-to-SBN, from every configuration, synchronously.

    ``stride`` subsamples the enumeration (every ``stride``-th
    configuration) to trade coverage for time on larger state spaces;
    ``stride=1`` is exhaustive.

    With the memo engine on (the default; same ``memo`` /
    ``validate_memo`` semantics as
    :func:`~repro.verification.model_check.check_snap_safety`) the
    synchronous trajectories step through the shared
    :class:`~repro.verification.model_check.ModelCheckMemo` — distinct
    starting configurations funnel into the same convergence suffixes,
    so each transition is computed once — and the per-configuration
    abnormality / SBN classifications are memoized per interned
    configuration.  Verdicts, counterexamples and counters are
    bit-identical to the direct simulator path (one synchronous step is
    one round, so the step count *is* the round count).

    ``jobs`` / ``shards`` / ``task_timeout`` shard the sweep across a
    process pool exactly like
    :func:`~repro.verification.model_check.check_snap_safety`.
    ``config_slice`` is a half-open window in *raw* enumeration index
    space (before the stride filter), so a sharded strided sweep checks
    exactly the serial stride-hit set.
    """
    if config_slice is None:
        n_jobs = _resolve_parallel_jobs(jobs)
        if n_jobs is not None:
            return _check_convergence_parallel(
                network,
                root,
                protocol=protocol,
                protocol_factory=protocol_factory,
                max_configurations=max_configurations,
                stride=stride,
                memo=memo,
                validate_memo=validate_memo,
                jobs=n_jobs,
                shards=shards,
                task_timeout=task_timeout,
            )
    if protocol is None:
        factory = protocol_factory or SnapPif.for_network
        protocol = factory(network, root)
    k = protocol.constants
    if memo is None:
        memo = _memo_enabled_default()
    if validate_memo is None:
        validate_memo = _validate_default()
    engine = (
        ModelCheckMemo(
            protocol,
            network,
            capacity=DEFAULT_MEMO_CAPACITY,
            validate=validate_memo,
        )
        if memo
        else None
    )
    result = ModelCheckResult(property_name=_CONVERGENCE_PROPERTY)
    stats = ModelCheckStats(
        memo_enabled=engine is not None,
        memo_capacity=DEFAULT_MEMO_CAPACITY if engine is not None else 0,
    )
    result.stats = stats
    normal_budget = bounds.normalization_bound(k.l_max)
    sbn_budget = bounds.glt_bound(k.l_max) + bounds.cycle_bound(k.l_max) + 4

    #: Interned configuration -> (is all-normal, is SBN).  Both are pure
    #: functions of the configuration, so entries never go stale; with
    #: interning the lookups hash once and hit across trajectories.
    classified: dict[Configuration, tuple[bool, bool]] = {}

    def classify(config: Configuration) -> tuple[bool, bool]:
        flags = classified.get(config)
        if flags is None:
            flags = (
                not defs.abnormal_nodes(config, network, k),
                defs.is_sbn_configuration(config, network, k),
            )
            classified[config] = flags
        return flags

    #: ``enumerate`` before ``islice`` keeps the *global* raw index on
    #: every item, so ``index % stride`` picks the same configurations
    #: inside a shard window as it does in the full serial sweep.
    indexed = enumerate(enumerate_all_configurations(network, k))
    if config_slice is not None:
        indexed = itertools.islice(indexed, *config_slice)

    start = time.perf_counter()
    try:
        for index, config in indexed:
            if stride > 1 and index % stride:
                continue
            if (
                max_configurations is not None
                and result.configurations_checked >= max_configurations
            ):
                result.complete = False
                result.truncation = (
                    f"max_configurations={max_configurations} reached"
                )
                break
            result.configurations_checked += 1

            normal_round: int | None = None
            sbn_round: int | None = None
            if engine is not None:
                # Synchronous rounds == steps, so the step counter below
                # is exactly ``sim.rounds`` of the direct path.
                current = engine.interner.intern(config)
                enabled = engine.enabled_map(current)
                steps = 0
                while steps <= sbn_budget:
                    is_normal, is_sbn = classify(current)
                    if normal_round is None and is_normal:
                        normal_round = steps
                    if is_sbn:
                        sbn_round = steps
                        break
                    if not enabled:  # terminal without SBN: impossible
                        break
                    selection, signature = synchronous_selection(enabled)
                    current, dirty, _joins, _joins_key = engine.transition(
                        current, selection, signature
                    )
                    enabled = engine.successor_enabled_map(
                        enabled, current, dirty
                    )
                    steps += 1
                result.states_explored += steps
            else:
                sim = Simulator(protocol, network, configuration=config)
                while sim.rounds <= sbn_budget:
                    if normal_round is None and not defs.abnormal_nodes(
                        sim.configuration, network, k
                    ):
                        normal_round = sim.rounds
                    if defs.is_sbn_configuration(sim.configuration, network, k):
                        sbn_round = sim.rounds
                        break
                    if sim.step() is None:  # terminal without SBN: impossible
                        break
                result.states_explored += sim.steps

            if normal_round is None or normal_round > normal_budget:
                result.counterexamples.append(
                    Counterexample(
                        config,
                        (),
                        f"not all-normal within {normal_budget} rounds "
                        f"(first normal: {normal_round})",
                    )
                )
            if sbn_round is None:
                result.counterexamples.append(
                    Counterexample(
                        config, (), f"SBN not reached within {sbn_budget} rounds"
                    )
                )
            if len(result.counterexamples) >= 5:
                result.complete = False
                result.truncation = "stopped after 5 counterexamples"
                break
    finally:
        stats.elapsed_seconds = time.perf_counter() - start
        stats.states_per_second = (
            result.states_explored / stats.elapsed_seconds
            if stats.elapsed_seconds > 0
            else 0.0
        )
        if engine is not None:
            engine.fill_stats(stats)
        _publish_check(result)
    return result


def _check_convergence_parallel(
    network: Network,
    root: int,
    *,
    protocol: SnapPif | None,
    protocol_factory,
    max_configurations: int | None,
    stride: int,
    memo: bool | None,
    validate_memo: bool | None,
    jobs: int,
    shards: int | None,
    task_timeout: float | None,
) -> ModelCheckResult:
    """Shard the convergence sweep over raw enumeration windows and merge.

    Sharding happens in *raw* index space: the serial sweep checks the
    stride hits ``0, s, 2s, …`` and (under ``max_configurations=M``)
    stops after ``M`` of them, i.e. it never looks past raw index
    ``(M-1)·s``.  The parallel window is therefore
    ``min(total_raw, (M-1)·s + 1)``; partitioned into contiguous raw
    ranges, the union of per-shard stride hits is exactly the serial
    stride-hit set.  The merged counterexample list is cut where the
    serial sweep's five-counterexample stop would have cut it (whole
    configurations, so the normal/SBN pair a single configuration emits
    is never split).
    """
    from repro.parallel.executor import (
        ParallelError,
        ParallelExecutor,
        chunk_ranges,
        raise_failures,
    )
    from repro.parallel.workers import convergence_shard
    from repro.verification.model_check import DEFAULT_SHARDS

    if protocol is not None and protocol_factory is None:
        raise ParallelError(
            "sharded check_convergence_synchronous cannot ship a protocol "
            "instance across the pickle boundary; pass protocol_factory= "
            "(a module-level (network, root) -> protocol callable) instead"
        )
    if stride < 1:
        raise VerificationError(f"stride must be >= 1, got {stride}")
    factory = protocol_factory or SnapPif.for_network
    k = factory(network, root).constants
    total_raw = count_all_configurations(network, k)
    if max_configurations is None:
        window = total_raw
        capped = False
    else:
        window = min(total_raw, max(0, max_configurations - 1) * stride + 1)
        capped = total_raw > max_configurations * stride
    cap_note = f"max_configurations={max_configurations} reached"

    tasks = []
    for start, stop in chunk_ranges(window, shards or DEFAULT_SHARDS):
        payload = {
            "factory": protocol_factory,
            "network": network,
            "root": root,
            "config_slice": (start, stop),
            "stride": stride,
            "memo": memo,
            "validate_memo": validate_memo,
        }
        tasks.append(((network.name, "convergence", start, stop), payload))

    if not tasks:
        result = ModelCheckResult(property_name=_CONVERGENCE_PROPERTY)
        result.stats = ModelCheckStats()
        if capped:
            result.complete = False
            result.truncation = cap_note
        return result
    executor = ParallelExecutor(
        convergence_shard, jobs=jobs, timeout=task_timeout
    )
    outcomes = executor.map(tasks)
    raise_failures(outcomes)
    merged = merge_model_check_results(
        outcomes, property_name=_CONVERGENCE_PROPERTY
    )
    if _cut_at_five_counterexamples(merged):
        return merged
    if capped:
        merged.complete = False
        merged.truncation = (
            f"{merged.truncation}; {cap_note}" if merged.truncation else cap_note
        )
    return merged


def _cut_at_five_counterexamples(merged: ModelCheckResult) -> bool:
    """Re-apply the serial five-counterexample stop to a merged sweep.

    Counterexamples arrive in enumeration order (shards merge in range
    order); the serial sweep stops after the first *configuration* whose
    counterexamples bring the running total to five or more, so the cut
    lands on a configuration boundary.  Returns True when the cut was
    applied (the merged result then matches the serial early stop,
    truncation message included).
    """
    items = merged.counterexamples
    count = 0
    i = 0
    while i < len(items):
        j = i + 1
        while j < len(items) and items[j].initial == items[i].initial:
            j += 1
        count += j - i
        if count >= 5:
            merged.counterexamples = items[:j]
            merged.complete = False
            merged.truncation = "stopped after 5 counterexamples"
            return True
        i = j
    return False


def check_normal_closure(
    network: Network,
    root: int = 0,
    *,
    protocol: SnapPif | None = None,
    max_configurations: int | None = None,
    memo: bool | None = None,
    validate_memo: bool | None = None,
    replay_counterexamples: bool = True,
) -> ModelCheckResult:
    """No daemon choice leads from an all-normal configuration to an abnormal one.

    Enumerates every configuration, keeps the normal ones, and applies
    every possible selection one step.  With the memo engine on (the
    default; ``REPRO_MODELCHECK_MEMO=0`` disables) guard and statement
    evaluation goes through the local-view memo of
    :class:`~repro.verification.model_check.ModelCheckMemo`; the
    ``(configuration, selection)`` pairs of this sweep never recur, so
    successors bypass the transition memo entirely
    (:meth:`~repro.verification.model_check.ModelCheckMemo.successor`).
    Counterexamples are confirmed by replaying the single offending step
    through the real simulator (``replay_counterexamples``).
    """
    if protocol is None:
        protocol = SnapPif.for_network(network, root)
    k = protocol.constants
    if memo is None:
        memo = _memo_enabled_default()
    if validate_memo is None:
        validate_memo = _validate_default()
    engine = (
        ModelCheckMemo(
            protocol,
            network,
            capacity=DEFAULT_MEMO_CAPACITY,
            validate=validate_memo,
        )
        if memo
        else None
    )
    result = ModelCheckResult(property_name="closure of normal configurations")
    stats = ModelCheckStats(
        memo_enabled=engine is not None,
        memo_capacity=DEFAULT_MEMO_CAPACITY if engine is not None else 0,
    )
    result.stats = stats

    def emit(config: Configuration, step: tuple, bad: set[int]) -> None:
        counterexample = Counterexample(
            config,
            (step,),
            f"processors {sorted(bad)} abnormal after a step "
            f"from a normal configuration",
        )
        if replay_counterexamples:
            _replay_closure_counterexample(
                protocol, network, k, counterexample
            )
        result.counterexamples.append(counterexample)

    start = time.perf_counter()
    try:
        for config in enumerate_all_configurations(network, k):
            if not defs.is_normal_configuration(config, network, k):
                continue
            if (
                max_configurations is not None
                and result.configurations_checked >= max_configurations
            ):
                result.complete = False
                result.truncation = (
                    f"max_configurations={max_configurations} reached"
                )
                break
            result.configurations_checked += 1
            if engine is not None:
                config = engine.interner.intern(config)
                enabled = engine.enabled_map(config)
                for selection, step in _selections(enabled):
                    result.transitions_explored += 1
                    after, _dirty = engine.successor(config, selection)
                    bad = defs.abnormal_nodes(after, network, k)
                    if bad:
                        emit(config, step, bad)
                        if len(result.counterexamples) >= 5:
                            return result
            else:
                # One evaluation cache per configuration: the guard pass
                # and all of the exhaustive daemon's selections execute
                # against it.
                cache: dict = {}
                enabled = protocol.enabled_map(config, network, cache=cache)
                for selection, step in _selections(enabled):
                    result.transitions_explored += 1
                    after = apply_selection(
                        protocol, network, config, selection, cache=cache
                    )
                    bad = defs.abnormal_nodes(after, network, k)
                    if bad:
                        emit(config, step, bad)
                        if len(result.counterexamples) >= 5:
                            return result
    finally:
        stats.elapsed_seconds = time.perf_counter() - start
        stats.states_per_second = (
            result.transitions_explored / stats.elapsed_seconds
            if stats.elapsed_seconds > 0
            else 0.0
        )
        if engine is not None:
            engine.fill_stats(stats)
        _publish_check(result)
    return result


def _replay_closure_counterexample(
    protocol: SnapPif,
    network: Network,
    k: PifConstants,
    counterexample: Counterexample,
) -> None:
    """Confirm a closure counterexample by executing its one step for real.

    Runs the recorded selection through the simulator with a scripted
    daemon (which verifies every selected action is genuinely enabled)
    and re-derives the abnormal set on the resulting configuration.
    """
    (step,) = counterexample.schedule
    sim = Simulator(
        protocol,
        network,
        ReplayDaemon([dict(step)]),
        configuration=counterexample.initial,
    )
    try:
        if sim.step() is None:
            raise VerificationError(
                "closure counterexample replays to a terminal configuration"
            )
    except ScheduleError as exc:
        raise VerificationError(
            f"closure counterexample schedule is not executable: {exc}"
        ) from exc
    bad = defs.abnormal_nodes(sim.configuration, network, k)
    if not bad:
        raise VerificationError(
            "closure counterexample did not reproduce: no abnormal "
            "processor after replaying the recorded step"
        )
