"""Exhaustive verification of the snap property on small networks.

Snap-stabilization (Definition 1) quantifies over *every* execution from
*every* configuration.  On small networks the configuration space of the
PIF protocol is finite and enumerable, so the quantifier can be checked
mechanically:

**Safety** (:func:`check_snap_safety`).  A wave the root initiates is
precisely a ``B-action`` of the root, whose guard requires the root and
all its neighbors to be in phase ``C``.  Any configuration in which such
a step can occur — whatever garbage the rest of the network holds — is
therefore an *initiation configuration*, and the set of initiation
configurations is a superset of those reachable in real executions.  The
checker enumerates all of them, then explores every execution under the
fully general distributed daemon (all non-empty subsets of enabled
processors, all action choices) while tracking wave membership exactly
like :class:`~repro.core.monitor.PifCycleMonitor`:

* a processor *receives m* when its B-action attaches to a wave member;
* it *acknowledges* when it executes its F-action as a wave member;
* when the root executes its F-action, [PIF1] and [PIF2] must hold;
* a wave member must never be demoted by a correction, and the root must
  never abort or double-start the wave.

Any violation yields a replayable counterexample (initial configuration
plus schedule); by default every counterexample is immediately replayed
through the real :class:`~repro.runtime.simulator.Simulator` with a
scripted daemon to confirm it (:func:`replay_counterexample`).

**Liveness** (:func:`check_cycle_liveness_synchronous`).  Under the
synchronous daemon the system is deterministic (given the program-order
action choice), so "every initiated wave completes" is checked by
running every initiation configuration to cycle completion within the
Theorem 4 + Theorem 3 budget.  Liveness under weakly fair asynchronous
daemons is exercised statistically by the randomized experiments (E6).

**The memo engine.**  Initiation configurations share most of their
explored cores, so after the incremental enabled maps of PR 1 the hot
path is successor computation.  :class:`ModelCheckMemo` removes the
redundancy at three layers, all exact (see docs/API.md and DESIGN.md §7):

1. an interned-configuration table — equal configurations become
   pointer-identical, so memo keys and visited-set lookups hash once and
   compare by identity;
2. a *local-view* memo — a guard/statement/``join_parent`` of processor
   ``p`` is a pure function of ``p``'s own state and its neighbors'
   states (``Context`` enforces the locally-shared-memory footprint), so
   enabled-action lists, next states and join parents are cached per
   ``(node, view)``;
3. a bounded LRU **transition memo** keyed by
   ``(configuration, selection signature)`` holding the already-computed
   ``(successor, dirty set, join parents)`` — shared across all
   initiation configurations and all first selections, so a transition
   explored from one entry path is never recomputed from another —
   plus an enabled-map-by-configuration cache for successors.

``REPRO_MODELCHECK_MEMO=0`` disables the engine;
``REPRO_MODELCHECK_VALIDATE=1`` cross-checks every memoized result
against the direct path (mirroring ``REPRO_ENGINE_VALIDATE``).

The state space grows as the product of per-node domains; the functions
take explicit budgets, terminate the whole enumeration the moment a
budget is exhausted, and report exactly what was covered
(:attr:`ModelCheckResult.truncation`).
"""

from __future__ import annotations

import itertools
import os
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Iterator, Mapping, Sequence

from repro import telemetry as _telemetry
from repro.analysis import bounds
from repro.core.monitor import PifCycleMonitor
from repro.core.pif import SnapPif
from repro.core.state import Phase, PifConstants, PifState
from repro.errors import ScheduleError, VerificationError
from repro.runtime.daemons import ReplayDaemon
from repro.runtime.network import Network
from repro.runtime.protocol import Action, Context
from repro.runtime.simulator import Simulator
from repro.runtime.state import Configuration, InternTable
from repro.runtime.trace import StepRecord

__all__ = [
    "WaveTag",
    "Counterexample",
    "ModelCheckResult",
    "ModelCheckStats",
    "ModelCheckMemo",
    "DEFAULT_MEMO_CAPACITY",
    "DEFAULT_SHARDS",
    "node_state_domain",
    "enumerate_initiation_configurations",
    "count_initiation_configurations",
    "merge_model_check_results",
    "apply_selection",
    "apply_selection_dirty",
    "check_snap_safety",
    "check_cycle_liveness_synchronous",
    "synchronous_selection",
    "run_synchronous_memo",
    "replay_counterexample",
]

#: Default bound on cached transitions (and cached successor enabled
#: maps) in :class:`ModelCheckMemo` — keeps memory predictable on
#: ``max_states``-scale runs; evictions are counted in the stats.
DEFAULT_MEMO_CAPACITY = 262_144

#: Safety valve on the total number of local-view memo entries.  View
#: domains are products of tiny per-node state domains, so this is
#: effectively never hit on the graph sizes the exhaustive checker can
#: cover; if it is, the view tables are cleared wholesale.
DEFAULT_VIEW_CAPACITY = 1_048_576

#: Default shard count for the parallel sweeps.  Shards partition the
#: *enumeration*, not the workers: the partition depends only on the
#: workload, so the same sweep run with 1, 2 or 4 workers produces
#: bit-identical shard results and therefore bit-identical merged
#: results (see DESIGN.md §9).
DEFAULT_SHARDS = 8


def _memo_enabled_default() -> bool:
    """``REPRO_MODELCHECK_MEMO=0`` is the escape hatch; anything else is on."""
    return os.environ.get("REPRO_MODELCHECK_MEMO", "") != "0"


def _resolve_parallel_jobs(jobs: int | None) -> int | None:
    """Late-bound :func:`repro.parallel.executor.resolve_jobs` (no cycle)."""
    from repro.parallel.executor import resolve_jobs

    return resolve_jobs(jobs)


def _validate_default() -> bool:
    return os.environ.get("REPRO_MODELCHECK_VALIDATE", "") not in ("", "0")


# ----------------------------------------------------------------------
# State enumeration
# ----------------------------------------------------------------------
def node_state_domain(
    network: Network,
    k: PifConstants,
    node: int,
    *,
    phases: Sequence[Phase] = (Phase.B, Phase.F, Phase.C),
) -> list[PifState]:
    """All states of ``node`` over the full variable domains."""
    counts = range(1, k.n_prime + 1)
    foks = (False, True)
    states = []
    if node == k.root:
        for pif, count, fok in itertools.product(phases, counts, foks):
            states.append(
                PifState(pif=pif, par=None, level=0, count=count, fok=fok)
            )
        return states
    pars = network.neighbors(node)
    levels = range(1, k.l_max + 1)
    for pif, par, level, count, fok in itertools.product(
        phases, pars, levels, counts, foks
    ):
        states.append(
            PifState(pif=pif, par=par, level=level, count=count, fok=fok)
        )
    return states


def enumerate_initiation_configurations(
    network: Network, k: PifConstants
) -> Iterator[Configuration]:
    """All configurations in which the root's ``Broadcast`` guard holds.

    The root and each of its neighbors are in phase ``C`` (with all
    combinations of their remaining variables); every other processor
    ranges over its full state domain.
    """
    root_neighbors = set(network.neighbors(k.root))
    domains: list[list[PifState]] = []
    for p in network.nodes:
        if p == k.root or p in root_neighbors:
            domains.append(node_state_domain(network, k, p, phases=(Phase.C,)))
        else:
            domains.append(node_state_domain(network, k, p))
    for states in itertools.product(*domains):
        yield Configuration(states)


def count_initiation_configurations(network: Network, k: PifConstants) -> int:
    """``len(list(enumerate_initiation_configurations(...)))`` in O(n).

    The enumeration is a cartesian product of per-node domains, so its
    size is the product of the domain sizes — computable without
    materializing a single configuration.  The parallel sweeps use this
    to partition the enumeration index space into contiguous shards.
    """
    root_neighbors = set(network.neighbors(k.root))
    total = 1
    for p in network.nodes:
        if p == k.root or p in root_neighbors:
            total *= len(node_state_domain(network, k, p, phases=(Phase.C,)))
        else:
            total *= len(node_state_domain(network, k, p))
    return total


# ----------------------------------------------------------------------
# Transition machinery
# ----------------------------------------------------------------------
def apply_selection(
    protocol: SnapPif,
    network: Network,
    configuration: Configuration,
    selection: dict[int, Action],
    *,
    cache: dict | None = None,
) -> Configuration:
    """Execute one computation step: all selected actions against ``configuration``.

    ``cache`` is an optional per-``configuration`` evaluation cache
    (macro memo table) shared across the many selections the exhaustive
    daemon executes against the same configuration.
    """
    after, _dirty = apply_selection_dirty(
        protocol, network, configuration, selection, cache=cache
    )
    return after


def apply_selection_dirty(
    protocol: SnapPif,
    network: Network,
    configuration: Configuration,
    selection: dict[int, Action],
    *,
    cache: dict | None = None,
) -> tuple[Configuration, set[int]]:
    """Like :func:`apply_selection`, also returning the set of nodes whose
    state actually changed (no-op writes excluded) — the dirty set for
    :meth:`~repro.runtime.protocol.Protocol.enabled_map_incremental`.

    Delegates to :meth:`~repro.runtime.protocol.Protocol.execute_selection`,
    whose ``next_state`` hook is how :class:`ModelCheckMemo` substitutes
    local-view lookups for direct statement execution.
    """
    return protocol.execute_selection(
        configuration, network, selection, cache=cache
    )


@dataclass(frozen=True, slots=True)
class WaveTag:
    """Monitor state carried alongside a configuration during exploration.

    ``members`` is the set of processors that received ``m`` (the root's
    wave tree, provenance-tracked); ``acked`` the members whose F-action
    has fired; ``feedback_done`` whether the root has fed back.

    The hash is cached like :class:`~repro.core.state.PifState`'s: every
    visited-set and frontier membership test hashes the tag.
    """

    members: frozenset[int]
    acked: frozenset[int]
    feedback_done: bool
    _hash: int | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def __hash__(self) -> int:
        h = self._hash
        if h is None:
            h = hash((self.members, self.acked, self.feedback_done))
            object.__setattr__(self, "_hash", h)
        return h

    def advance(
        self,
        protocol: SnapPif,
        network: Network,
        before: Configuration,
        selection: dict[int, Action],
        *,
        joins: Mapping[int, int | None] | None = None,
        step: tuple[tuple[int, str], ...] | None = None,
    ) -> tuple["WaveTag | None", str | None]:
        """Update the tag across one step.

        Returns ``(new_tag, violation)``.  ``new_tag`` is ``None`` when
        the wave is over (root's C-action after feedback).  ``violation``
        is a message when a snap condition failed in this step.

        ``joins`` optionally supplies the precomputed join parent for
        every non-root B-action in ``selection`` (the only
        configuration-dependent input of the advance, memoized by the
        transition memo); without it the parent is derived from
        ``before`` directly.  ``step`` optionally supplies ``selection``
        as the already-sorted ``((node, action name), ...)`` signature
        so the advance need not re-sort it.
        """
        root = protocol.root
        n = network.n
        members = set(self.members)
        acked = set(self.acked)
        feedback_done = self.feedback_done

        if step is None:
            step = tuple(
                sorted((p, a.name) for p, a in selection.items())
            )
        for node, name in step:
            if node == root:
                if name == "F-action":
                    if len(members) != n:
                        return self, (
                            f"[PIF1] root fed back with only "
                            f"{len(members)}/{n} processors reached"
                        )
                    if len(acked) != n - 1:
                        return self, (
                            f"[PIF2] root fed back with only "
                            f"{len(acked)}/{n - 1} acknowledgments"
                        )
                    feedback_done = True
                elif name == "C-action":
                    if feedback_done:
                        return None, None  # cycle complete
                    return self, "root cleaned without feeding back"
                elif name == "B-correction":
                    return self, "root aborted the initiated wave"
                elif name == "B-action":
                    return self, "root re-broadcast inside an open cycle"
            else:
                if name == "B-action":
                    if joins is None:
                        parent = protocol.join_parent(
                            Context(node, network, before)
                        )
                    else:
                        parent = joins[node]
                    if parent in members:
                        members.add(node)
                elif name == "F-action":
                    if node in members:
                        acked.add(node)
                elif name in ("B-correction", "F-correction"):
                    if node in members:
                        return self, (
                            f"wave member {node} demoted by {name}"
                        )
        return (
            WaveTag(frozenset(members), frozenset(acked), feedback_done),
            None,
        )


@dataclass(frozen=True, slots=True)
class Counterexample:
    """A violating execution: initial configuration plus schedule."""

    initial: Configuration
    schedule: tuple[tuple[tuple[int, str], ...], ...]
    message: str

    def pretty(self) -> str:
        lines = [f"violation: {self.message}", "schedule:"]
        for i, step in enumerate(self.schedule):
            moves = ", ".join(f"{p}:{a}" for p, a in step)
            lines.append(f"  step {i}: {moves}")
        return "\n".join(lines)


@dataclass
class ModelCheckStats:
    """Instrumentation of one exhaustive check (attached to the result).

    ``memo_*`` counters cover the transition memo, ``view_*`` the
    local-view guard/statement/join memo; ``intern_hits`` counts
    configuration-intern lookups resolved to an existing object.
    """

    memo_enabled: bool = False
    memo_hits: int = 0
    memo_misses: int = 0
    memo_evictions: int = 0
    memo_entries: int = 0
    memo_capacity: int = 0
    view_hits: int = 0
    view_misses: int = 0
    view_evictions: int = 0
    interned_configurations: int = 0
    intern_hits: int = 0
    #: Largest per-first-selection schedule-reconstruction table (one
    #: compact ``(parent id, step)`` entry per discovered state).
    peak_parent_entries: int = 0
    elapsed_seconds: float = 0.0
    states_per_second: float = 0.0

    @property
    def memo_hit_rate(self) -> float:
        total = self.memo_hits + self.memo_misses
        return self.memo_hits / total if total else 0.0

    @property
    def view_hit_rate(self) -> float:
        total = self.view_hits + self.view_misses
        return self.view_hits / total if total else 0.0

    @property
    def interning_ratio(self) -> float:
        """Fraction of intern lookups that deduplicated to an existing object."""
        total = self.intern_hits + self.interned_configurations
        return self.intern_hits / total if total else 0.0


@dataclass
class ModelCheckResult:
    """Outcome of an exhaustive check."""

    property_name: str
    configurations_checked: int = 0
    states_explored: int = 0
    transitions_explored: int = 0
    counterexamples: list[Counterexample] = field(default_factory=list)
    #: True when every enumerated configuration was fully explored
    #: within the budgets.
    complete: bool = True
    #: When a budget stopped the enumeration, where and why (``None``
    #: for a fully completed check).
    truncation: str | None = None
    #: Memo/interning/throughput instrumentation for the checkers that
    #: collect it (``None`` otherwise).
    stats: ModelCheckStats | None = None

    @property
    def ok(self) -> bool:
        return not self.counterexamples

    def raise_on_failure(self) -> None:
        """Raise :class:`~repro.errors.VerificationError` on any counterexample."""
        if self.counterexamples:
            raise VerificationError(
                f"{self.property_name}: "
                f"{len(self.counterexamples)} counterexample(s); first:\n"
                f"{self.counterexamples[0].pretty()}"
            )


# ----------------------------------------------------------------------
# The memo engine
# ----------------------------------------------------------------------
_MISS = object()


class _LruCache:
    """Bounded mapping with LRU eviction and hit/miss/eviction counters.

    The counters are :class:`repro.telemetry.Counter` objects (slotted,
    bumped via ``.value += 1`` — the same cost as a plain int
    attribute), so the memo's instrumentation *is* its telemetry:
    :meth:`ModelCheckMemo.fill_stats` copies ``.value`` onto the public
    :class:`ModelCheckStats` ints, and :func:`_publish_check` folds the
    same numbers into the active telemetry registry when enabled.
    """

    __slots__ = ("capacity", "hits", "misses", "evictions", "_data")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.hits = _telemetry.Counter("modelcheck.memo.hits")
        self.misses = _telemetry.Counter("modelcheck.memo.misses")
        self.evictions = _telemetry.Counter("modelcheck.memo.evictions")
        self._data: OrderedDict = OrderedDict()

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key):
        value = self._data.get(key, _MISS)
        if value is _MISS:
            self.misses.value += 1
            return None
        self._data.move_to_end(key)
        self.hits.value += 1
        return value

    def put(self, key, value) -> None:
        data = self._data
        if key in data:
            data.move_to_end(key)
            data[key] = value
            return
        data[key] = value
        if len(data) > self.capacity:
            data.popitem(last=False)
            self.evictions.value += 1


class ModelCheckMemo:
    """Global, bounded memoization shared across a whole exhaustive check.

    Everything cached here is a pure function of a configuration (or of
    a node's 1-hop view of one), so entries stay valid for the lifetime
    of the ``(protocol, network)`` pair regardless of the path that
    reached a configuration — the soundness argument is spelled out in
    DESIGN.md §7.  ``validate=True`` re-derives every memoized answer
    through the direct path and raises
    :class:`~repro.errors.VerificationError` on any divergence.
    """

    def __init__(
        self,
        protocol: SnapPif,
        network: Network,
        *,
        capacity: int = DEFAULT_MEMO_CAPACITY,
        view_capacity: int = DEFAULT_VIEW_CAPACITY,
        validate: bool = False,
    ) -> None:
        self.protocol = protocol
        self.network = network
        self.validate = validate
        self.interner = InternTable()
        #: ``(configuration, selection signature) -> (successor, dirty, joins)``
        self.transitions = _LruCache(capacity)
        self._nodes = tuple(network.nodes)
        self._neighbors = {p: network.neighbors(p) for p in self._nodes}
        self._root = protocol.root
        #: Per-node read footprint: the node itself plus its neighbors,
        #: as one index tuple so a view is a single C-level ``map``.
        self._view_idx = {
            p: (p, *network.neighbors(p)) for p in self._nodes
        }
        self._enabled_views: dict[int, dict] = {p: {} for p in self._nodes}
        #: ``node -> action name -> {view: next state}`` — nested so the
        #: hot lookup hashes a cached string instead of building a
        #: ``(name, view)`` tuple per call.
        self._next_views: dict[int, dict[str, dict]] = {
            p: {a.name: {} for a in protocol.node_actions(p, network)}
            for p in self._nodes
        }
        self._join_views: dict[int, dict] = {p: {} for p in self._nodes}
        #: ``(tag, step, join parents) -> (new tag, violation)`` — the
        #: wave-tag advance is a pure function of those three inputs
        #: once the join parents are pinned, and the cached result
        #: canonicalizes tag objects (one object per distinct tag value,
        #: so visited-set members hash once and compare by identity).
        self._advance_cache: dict = {}
        self.view_capacity = view_capacity
        # Telemetry-backed counters: hot paths bump ``.value`` directly
        # (one attribute store — see repro.telemetry), fill_stats reads
        # ``.value`` back onto the public ModelCheckStats ints.
        self.view_hits = _telemetry.Counter("modelcheck.view.hits")
        self.view_misses = _telemetry.Counter("modelcheck.view.misses")
        self.view_evictions = _telemetry.Counter("modelcheck.view.evictions")
        self._view_entries = 0

    # -- local views ----------------------------------------------------
    def _view(self, configuration: Configuration, node: int) -> tuple:
        """The 1-hop state tuple a guard/statement at ``node`` can read."""
        return tuple(
            map(configuration.states.__getitem__, self._view_idx[node])
        )

    def _note_view_entry(self) -> None:
        self._view_entries += 1
        if self._view_entries > self.view_capacity:
            for family in (self._enabled_views, self._join_views):
                for table in family.values():
                    table.clear()
            for per_action in self._next_views.values():
                for table in per_action.values():
                    table.clear()
            self._advance_cache.clear()
            self.view_evictions.value += self._view_entries
            self._view_entries = 0

    def enabled_actions(
        self, configuration: Configuration, node: int
    ) -> list[Action]:
        """Enabled actions of ``node``, memoized on its local view."""
        view = self._view(configuration, node)
        table = self._enabled_views[node]
        actions = table.get(view, _MISS)
        if actions is not _MISS:
            self.view_hits.value += 1
            return actions
        self.view_misses.value += 1
        actions = self.protocol.enabled_actions(
            configuration, self.network, node, cache={}
        )
        table[view] = actions
        self._note_view_entry()
        return actions

    def next_state(self, configuration: Configuration, node: int, action: Action):
        """Result of ``action``'s statement at ``node``, memoized on its view."""
        view = self._view(configuration, node)
        table = self._next_views[node][action.name]
        state = table.get(view, _MISS)
        if state is not _MISS:
            self.view_hits.value += 1
            return state
        self.view_misses.value += 1
        state = action.execute(Context(node, self.network, configuration, {}))
        table[view] = state
        self._note_view_entry()
        return state

    def join_parent(self, configuration: Configuration, node: int) -> int | None:
        """``protocol.join_parent`` memoized on the node's local view."""
        view = self._view(configuration, node)
        table = self._join_views[node]
        parent = table.get(view, _MISS)
        if parent is not _MISS:
            self.view_hits.value += 1
            return parent
        self.view_misses.value += 1
        parent = self.protocol.join_parent(
            Context(node, self.network, configuration)
        )
        table[view] = parent
        self._note_view_entry()
        return parent

    # -- enabled maps ---------------------------------------------------
    def enabled_map(self, configuration: Configuration) -> dict[int, list[Action]]:
        """Full enabled map via the view memo (ascending node order)."""
        enabled: dict[int, list[Action]] = {}
        for node in self._nodes:
            actions = self.enabled_actions(configuration, node)
            if actions:
                enabled[node] = actions
        if self.validate:
            self._check_enabled(configuration, enabled, "full enabled map")
        return enabled

    def successor_enabled_map(
        self,
        prev_enabled: dict[int, list[Action]],
        configuration: Configuration,
        dirty,
    ) -> dict[int, list[Action]]:
        """Enabled map of a successor: an incremental dirty-region update
        through the view memo (same region argument as
        :meth:`~repro.runtime.protocol.Protocol.enabled_map_incremental`,
        same ascending node order)."""
        affected = set(dirty)
        for p in tuple(affected):
            affected.update(self._neighbors[p])
        if affected:
            enabled: dict[int, list[Action]] = {}
            for node in self._nodes:
                if node in affected:
                    actions = self.enabled_actions(configuration, node)
                    if actions:
                        enabled[node] = actions
                else:
                    prev = prev_enabled.get(node)
                    if prev is not None:
                        enabled[node] = prev
        else:
            enabled = dict(prev_enabled)
        if self.validate:
            self._check_enabled(
                configuration, enabled, "incremental enabled map"
            )
        return enabled

    # -- transitions ----------------------------------------------------
    def transition(
        self,
        configuration: Configuration,
        selection: dict[int, Action],
        signature: tuple,
    ) -> tuple[Configuration, frozenset[int], dict[int, int | None]]:
        """Memoized ``(successor, dirty set, join parents)`` of one step.

        ``signature`` is the canonical ``((node, action name), ...)``
        tuple of ``selection`` — the same object the checker uses as the
        schedule step.  The join parents (the only configuration-
        dependent input of :meth:`WaveTag.advance`) are stored for every
        non-root B-action so a hit needs no guard, statement or macro
        evaluation at all.
        """
        key = (configuration, signature)
        entry = self.transitions.get(key)
        if entry is None:
            # Inlined single pass over the selection (the semantics of
            # Protocol.execute_selection with the memoized next_state
            # hook): next states and join parents come from the view
            # memo; no-op writes stay out of the dirty set.
            states = configuration.states
            root = self._root
            updates: dict[int, PifState] = {}
            joins: dict[int, int | None] = {}
            for p, action in selection.items():
                state = self.next_state(configuration, p, action)
                if state != states[p]:
                    updates[p] = state
                if p != root and action.name == "B-action":
                    joins[p] = self.join_parent(configuration, p)
            after = self.interner.intern(configuration.replace(updates))
            entry = (after, updates, joins, tuple(joins.items()))
            self.transitions.put(key, entry)
        if self.validate:
            self._check_transition(configuration, selection, entry)
        return entry

    def advance(
        self,
        tag: WaveTag,
        configuration: Configuration,
        selection: dict[int, Action],
        step: tuple,
        joins: dict[int, int | None],
        joins_key: tuple,
    ) -> tuple["WaveTag | None", str | None]:
        """Memoized :meth:`WaveTag.advance`.

        With the join parents pinned by the transition memo, the advance
        is a pure function of ``(tag, step, joins)`` — the configuration
        is never consulted.  Beyond skipping recomputation, the cache
        canonicalizes the resulting tag objects, so visited-set members
        built from them hash once and usually compare by identity.
        """
        key = (tag, step, joins_key)
        cached = self._advance_cache.get(key, _MISS)
        if cached is not _MISS:
            self.view_hits.value += 1
            return cached
        self.view_misses.value += 1
        cached = tag.advance(
            self.protocol,
            self.network,
            configuration,
            selection,
            joins=joins,
            step=step,
        )
        self._advance_cache[key] = cached
        self._note_view_entry()
        return cached

    def successor(
        self, configuration: Configuration, selection: dict[int, Action]
    ) -> tuple[Configuration, set[int]]:
        """Successor via the view memo, without a transition-memo entry.

        Used by sweeps (e.g. the normal-closure checker) whose
        ``(configuration, selection)`` pairs never recur, where storing
        them would only churn the LRU.
        """
        after, dirty = self.protocol.execute_selection(
            configuration,
            self.network,
            selection,
            next_state=lambda p, a: self.next_state(configuration, p, a),
        )
        return self.interner.intern(after), dirty

    # -- validation + stats ---------------------------------------------
    def _check_enabled(
        self, configuration: Configuration, enabled: dict, where: str
    ) -> None:
        full = self.protocol.enabled_map(configuration, self.network)
        if full != enabled or list(full) != list(enabled):
            raise VerificationError(
                f"memoized {where} diverged from the direct path: "
                f"memo={ {p: [a.name for a in v] for p, v in enabled.items()} } "
                f"direct={ {p: [a.name for a in v] for p, v in full.items()} }"
            )

    def _check_transition(
        self, configuration: Configuration, selection: dict, entry: tuple
    ) -> None:
        after, dirty, joins, _joins_key = entry
        direct_after, direct_dirty = self.protocol.execute_selection(
            configuration, self.network, selection, cache={}
        )
        direct_joins = {
            p: self.protocol.join_parent(
                Context(p, self.network, configuration)
            )
            for p, action in selection.items()
            if p != self._root and action.name == "B-action"
        }
        if (
            after != direct_after
            or set(dirty) != direct_dirty
            or joins != direct_joins
        ):
            raise VerificationError(
                f"memoized transition diverged from the direct path for "
                f"selection "
                f"{sorted((p, a.name) for p, a in selection.items())}"
            )

    def fill_stats(self, stats: ModelCheckStats) -> None:
        """Copy the engine's counters onto a stats block."""
        stats.memo_hits = self.transitions.hits.value
        stats.memo_misses = self.transitions.misses.value
        stats.memo_evictions = self.transitions.evictions.value
        stats.memo_entries = len(self.transitions)
        stats.memo_capacity = self.transitions.capacity
        stats.view_hits = self.view_hits.value
        stats.view_misses = self.view_misses.value
        stats.view_evictions = self.view_evictions.value
        stats.interned_configurations = len(self.interner)
        stats.intern_hits = self.interner.hits


def _publish_check(result: ModelCheckResult) -> None:
    """Fold a finished check's counters into the telemetry registry.

    Called from the serial exploration paths only: the sharded sweeps
    run their shards through the serial path inside worker processes
    whose registries the executor captures and merges in shard order, so
    publishing the parent's merged result as well would double-count.
    The published keys are deterministic functions of the workload
    (wall time lands in a ``*.seconds`` histogram, which the
    deterministic snapshot view excludes).
    """
    if not _telemetry.enabled:
        return
    reg = _telemetry.registry
    base = f"check.{result.property_name}"
    reg.inc(f"{base}.runs")
    reg.inc(f"{base}.configurations_checked", result.configurations_checked)
    reg.inc(f"{base}.states_explored", result.states_explored)
    reg.inc(f"{base}.transitions_explored", result.transitions_explored)
    reg.inc(f"{base}.counterexamples", len(result.counterexamples))
    stats = result.stats
    if stats is None:
        return
    reg.inc("modelcheck.memo.hits", stats.memo_hits)
    reg.inc("modelcheck.memo.misses", stats.memo_misses)
    reg.inc("modelcheck.memo.evictions", stats.memo_evictions)
    reg.inc("modelcheck.view.hits", stats.view_hits)
    reg.inc("modelcheck.view.misses", stats.view_misses)
    reg.inc("modelcheck.view.evictions", stats.view_evictions)
    reg.inc("modelcheck.interned_configurations",
            stats.interned_configurations)
    reg.inc("modelcheck.intern_hits", stats.intern_hits)
    reg.observe(
        f"{base}.elapsed{_telemetry.TIMING_SUFFIX}",
        stats.elapsed_seconds,
        _telemetry.TIME_BOUNDS,
    )


# ----------------------------------------------------------------------
# Shard merging (parallel sweeps)
# ----------------------------------------------------------------------
def merge_model_check_results(
    results: Sequence[ModelCheckResult],
    *,
    property_name: str | None = None,
    stop_at_first: bool = False,
) -> ModelCheckResult:
    """Merge per-shard results in stable shard order.

    ``results`` must be ordered by shard (i.e. by enumeration range), so
    counterexamples concatenate in enumeration order and the merged
    result is a deterministic function of the shard results alone —
    independent of which worker computed which shard, and therefore of
    the worker count.  Counters sum; ``complete`` holds only when every
    shard completed; shard truncations are aggregated into one message.
    With ``stop_at_first`` only the earliest shard's counterexample is
    kept (each shard stopped at its own first, and shards earlier in
    enumeration order that returned none genuinely have none — so the
    survivor is exactly the serial sweep's first counterexample).

    Timing fields (``elapsed_seconds`` summed across shards,
    ``states_per_second`` derived) are the only merged values that are
    not bit-deterministic.
    """
    if not results:
        raise ValueError("merge_model_check_results needs at least one shard")
    merged = ModelCheckResult(
        property_name=property_name or results[0].property_name
    )
    stats = ModelCheckStats()
    merged.stats = stats
    truncations: list[str] = []
    for index, shard in enumerate(results):
        merged.configurations_checked += shard.configurations_checked
        merged.states_explored += shard.states_explored
        merged.transitions_explored += shard.transitions_explored
        merged.counterexamples.extend(shard.counterexamples)
        if not shard.complete:
            merged.complete = False
            if shard.truncation:
                truncations.append(f"shard {index}: {shard.truncation}")
        s = shard.stats
        if s is None:
            continue
        stats.memo_enabled = stats.memo_enabled or s.memo_enabled
        stats.memo_hits += s.memo_hits
        stats.memo_misses += s.memo_misses
        stats.memo_evictions += s.memo_evictions
        stats.memo_entries += s.memo_entries
        stats.memo_capacity = max(stats.memo_capacity, s.memo_capacity)
        stats.view_hits += s.view_hits
        stats.view_misses += s.view_misses
        stats.view_evictions += s.view_evictions
        stats.interned_configurations += s.interned_configurations
        stats.intern_hits += s.intern_hits
        stats.peak_parent_entries = max(
            stats.peak_parent_entries, s.peak_parent_entries
        )
        stats.elapsed_seconds += s.elapsed_seconds
    if stop_at_first and merged.counterexamples:
        merged.counterexamples = merged.counterexamples[:1]
    if truncations:
        merged.truncation = "; ".join(truncations)
    stats.states_per_second = (
        merged.states_explored / stats.elapsed_seconds
        if stats.elapsed_seconds > 0
        else 0.0
    )
    return merged


def _shard_tasks(
    network: Network,
    root: int,
    worker_kind: str,
    total: int,
    shards: int | None,
    protocol_factory,
    common: dict,
) -> list[tuple[tuple, dict]]:
    """Build ``(key, payload)`` tasks for a sharded enumeration sweep.

    The shard count defaults to :data:`DEFAULT_SHARDS` and is clamped to
    the workload — crucially it never depends on the worker count, so
    the shard results (and their merge) are identical for any ``jobs``.
    """
    from repro.parallel.executor import chunk_ranges

    ranges = chunk_ranges(total, shards or DEFAULT_SHARDS)
    tasks = []
    for start, stop in ranges:
        payload = {
            "factory": protocol_factory,
            "network": network,
            "root": root,
            "config_slice": (start, stop),
            **common,
        }
        tasks.append(((network.name, worker_kind, start, stop), payload))
    return tasks


# ----------------------------------------------------------------------
# Safety: exhaustive over all daemon choices
# ----------------------------------------------------------------------
def _selections(
    enabled: dict[int, list[Action]]
) -> Iterator[tuple[dict[int, Action], tuple[tuple[int, str], ...]]]:
    """Every daemon choice: non-empty node subsets × per-node action choices.

    Yields ``(selection, step)`` where ``step`` is the canonical sorted
    ``((node, action name), ...)`` signature of the selection — built
    here, where the subset is already in ascending order, so the hot
    loops never re-sort it.  The signature doubles as the transition
    memo key component and the schedule step.
    """
    nodes = sorted(enabled)
    for size in range(1, len(nodes) + 1):
        for subset in itertools.combinations(nodes, size):
            for combo in itertools.product(*(enabled[p] for p in subset)):
                yield (
                    dict(zip(subset, combo)),
                    tuple((p, a.name) for p, a in zip(subset, combo)),
                )


def _initiation_selections(
    enabled: dict[int, list[Action]], root: int, root_action: Action
) -> Iterator[
    tuple[
        dict[int, Action],
        tuple[tuple[int, str], ...],
        tuple[tuple[int, str], ...],
    ]
]:
    """The daemon choices containing the root's initiating action.

    Equivalent to filtering :func:`_selections` down to the selections
    in which the root executes ``root_action``, without materializing
    the discarded ones.  Yields ``(selection, step, rest_step)`` with
    ``step`` the full sorted signature and ``rest_step`` the signature
    without the root's entry (the portion a :meth:`WaveTag.advance` of
    the initiating step consumes).
    """
    others = sorted(p for p in enabled if p != root)
    root_pair = (root, root_action.name)
    for size in range(0, len(others) + 1):
        for subset in itertools.combinations(others, size):
            split = sum(1 for p in subset if p < root)
            for combo in itertools.product(*(enabled[p] for p in subset)):
                selection = dict(zip(subset, combo))
                selection[root] = root_action
                rest_step = tuple(
                    (p, a.name) for p, a in zip(subset, combo)
                )
                step = (
                    rest_step[:split] + (root_pair,) + rest_step[split:]
                )
                yield selection, step, rest_step


def check_snap_safety(
    network: Network,
    root: int = 0,
    *,
    protocol: SnapPif | None = None,
    protocol_factory: "Callable[[Network, int], SnapPif] | None" = None,
    max_configurations: int | None = None,
    max_states: int = 5_000_000,
    stop_at_first: bool = True,
    memo: bool | None = None,
    memo_capacity: int = DEFAULT_MEMO_CAPACITY,
    validate_memo: bool | None = None,
    replay_counterexamples: bool = True,
    jobs: int | None = None,
    shards: int | None = None,
    config_slice: tuple[int, int] | None = None,
    task_timeout: float | None = None,
) -> ModelCheckResult:
    """Exhaustively verify PIF1/PIF2 safety for every initiated wave.

    Explores, for every initiation configuration (optionally capped),
    every execution of the initiated wave under all daemon choices.
    States are memoized globally across initial configurations — the
    tagged state ``(configuration, wave tag)`` fully determines the
    future, so each is explored once — and, with the memo engine on
    (the default), so are transitions: a ``(configuration, selection)``
    pair reached from any entry path reuses the cached successor, dirty
    set, join parents and successor enabled map (see
    :class:`ModelCheckMemo`).  The memoized and direct paths visit
    identical states and transitions and return identical results.

    ``memo`` defaults to the ``REPRO_MODELCHECK_MEMO`` environment
    variable (``0`` disables); ``validate_memo`` to
    ``REPRO_MODELCHECK_VALIDATE`` (cross-check every memoized answer
    against the direct path).  When a budget (``max_states`` /
    ``max_configurations``) is exhausted the *whole* enumeration stops
    immediately and :attr:`ModelCheckResult.truncation` records where.
    With ``replay_counterexamples`` (the default) every counterexample
    is confirmed through :func:`replay_counterexample` before being
    reported.

    ``jobs`` shards the sweep across a process pool (``None`` falls back
    to the ``REPRO_JOBS`` environment variable, then to the classic
    single-sweep path): the enumeration index space is partitioned into
    ``shards`` contiguous worker-owned DFS partitions whose union is the
    serial enumeration, each worker owns a fresh :class:`ModelCheckMemo`
    and visited set, ``max_states`` is split evenly across the shards,
    and the merged result (see :func:`merge_model_check_results`) is a
    deterministic function of the shard partition alone — bit-identical
    for any ``jobs`` ≥ 1, and verdict/counterexample-identical to the
    serial sweep.  Cross-shard visited-set dedup is lost, so the merged
    ``states_explored`` may exceed the serial count; the soundness
    argument is DESIGN.md §9.  In sharded mode use ``protocol_factory``
    (module-level ``(network, root) -> SnapPif``) rather than a
    ``protocol`` instance (instances do not cross the pickle boundary).
    ``config_slice`` restricts the sweep to a half-open window of the
    enumeration index space — it is how workers receive their shard, and
    it forces the serial path.
    """
    if config_slice is None:
        n_jobs = _resolve_parallel_jobs(jobs)
        if n_jobs is not None:
            return _check_snap_safety_parallel(
                network,
                root,
                protocol=protocol,
                protocol_factory=protocol_factory,
                max_configurations=max_configurations,
                max_states=max_states,
                stop_at_first=stop_at_first,
                memo=memo,
                memo_capacity=memo_capacity,
                validate_memo=validate_memo,
                replay_counterexamples=replay_counterexamples,
                jobs=n_jobs,
                shards=shards,
                task_timeout=task_timeout,
            )
    if protocol is None:
        factory = protocol_factory or SnapPif.for_network
        protocol = factory(network, root)
    k = protocol.constants
    if memo is None:
        memo = _memo_enabled_default()
    if validate_memo is None:
        validate_memo = _validate_default()
    engine = (
        ModelCheckMemo(
            protocol, network, capacity=memo_capacity, validate=validate_memo
        )
        if memo
        else None
    )
    result = ModelCheckResult(property_name="snap-safety (PIF1 ∧ PIF2)")
    stats = ModelCheckStats(
        memo_enabled=engine is not None,
        memo_capacity=memo_capacity if engine is not None else 0,
    )
    result.stats = stats

    visited: set[tuple[Configuration, WaveTag]] = set()
    root_b_action = protocol.node_actions(root, network)[0]
    assert root_b_action.name == "B-action"

    def out_of_budget() -> bool:
        """Whole-enumeration budget guard: once ``max_states`` is spent,
        no further initiation-step work happens anywhere."""
        if result.states_explored < max_states:
            return False
        if result.truncation is None:
            result.complete = False
            result.truncation = (
                f"max_states={max_states} exhausted after "
                f"{result.configurations_checked} initiation "
                f"configuration(s); enumeration terminated"
            )
        return True

    def emit(counterexample: Counterexample) -> None:
        if replay_counterexamples:
            replay_counterexample(network, counterexample, protocol=protocol)
        result.counterexamples.append(counterexample)

    def explore() -> None:
        # The tag of every freshly initiated wave: only the root is a
        # member, nothing acknowledged, no feedback yet.
        tag0 = WaveTag(frozenset({root}), frozenset(), False)
        config_iter = enumerate_initiation_configurations(network, k)
        if config_slice is not None:
            config_iter = itertools.islice(config_iter, *config_slice)
        for config in config_iter:
            if (
                max_configurations is not None
                and result.configurations_checked >= max_configurations
            ):
                result.complete = False
                result.truncation = (
                    f"max_configurations={max_configurations} reached"
                )
                return
            if out_of_budget():
                return
            result.configurations_checked += 1

            # The initiating step: the root's B-action fires, alone or
            # with any other enabled processors.  Successor enabled maps
            # are derived incrementally from the predecessor's map and
            # the step's dirty set — guard evaluation cost scales with
            # the 1-hop neighborhood of the changed nodes instead of
            # with the network.
            if engine is not None:
                config = engine.interner.intern(config)
                enabled = engine.enabled_map(config)
                init_cache: dict | None = None
            else:
                init_cache = {}
                enabled = protocol.enabled_map(config, network, cache=init_cache)
            assert root in enabled and root_b_action in enabled[root]

            for first, first_step, rest_step in _initiation_selections(
                enabled, root, root_b_action
            ):
                if out_of_budget():
                    return
                # The root's own B-action in this step *is* the
                # initiation; only the other selected processors
                # (``rest_step``) are advanced against it.
                rest = {p: a for p, a in first.items() if p != root}
                if engine is not None:
                    after, dirty, joins, joins_key = engine.transition(
                        config, first, first_step
                    )
                    if rest:
                        tag, violation = engine.advance(
                            tag0, config, rest, rest_step, joins, joins_key
                        )
                    else:
                        tag, violation = tag0, None
                else:
                    if rest:
                        tag, violation = tag0.advance(
                            protocol, network, config, rest, step=rest_step
                        )
                    else:
                        tag, violation = tag0, None
                    after, dirty = apply_selection_dirty(
                        protocol, network, config, first, cache=init_cache
                    )
                if violation is not None:
                    emit(Counterexample(config, (first_step,), violation))
                    if stop_at_first:
                        return
                    continue
                assert tag is not None  # the wave cannot finish on step one

                start_state = (after, tag)
                if engine is not None:
                    if start_state in visited:
                        # The entire subtree behind this initiation step
                        # was already explored from another entry path —
                        # the cross-initiation dedup the memo is for.
                        continue
                    after_enabled = engine.successor_enabled_map(
                        enabled, after, dirty
                    )
                else:
                    after_enabled = protocol.enabled_map_incremental(
                        enabled, after, network, dirty, cache={}
                    )

                # Schedule-reconstruction data, compact: states are
                # numbered in discovery order and each holds one
                # ``(parent id, step)`` pair; with interned
                # configurations the step tuples are the only per-state
                # payload.  Both tables are dropped as soon as this
                # first-selection's DFS finishes — the only moment a
                # schedule can still be requested from them.
                parent_steps: list[tuple[int, tuple]] = [(-1, first_step)]
                discovered: set[tuple[Configuration, WaveTag]] = {start_state}
                stack: list[
                    tuple[Configuration, WaveTag, dict[int, list[Action]], int]
                ] = [(after, tag, after_enabled, 0)]

                while stack:
                    if out_of_budget():
                        return
                    current, current_tag, current_enabled, state_id = (
                        stack.pop()
                    )
                    state = (current, current_tag)
                    if state in visited:
                        continue
                    visited.add(state)
                    result.states_explored += 1
                    # One evaluation cache for everything executed
                    # against ``current`` (direct path only — the memo
                    # engine keys evaluations by local view instead).
                    step_cache: dict | None = {} if engine is None else None
                    for selection, step in _selections(current_enabled):
                        result.transitions_explored += 1
                        if engine is not None:
                            nxt_config, nxt_dirty, joins, joins_key = (
                                engine.transition(current, selection, step)
                            )
                            new_tag, violation = engine.advance(
                                current_tag, current, selection, step,
                                joins, joins_key,
                            )
                        else:
                            new_tag, violation = current_tag.advance(
                                protocol, network, current, selection,
                                step=step,
                            )
                        if violation is not None:
                            schedule = _reconstruct(
                                parent_steps, state_id
                            ) + (step,)
                            emit(Counterexample(config, schedule, violation))
                            if stop_at_first:
                                return
                            continue
                        if new_tag is None:
                            continue  # cycle completed cleanly on this path
                        if engine is None:
                            nxt_config, nxt_dirty = apply_selection_dirty(
                                protocol,
                                network,
                                current,
                                selection,
                                cache=step_cache,
                            )
                        nxt = (nxt_config, new_tag)
                        if nxt in visited or nxt in discovered:
                            continue
                        if engine is not None:
                            nxt_enabled = engine.successor_enabled_map(
                                current_enabled, nxt_config, nxt_dirty
                            )
                        else:
                            nxt_enabled = protocol.enabled_map_incremental(
                                current_enabled,
                                nxt_config,
                                network,
                                nxt_dirty,
                                cache={},
                            )
                        discovered.add(nxt)
                        nxt_id = len(parent_steps)
                        parent_steps.append((state_id, step))
                        stack.append(
                            (nxt_config, new_tag, nxt_enabled, nxt_id)
                        )
                if len(parent_steps) > stats.peak_parent_entries:
                    stats.peak_parent_entries = len(parent_steps)

    start = time.perf_counter()
    try:
        explore()
    finally:
        stats.elapsed_seconds = time.perf_counter() - start
        stats.states_per_second = (
            result.states_explored / stats.elapsed_seconds
            if stats.elapsed_seconds > 0
            else 0.0
        )
        if engine is not None:
            engine.fill_stats(stats)
        _publish_check(result)
    return result


def _check_snap_safety_parallel(
    network: Network,
    root: int,
    *,
    protocol: SnapPif | None,
    protocol_factory,
    max_configurations: int | None,
    max_states: int,
    stop_at_first: bool,
    memo: bool | None,
    memo_capacity: int,
    validate_memo: bool | None,
    replay_counterexamples: bool,
    jobs: int,
    shards: int | None,
    task_timeout: float | None,
) -> ModelCheckResult:
    """Shard the safety sweep into worker-owned DFS partitions and merge.

    The partition covers exactly the first ``min(total,
    max_configurations)`` enumeration indices — the same set the serial
    sweep checks — split into contiguous ranges whose count depends only
    on the workload (never on ``jobs``).  Each shard receives an even
    split of the ``max_states`` budget, so the sharded sweep never
    explores more than the serial budget and a shard that exhausts its
    share truncates honestly (``complete=False`` on the merge).
    """
    from repro.parallel.executor import (
        ParallelError,
        ParallelExecutor,
        raise_failures,
    )
    from repro.parallel.workers import snap_safety_shard

    if protocol is not None and protocol_factory is None:
        raise ParallelError(
            "sharded check_snap_safety cannot ship a protocol instance "
            "across the pickle boundary; pass protocol_factory= (a "
            "module-level (network, root) -> SnapPif callable) instead"
        )
    factory = protocol_factory or SnapPif.for_network
    k = factory(network, root).constants
    total = count_initiation_configurations(network, k)
    effective = (
        total if max_configurations is None else min(total, max_configurations)
    )
    tasks = _shard_tasks(
        network,
        root,
        "snap-safety",
        effective,
        shards,
        protocol_factory,
        {
            "max_states": max(1, max_states // max(1, shards or DEFAULT_SHARDS)),
            "stop_at_first": stop_at_first,
            "memo": memo,
            "memo_capacity": memo_capacity,
            "validate_memo": validate_memo,
            "replay_counterexamples": replay_counterexamples,
        },
    )
    if not tasks:
        result = ModelCheckResult(property_name="snap-safety (PIF1 ∧ PIF2)")
        result.stats = ModelCheckStats()
        if effective < total:
            result.complete = False
            result.truncation = (
                f"max_configurations={max_configurations} reached"
            )
        return result
    executor = ParallelExecutor(
        snap_safety_shard, jobs=jobs, timeout=task_timeout
    )
    outcomes = executor.map(tasks)
    raise_failures(outcomes)
    merged = merge_model_check_results(
        outcomes,
        property_name="snap-safety (PIF1 ∧ PIF2)",
        stop_at_first=stop_at_first,
    )
    if effective < total:
        merged.complete = False
        cap_note = f"max_configurations={max_configurations} reached"
        merged.truncation = (
            f"{merged.truncation}; {cap_note}" if merged.truncation else cap_note
        )
    return merged


def _check_sharded_sweep(
    network: Network,
    root: int,
    *,
    worker_kind: str,
    protocol: SnapPif | None,
    protocol_factory,
    max_configurations: int | None,
    jobs: int,
    shards: int | None,
    task_timeout: float | None,
    property_name: str,
    common: dict,
    counterexample_cap: int = 5,
) -> ModelCheckResult:
    """Shard a per-configuration sweep over initiation configurations.

    Shared by the cycle-liveness parallel path (and structured so the
    convergence sweep in :mod:`repro.verification.convergence` follows
    the same recipe): partition the first ``min(total,
    max_configurations)`` enumeration indices into contiguous shards
    whose count depends only on the workload, run each shard through the
    serial single-sweep path, and merge in shard order.  The merged
    counterexample list is capped at ``counterexample_cap`` — the serial
    sweeps stop at five counterexamples, and because shards are merged
    in enumeration order the capped list is exactly the serial one.
    """
    from repro.parallel.executor import (
        ParallelError,
        ParallelExecutor,
        raise_failures,
    )
    from repro.parallel import workers as _workers

    worker = {
        "cycle-liveness": _workers.liveness_shard,
    }[worker_kind]
    if protocol is not None and protocol_factory is None:
        raise ParallelError(
            f"sharded {worker_kind} sweep cannot ship a protocol instance "
            "across the pickle boundary; pass protocol_factory= (a "
            "module-level (network, root) -> protocol callable) instead"
        )
    factory = protocol_factory or SnapPif.for_network
    k = factory(network, root).constants
    total = count_initiation_configurations(network, k)
    effective = (
        total if max_configurations is None else min(total, max_configurations)
    )
    tasks = _shard_tasks(
        network, root, worker_kind, effective, shards, protocol_factory, common
    )
    capped = effective < total
    cap_note = f"max_configurations={max_configurations} reached"
    if not tasks:
        result = ModelCheckResult(property_name=property_name)
        result.stats = ModelCheckStats()
        if capped:
            result.complete = False
            result.truncation = cap_note
        return result
    executor = ParallelExecutor(worker, jobs=jobs, timeout=task_timeout)
    outcomes = executor.map(tasks)
    raise_failures(outcomes)
    merged = merge_model_check_results(outcomes, property_name=property_name)
    if len(merged.counterexamples) > counterexample_cap:
        merged.counterexamples = merged.counterexamples[:counterexample_cap]
    if capped:
        merged.complete = False
        merged.truncation = (
            f"{merged.truncation}; {cap_note}" if merged.truncation else cap_note
        )
    return merged


def _reconstruct(
    parent_steps: list[tuple[int, tuple]], state_id: int
) -> tuple:
    """Walk the compact id-based parent table back to the first step."""
    steps: list[tuple] = []
    cursor = state_id
    while cursor != -1:
        cursor, step = parent_steps[cursor]
        steps.append(step)
    return tuple(reversed(steps))


# ----------------------------------------------------------------------
# Counterexample replay
# ----------------------------------------------------------------------
def replay_counterexample(
    network: Network,
    counterexample: Counterexample,
    *,
    protocol: SnapPif | None = None,
    root: int = 0,
) -> str:
    """Re-execute a counterexample through the real simulator and confirm it.

    The schedule is replayed with a scripted daemon
    (:class:`~repro.runtime.daemons.ReplayDaemon`) from the
    counterexample's initial configuration — which proves every selected
    action is genuinely enabled when scheduled — and the resulting trace
    is walked with :meth:`WaveTag.advance` (direct evaluation, no memo)
    to confirm the recorded PIF1/PIF2 violation occurs on the final
    step.  This is the guard against a (hypothetically stale) memoized
    transition producing a schedule that does not actually execute.

    Returns the reproduced violation message; raises
    :class:`~repro.errors.VerificationError` when the schedule is not
    executable or reproduces a different outcome.
    """
    if protocol is None:
        protocol = SnapPif.for_network(network, root)
    ce = counterexample
    if not ce.schedule:
        raise VerificationError(
            "counterexample has an empty schedule; nothing to replay"
        )
    schedule = [dict(step) for step in ce.schedule]
    sim = Simulator(
        protocol,
        network,
        ReplayDaemon(schedule),
        configuration=ce.initial,
        trace_level="configurations",
    )
    try:
        for _ in schedule:
            if sim.step() is None:
                raise VerificationError(
                    "counterexample schedule reached a terminal "
                    "configuration before completing"
                )
    except ScheduleError as exc:
        raise VerificationError(
            f"counterexample schedule is not executable: {exc}"
        ) from exc

    actions = {
        p: {a.name: a for a in protocol.node_actions(p, network)}
        for p in network.nodes
    }
    configs = sim.trace.configurations()
    root_id = protocol.root
    tag: WaveTag | None = None
    violation: str | None = None
    for record in sim.trace:
        before = configs[record.index]
        selection = {
            p: actions[p][name] for p, name in record.selection.items()
        }
        if tag is None:
            if record.selection.get(root_id) != "B-action":
                raise VerificationError(
                    "counterexample schedule does not start with the "
                    "root's B-action"
                )
            tag = WaveTag(frozenset({root_id}), frozenset(), False)
            rest = {p: a for p, a in selection.items() if p != root_id}
            if rest:
                tag, violation = tag.advance(protocol, network, before, rest)
        else:
            tag, violation = tag.advance(protocol, network, before, selection)
        if violation is not None or tag is None:
            break
    if violation != ce.message:
        raise VerificationError(
            f"counterexample did not reproduce: recorded "
            f"{ce.message!r}, replay produced {violation!r}"
        )
    return violation


# ----------------------------------------------------------------------
# Liveness under the synchronous daemon
# ----------------------------------------------------------------------
def synchronous_selection(
    enabled: dict[int, list[Action]]
) -> tuple[dict[int, Action], tuple[tuple[int, str], ...]]:
    """The synchronous daemon's deterministic choice on an enabled map.

    Every enabled processor fires its first enabled action (program
    order — exactly :class:`~repro.runtime.daemons.SynchronousDaemon`
    with the default ``action_policy="first"``).  Returns ``(selection,
    signature)`` with the signature in ascending node order — the order
    :meth:`ModelCheckMemo.enabled_map` and
    :meth:`ModelCheckMemo.successor_enabled_map` guarantee — so it can
    key the transition memo directly.
    """
    selection = {p: actions[0] for p, actions in enabled.items()}
    signature = tuple((p, actions[0].name) for p, actions in enabled.items())
    return selection, signature


def run_synchronous_memo(
    engine: ModelCheckMemo,
    configuration: Configuration,
    *,
    max_steps: int,
    monitor: PifCycleMonitor | None = None,
    stop: "Callable[[Configuration], bool] | None" = None,
) -> tuple[Configuration, int]:
    """Synchronous execution driven entirely through the memo engine.

    Replicates :meth:`~repro.runtime.simulator.Simulator.run` under the
    synchronous daemon step for step: ``stop`` is evaluated on the
    current configuration *before* each step, a terminal configuration
    ends the run, and each step feeds the optional ``monitor`` a
    synthesized :class:`~repro.runtime.trace.StepRecord` with
    ``rounds_completed=1`` (one synchronous step is exactly one round —
    every pending processor is selected, so the round closes every
    step).  Returns ``(final configuration, steps executed)``.
    """
    config = engine.interner.intern(configuration)
    if monitor is not None:
        monitor.on_start(config)
    enabled = engine.enabled_map(config)
    steps = 0
    while True:
        if stop is not None and stop(config):
            break
        if not enabled or steps >= max_steps:
            break
        selection, signature = synchronous_selection(enabled)
        after, dirty, _joins, _joins_key = engine.transition(
            config, selection, signature
        )
        if monitor is not None:
            record = StepRecord(
                index=steps,
                selection={p: a.name for p, a in selection.items()},
                rounds_completed=1,
                after=after,
            )
            monitor.on_step(config, record, after)
        enabled = engine.successor_enabled_map(enabled, after, dirty)
        config = after
        steps += 1
    return config, steps


def check_cycle_liveness_synchronous(
    network: Network,
    root: int = 0,
    *,
    protocol: SnapPif | None = None,
    protocol_factory: "Callable[[Network, int], SnapPif] | None" = None,
    max_configurations: int | None = None,
    memo: bool | None = None,
    memo_capacity: int = DEFAULT_MEMO_CAPACITY,
    validate_memo: bool | None = None,
    jobs: int | None = None,
    shards: int | None = None,
    config_slice: tuple[int, int] | None = None,
    task_timeout: float | None = None,
) -> ModelCheckResult:
    """From every initiation configuration, the synchronous execution completes the cycle.

    Deterministic (program-order action choice), so one run per
    configuration suffices.  The budget is the Theorem 3 + Theorem 4
    worst case, in steps (one round per synchronous step), with slack.

    With the memo engine on (the default; same ``memo`` /
    ``validate_memo`` semantics as :func:`check_snap_safety`) the
    synchronous executions run through :func:`run_synchronous_memo`:
    initiation configurations converge onto shared suffixes, so
    transitions and enabled maps are computed once across the whole
    enumeration while a real :class:`~repro.core.monitor.PifCycleMonitor`
    consumes the synthesized step records — verdicts, counterexamples
    and counters are bit-identical to the direct simulator path.

    ``jobs`` / ``shards`` / ``config_slice`` / ``task_timeout`` shard
    the sweep exactly like :func:`check_snap_safety`.  Each per-
    configuration run is deterministic and the step counts do not depend
    on the memo engine, so the sharded sweep's merged coverage counters
    (not just its verdicts) match the serial sweep whenever neither path
    stops early on counterexamples.
    """
    if config_slice is None:
        n_jobs = _resolve_parallel_jobs(jobs)
        if n_jobs is not None:
            return _check_sharded_sweep(
                network,
                root,
                worker_kind="cycle-liveness",
                protocol=protocol,
                protocol_factory=protocol_factory,
                max_configurations=max_configurations,
                jobs=n_jobs,
                shards=shards,
                task_timeout=task_timeout,
                property_name="cycle-liveness (synchronous)",
                common={
                    "memo": memo,
                    "memo_capacity": memo_capacity,
                    "validate_memo": validate_memo,
                },
            )
    if protocol is None:
        factory = protocol_factory or SnapPif.for_network
        protocol = factory(network, root)
    k = protocol.constants
    if memo is None:
        memo = _memo_enabled_default()
    if validate_memo is None:
        validate_memo = _validate_default()
    engine = (
        ModelCheckMemo(
            protocol, network, capacity=memo_capacity, validate=validate_memo
        )
        if memo
        else None
    )
    result = ModelCheckResult(property_name="cycle-liveness (synchronous)")
    stats = ModelCheckStats(
        memo_enabled=engine is not None,
        memo_capacity=memo_capacity if engine is not None else 0,
    )
    result.stats = stats
    budget = bounds.glt_bound(k.l_max) + bounds.cycle_bound(k.l_max) + 8

    config_iter: Iterator[Configuration] = enumerate_initiation_configurations(
        network, k
    )
    if config_slice is not None:
        config_iter = itertools.islice(config_iter, *config_slice)

    start = time.perf_counter()
    try:
        for config in config_iter:
            if (
                max_configurations is not None
                and result.configurations_checked >= max_configurations
            ):
                result.complete = False
                result.truncation = (
                    f"max_configurations={max_configurations} reached"
                )
                break
            result.configurations_checked += 1
            monitor = PifCycleMonitor(protocol, network)
            if engine is not None:
                _final, steps = run_synchronous_memo(
                    engine,
                    config,
                    max_steps=budget,
                    monitor=monitor,
                    stop=lambda _c: len(monitor.completed_cycles) >= 1,
                )
                result.states_explored += steps
            else:
                sim = Simulator(
                    protocol, network, configuration=config, monitors=[monitor]
                )
                sim.run(
                    until=lambda _c: len(monitor.completed_cycles) >= 1,
                    max_steps=budget,
                )
                result.states_explored += sim.steps
            cycles = monitor.completed_cycles
            if not cycles:
                result.counterexamples.append(
                    Counterexample(
                        config, (), "initiated wave did not complete in budget"
                    )
                )
                if len(result.counterexamples) >= 5:
                    break
            elif not cycles[0].ok:
                result.counterexamples.append(
                    Counterexample(config, (), "; ".join(cycles[0].violations))
                )
                if len(result.counterexamples) >= 5:
                    break
    finally:
        stats.elapsed_seconds = time.perf_counter() - start
        stats.states_per_second = (
            result.states_explored / stats.elapsed_seconds
            if stats.elapsed_seconds > 0
            else 0.0
        )
        if engine is not None:
            engine.fill_stats(stats)
        _publish_check(result)
    return result
