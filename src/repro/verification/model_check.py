"""Exhaustive verification of the snap property on small networks.

Snap-stabilization (Definition 1) quantifies over *every* execution from
*every* configuration.  On small networks the configuration space of the
PIF protocol is finite and enumerable, so the quantifier can be checked
mechanically:

**Safety** (:func:`check_snap_safety`).  A wave the root initiates is
precisely a ``B-action`` of the root, whose guard requires the root and
all its neighbors to be in phase ``C``.  Any configuration in which such
a step can occur — whatever garbage the rest of the network holds — is
therefore an *initiation configuration*, and the set of initiation
configurations is a superset of those reachable in real executions.  The
checker enumerates all of them, then explores every execution under the
fully general distributed daemon (all non-empty subsets of enabled
processors, all action choices) while tracking wave membership exactly
like :class:`~repro.core.monitor.PifCycleMonitor`:

* a processor *receives m* when its B-action attaches to a wave member;
* it *acknowledges* when it executes its F-action as a wave member;
* when the root executes its F-action, [PIF1] and [PIF2] must hold;
* a wave member must never be demoted by a correction, and the root must
  never abort or double-start the wave.

Any violation yields a replayable counterexample (initial configuration
plus schedule).

**Liveness** (:func:`check_cycle_liveness_synchronous`).  Under the
synchronous daemon the system is deterministic (given the program-order
action choice), so "every initiated wave completes" is checked by
running every initiation configuration to cycle completion within the
Theorem 4 + Theorem 3 budget.  Liveness under weakly fair asynchronous
daemons is exercised statistically by the randomized experiments (E6).

The state space grows as the product of per-node domains; the functions
take explicit budgets and report exactly what was covered.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.analysis import bounds
from repro.core.monitor import PifCycleMonitor
from repro.core.pif import SnapPif
from repro.core.state import Phase, PifConstants, PifState
from repro.errors import VerificationError
from repro.runtime.network import Network
from repro.runtime.protocol import Action, Context
from repro.runtime.simulator import Simulator
from repro.runtime.state import Configuration

__all__ = [
    "WaveTag",
    "Counterexample",
    "ModelCheckResult",
    "node_state_domain",
    "enumerate_initiation_configurations",
    "apply_selection",
    "apply_selection_dirty",
    "check_snap_safety",
    "check_cycle_liveness_synchronous",
]


# ----------------------------------------------------------------------
# State enumeration
# ----------------------------------------------------------------------
def node_state_domain(
    network: Network,
    k: PifConstants,
    node: int,
    *,
    phases: Sequence[Phase] = (Phase.B, Phase.F, Phase.C),
) -> list[PifState]:
    """All states of ``node`` over the full variable domains."""
    counts = range(1, k.n_prime + 1)
    foks = (False, True)
    states = []
    if node == k.root:
        for pif, count, fok in itertools.product(phases, counts, foks):
            states.append(
                PifState(pif=pif, par=None, level=0, count=count, fok=fok)
            )
        return states
    pars = network.neighbors(node)
    levels = range(1, k.l_max + 1)
    for pif, par, level, count, fok in itertools.product(
        phases, pars, levels, counts, foks
    ):
        states.append(
            PifState(pif=pif, par=par, level=level, count=count, fok=fok)
        )
    return states


def enumerate_initiation_configurations(
    network: Network, k: PifConstants
) -> Iterator[Configuration]:
    """All configurations in which the root's ``Broadcast`` guard holds.

    The root and each of its neighbors are in phase ``C`` (with all
    combinations of their remaining variables); every other processor
    ranges over its full state domain.
    """
    root_neighbors = set(network.neighbors(k.root))
    domains: list[list[PifState]] = []
    for p in network.nodes:
        if p == k.root or p in root_neighbors:
            domains.append(node_state_domain(network, k, p, phases=(Phase.C,)))
        else:
            domains.append(node_state_domain(network, k, p))
    for states in itertools.product(*domains):
        yield Configuration(states)


# ----------------------------------------------------------------------
# Transition machinery
# ----------------------------------------------------------------------
def apply_selection(
    protocol: SnapPif,
    network: Network,
    configuration: Configuration,
    selection: dict[int, Action],
    *,
    cache: dict | None = None,
) -> Configuration:
    """Execute one computation step: all selected actions against ``configuration``.

    ``cache`` is an optional per-``configuration`` evaluation cache
    (macro memo table) shared across the many selections the exhaustive
    daemon executes against the same configuration.
    """
    after, _dirty = apply_selection_dirty(
        protocol, network, configuration, selection, cache=cache
    )
    return after


def apply_selection_dirty(
    protocol: SnapPif,
    network: Network,
    configuration: Configuration,
    selection: dict[int, Action],
    *,
    cache: dict | None = None,
) -> tuple[Configuration, set[int]]:
    """Like :func:`apply_selection`, also returning the set of nodes whose
    state actually changed (no-op writes excluded) — the dirty set for
    :meth:`~repro.runtime.protocol.Protocol.enabled_map_incremental`."""
    updates = {}
    for p, action in selection.items():
        state = action.execute(Context(p, network, configuration, cache))
        if state != configuration[p]:
            updates[p] = state
    return configuration.replace(updates), set(updates)


@dataclass(frozen=True, slots=True)
class WaveTag:
    """Monitor state carried alongside a configuration during exploration.

    ``members`` is the set of processors that received ``m`` (the root's
    wave tree, provenance-tracked); ``acked`` the members whose F-action
    has fired; ``feedback_done`` whether the root has fed back.
    """

    members: frozenset[int]
    acked: frozenset[int]
    feedback_done: bool

    def advance(
        self,
        protocol: SnapPif,
        network: Network,
        before: Configuration,
        selection: dict[int, Action],
    ) -> tuple["WaveTag | None", str | None]:
        """Update the tag across one step.

        Returns ``(new_tag, violation)``.  ``new_tag`` is ``None`` when
        the wave is over (root's C-action after feedback).  ``violation``
        is a message when a snap condition failed in this step.
        """
        root = protocol.root
        n = network.n
        members = set(self.members)
        acked = set(self.acked)
        feedback_done = self.feedback_done

        for node, action in sorted(selection.items()):
            name = action.name
            if node == root:
                if name == "F-action":
                    if len(members) != n:
                        return self, (
                            f"[PIF1] root fed back with only "
                            f"{len(members)}/{n} processors reached"
                        )
                    if len(acked) != n - 1:
                        return self, (
                            f"[PIF2] root fed back with only "
                            f"{len(acked)}/{n - 1} acknowledgments"
                        )
                    feedback_done = True
                elif name == "C-action":
                    if feedback_done:
                        return None, None  # cycle complete
                    return self, "root cleaned without feeding back"
                elif name == "B-correction":
                    return self, "root aborted the initiated wave"
                elif name == "B-action":
                    return self, "root re-broadcast inside an open cycle"
            else:
                if name == "B-action":
                    parent = protocol.join_parent(
                        Context(node, network, before)
                    )
                    if parent in members:
                        members.add(node)
                elif name == "F-action":
                    if node in members:
                        acked.add(node)
                elif name in ("B-correction", "F-correction"):
                    if node in members:
                        return self, (
                            f"wave member {node} demoted by {name}"
                        )
        return (
            WaveTag(frozenset(members), frozenset(acked), feedback_done),
            None,
        )


@dataclass(frozen=True, slots=True)
class Counterexample:
    """A violating execution: initial configuration plus schedule."""

    initial: Configuration
    schedule: tuple[tuple[tuple[int, str], ...], ...]
    message: str

    def pretty(self) -> str:
        lines = [f"violation: {self.message}", "schedule:"]
        for i, step in enumerate(self.schedule):
            moves = ", ".join(f"{p}:{a}" for p, a in step)
            lines.append(f"  step {i}: {moves}")
        return "\n".join(lines)


@dataclass
class ModelCheckResult:
    """Outcome of an exhaustive check."""

    property_name: str
    configurations_checked: int = 0
    states_explored: int = 0
    transitions_explored: int = 0
    counterexamples: list[Counterexample] = field(default_factory=list)
    #: True when every enumerated configuration was fully explored
    #: within the budgets.
    complete: bool = True

    @property
    def ok(self) -> bool:
        return not self.counterexamples

    def raise_on_failure(self) -> None:
        """Raise :class:`~repro.errors.VerificationError` on any counterexample."""
        if self.counterexamples:
            raise VerificationError(
                f"{self.property_name}: "
                f"{len(self.counterexamples)} counterexample(s); first:\n"
                f"{self.counterexamples[0].pretty()}"
            )


# ----------------------------------------------------------------------
# Safety: exhaustive over all daemon choices
# ----------------------------------------------------------------------
def _selections(
    enabled: dict[int, list[Action]]
) -> Iterator[dict[int, Action]]:
    """Every daemon choice: non-empty node subsets × per-node action choices."""
    nodes = sorted(enabled)
    for size in range(1, len(nodes) + 1):
        for subset in itertools.combinations(nodes, size):
            for combo in itertools.product(*(enabled[p] for p in subset)):
                yield dict(zip(subset, combo))


def check_snap_safety(
    network: Network,
    root: int = 0,
    *,
    protocol: SnapPif | None = None,
    max_configurations: int | None = None,
    max_states: int = 5_000_000,
    stop_at_first: bool = True,
) -> ModelCheckResult:
    """Exhaustively verify PIF1/PIF2 safety for every initiated wave.

    Explores, for every initiation configuration (optionally capped),
    every execution of the initiated wave under all daemon choices.
    States are memoized globally across initial configurations — the
    tagged state ``(configuration, wave tag)`` fully determines the
    future, so each is explored once.
    """
    if protocol is None:
        protocol = SnapPif.for_network(network, root)
    k = protocol.constants
    result = ModelCheckResult(property_name="snap-safety (PIF1 ∧ PIF2)")

    visited: set[tuple[Configuration, WaveTag]] = set()
    root_b_action = protocol.node_actions(root, network)[0]
    assert root_b_action.name == "B-action"

    for config in enumerate_initiation_configurations(network, k):
        if (
            max_configurations is not None
            and result.configurations_checked >= max_configurations
        ):
            result.complete = False
            break
        result.configurations_checked += 1

        # The initiating step: the root's B-action fires, alone or with
        # any other enabled processors.  Successor enabled maps are
        # derived incrementally from the predecessor's map and the step's
        # dirty set — guard evaluation cost scales with the 1-hop
        # neighborhood of the changed nodes instead of with the network.
        init_cache: dict = {}
        enabled = protocol.enabled_map(config, network, cache=init_cache)
        assert root in enabled and root_b_action in enabled[root]
        for first in _selections(enabled):
            if first.get(root) is not root_b_action:
                continue
            # The root's own B-action in this step *is* the initiation;
            # only the other selected processors are advanced against it.
            tag0 = WaveTag(frozenset({root}), frozenset(), False)
            rest = {p: a for p, a in first.items() if p != root}
            if rest:
                tag, violation = tag0.advance(protocol, network, config, rest)
            else:
                tag, violation = tag0, None
            after, dirty = apply_selection_dirty(
                protocol, network, config, first, cache=init_cache
            )
            first_step = tuple(
                sorted((p, a.name) for p, a in first.items())
            )
            if violation is not None:
                result.counterexamples.append(
                    Counterexample(config, (first_step,), violation)
                )
                if stop_at_first:
                    return result
                continue
            assert tag is not None  # the wave cannot finish on step one

            after_enabled = protocol.enabled_map_incremental(
                enabled, after, network, dirty, cache={}
            )
            stack: list[
                tuple[Configuration, WaveTag, dict[int, list[Action]]]
            ] = [(after, tag, after_enabled)]
            parents: dict[
                tuple[Configuration, WaveTag],
                tuple[tuple[Configuration, WaveTag] | None, tuple],
            ] = {(after, tag): (None, first_step)}

            while stack:
                if result.states_explored >= max_states:
                    result.complete = False
                    stack.clear()
                    break
                current, current_tag, current_enabled = stack.pop()
                state = (current, current_tag)
                if state in visited:
                    continue
                visited.add(state)
                result.states_explored += 1
                # One evaluation cache for everything executed against
                # ``current`` — the exhaustive daemon applies every
                # selection to the same configuration.
                step_cache: dict = {}
                for selection in _selections(current_enabled):
                    result.transitions_explored += 1
                    new_tag, violation = current_tag.advance(
                        protocol, network, current, selection
                    )
                    step = tuple(
                        sorted((p, a.name) for p, a in selection.items())
                    )
                    if violation is not None:
                        schedule = _reconstruct(parents, state) + (step,)
                        result.counterexamples.append(
                            Counterexample(config, schedule, violation)
                        )
                        if stop_at_first:
                            return result
                        continue
                    if new_tag is None:
                        continue  # cycle completed cleanly on this path
                    nxt_config, nxt_dirty = apply_selection_dirty(
                        protocol, network, current, selection, cache=step_cache
                    )
                    nxt = (nxt_config, new_tag)
                    if nxt not in visited and nxt not in parents:
                        nxt_enabled = protocol.enabled_map_incremental(
                            current_enabled,
                            nxt_config,
                            network,
                            nxt_dirty,
                            cache={},
                        )
                        parents[nxt] = (state, step)
                        stack.append((nxt_config, new_tag, nxt_enabled))
    return result


def _reconstruct(parents: dict, state: tuple) -> tuple:
    steps: list[tuple] = []
    cursor = state
    while cursor is not None:
        parent, step = parents[cursor]
        steps.append(step)
        cursor = parent
    return tuple(reversed(steps))


# ----------------------------------------------------------------------
# Liveness under the synchronous daemon
# ----------------------------------------------------------------------
def check_cycle_liveness_synchronous(
    network: Network,
    root: int = 0,
    *,
    protocol: SnapPif | None = None,
    max_configurations: int | None = None,
) -> ModelCheckResult:
    """From every initiation configuration, the synchronous execution completes the cycle.

    Deterministic (program-order action choice), so one run per
    configuration suffices.  The budget is the Theorem 3 + Theorem 4
    worst case, in steps (one round per synchronous step), with slack.
    """
    if protocol is None:
        protocol = SnapPif.for_network(network, root)
    k = protocol.constants
    result = ModelCheckResult(property_name="cycle-liveness (synchronous)")
    budget = bounds.glt_bound(k.l_max) + bounds.cycle_bound(k.l_max) + 8

    for config in enumerate_initiation_configurations(network, k):
        if (
            max_configurations is not None
            and result.configurations_checked >= max_configurations
        ):
            result.complete = False
            break
        result.configurations_checked += 1
        monitor = PifCycleMonitor(protocol, network)
        sim = Simulator(
            protocol, network, configuration=config, monitors=[monitor]
        )
        sim.run(
            until=lambda _c: len(monitor.completed_cycles) >= 1,
            max_steps=budget,
        )
        result.states_explored += sim.steps
        cycles = monitor.completed_cycles
        if not cycles:
            result.counterexamples.append(
                Counterexample(
                    config, (), "initiated wave did not complete in budget"
                )
            )
            if len(result.counterexamples) >= 5:
                break
        elif not cycles[0].ok:
            result.counterexamples.append(
                Counterexample(config, (), "; ".join(cycles[0].violations))
            )
            if len(result.counterexamples) >= 5:
                break
    return result
