"""Exhaustive model checking of the snap property on small networks."""

from repro.verification.model_check import (
    Counterexample,
    ModelCheckMemo,
    ModelCheckResult,
    ModelCheckStats,
    WaveTag,
    apply_selection,
    apply_selection_dirty,
    check_cycle_liveness_synchronous,
    check_snap_safety,
    enumerate_initiation_configurations,
    node_state_domain,
    replay_counterexample,
)

__all__ = [
    "Counterexample",
    "ModelCheckMemo",
    "ModelCheckResult",
    "ModelCheckStats",
    "WaveTag",
    "apply_selection",
    "apply_selection_dirty",
    "check_cycle_liveness_synchronous",
    "check_snap_safety",
    "enumerate_initiation_configurations",
    "node_state_domain",
    "replay_counterexample",
]

from repro.verification.convergence import (
    check_convergence_synchronous,
    check_normal_closure,
    enumerate_all_configurations,
)

__all__ += [
    "check_convergence_synchronous",
    "check_normal_closure",
    "enumerate_all_configurations",
]
