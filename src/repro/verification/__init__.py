"""Exhaustive model checking of the snap property on small networks."""

from repro.verification.model_check import (
    Counterexample,
    ModelCheckResult,
    WaveTag,
    apply_selection,
    check_cycle_liveness_synchronous,
    check_snap_safety,
    enumerate_initiation_configurations,
    node_state_domain,
)

__all__ = [
    "Counterexample",
    "ModelCheckResult",
    "WaveTag",
    "apply_selection",
    "check_cycle_liveness_synchronous",
    "check_snap_safety",
    "enumerate_initiation_configurations",
    "node_state_domain",
]

from repro.verification.convergence import (
    check_convergence_synchronous,
    check_normal_closure,
    enumerate_all_configurations,
)

__all__ += [
    "check_convergence_synchronous",
    "check_normal_closure",
    "enumerate_all_configurations",
]
