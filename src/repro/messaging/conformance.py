"""Lockstep conformance: the transform against the shared-memory model.

DESIGN.md §13's soundness claim is executable: under the ``eager``
delivery model with no loss, a publication sent at the end of step ``k``
is applied at the start of step ``k+1`` — exactly when a shared-memory
neighbor first reads the step-``k`` write — so the message-passing run
must be *step-for-step identical* to the shared-memory run: the same
daemon selections and the same ground-truth configurations at every
step.  :func:`check_message_conformance` runs both simulators in
lockstep under the same seed and reports the first divergence.

Transient-fault events (corruption, crash/recover, topology churn) may
be injected into *both* runs — the transform syncs corrupted register
images instantly (see :meth:`~repro.messaging.MessageSimulator.
_sync_views`), so equivalence holds across fault boundaries too.  Link
faults obviously cannot be mirrored into the shared-memory run and are
rejected.

``repro verify --messaging`` runs this check as part of the standard
verification battery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.errors import MessagingError
from repro.messaging.runtime import MessageSimulator
from repro.runtime.daemons import Daemon, SynchronousDaemon
from repro.runtime.network import Network
from repro.runtime.protocol import Protocol
from repro.runtime.simulator import Simulator

__all__ = ["ConformanceMismatch", "ConformanceResult", "check_message_conformance"]


@dataclass(frozen=True)
class ConformanceMismatch:
    """First step at which the two models disagreed."""

    step: int
    what: str
    shared: object
    message: object

    def pretty(self) -> str:
        return (
            f"step {self.step}: {self.what} diverged — "
            f"shared-memory {self.shared!r} vs message-passing "
            f"{self.message!r}"
        )


@dataclass
class ConformanceResult:
    """Outcome of a lockstep conformance run."""

    ok: bool
    steps_checked: int
    complete: bool
    counterexamples: list[ConformanceMismatch] = field(default_factory=list)
    stats: object = None

    @property
    def configurations_checked(self) -> int:
        return self.steps_checked


def check_message_conformance(
    protocol: Protocol,
    network: Network,
    *,
    daemon_factory: Callable[[], Daemon] = SynchronousDaemon,
    seed: int = 0,
    max_steps: int = 200,
    events: Sequence = (),
    capacity: int | None = None,
    heartbeat: int | None = None,
) -> ConformanceResult:
    """Run shared-memory and message-passing simulators in lockstep.

    ``events`` is an optional sequence of chaos fault events (sorted by
    ``at_step``); each is applied to *both* simulators at its step.
    Only model-agnostic events qualify — an event that needs channels
    (the link-fault family) raises :class:`MessagingError` because the
    comparison would be vacuous.
    """
    shared = Simulator(
        protocol, network, daemon_factory(), seed=seed, engine="incremental"
    )
    message = MessageSimulator(
        protocol,
        network,
        daemon_factory(),
        seed=seed,
        model="eager",
        loss_rate=0.0,
        capacity=capacity,
        heartbeat=heartbeat,
    )

    queue = sorted(events, key=lambda e: e.at_step)
    for event in queue:
        if getattr(event, "link_fault", False):
            raise MessagingError(
                f"conformance cannot mirror link fault {event.kind!r} "
                f"into the shared-memory run"
            )

    mismatches: list[ConformanceMismatch] = []
    steps = 0
    complete = True
    while steps < max_steps:
        while queue and queue[0].at_step <= steps:
            event = queue.pop(0)
            _, followups_a = event.apply(shared)
            _, _ = event.apply(message)
            for extra in followups_a:
                queue.append(extra)
            queue.sort(key=lambda e: e.at_step)
        rec_shared = shared.step()
        rec_message = message.step()
        if rec_shared is None or rec_message is None:
            if (rec_shared is None) != (rec_message is None):
                mismatches.append(
                    ConformanceMismatch(
                        steps,
                        "termination",
                        "terminal" if rec_shared is None else "running",
                        "terminal" if rec_message is None else "running",
                    )
                )
            complete = rec_shared is None and rec_message is None
            break
        steps += 1
        if rec_shared.selection != rec_message.selection:
            mismatches.append(
                ConformanceMismatch(
                    steps - 1,
                    "selection",
                    rec_shared.selection,
                    rec_message.selection,
                )
            )
            break
        if shared.configuration != message.configuration:
            diff = [
                p
                for p in network.nodes
                if shared.configuration[p] != message.configuration[p]
            ]
            mismatches.append(
                ConformanceMismatch(
                    steps - 1,
                    f"configuration (nodes {diff})",
                    tuple(shared.configuration[p] for p in diff),
                    tuple(message.configuration[p] for p in diff),
                )
            )
            break
    return ConformanceResult(
        ok=not mismatches,
        steps_checked=steps,
        complete=complete and not mismatches,
        counterexamples=mismatches,
    )
