"""Lockstep conformance: the transform against the shared-memory model.

DESIGN.md §13's soundness claim is executable: under the ``eager``
delivery model with no loss, a publication sent at the end of step ``k``
is applied at the start of step ``k+1`` — exactly when a shared-memory
neighbor first reads the step-``k`` write — so the message-passing run
must be *step-for-step identical* to the shared-memory run: the same
daemon selections and the same ground-truth configurations at every
step.  :func:`check_message_conformance` runs both simulators in
lockstep under the same seed and reports the first divergence.

Transient-fault events (corruption, crash/recover, topology churn) may
be injected into *both* runs — the transform syncs corrupted register
images instantly (see :meth:`~repro.messaging.MessageSimulator.
_sync_views`), so equivalence holds across fault boundaries too.  Link
faults obviously cannot be mirrored into the shared-memory run and are
rejected.

The ``async`` delivery model holds messages for random extra steps, so
its runs are *not* step-for-step identical to shared memory and lockstep
is the wrong oracle.  What the transform still owes under async (with
no loss) is checked by ``model="async"``:

* **view authenticity** — every neighbor image a process holds is a
  state the neighbor genuinely published at some earlier point (delayed,
  never fabricated or corrupted in flight);
* **per-link monotonicity** — the applied version on each link never
  decreases (stale deliveries are discarded, reordering cannot roll a
  view back);
* **eventual consistency** — once executions stop (every process
  suppressed) and the network drains, every local view equals the
  ground truth: nothing stays stale forever under heartbeats.

``repro verify`` runs both models as part of the standard battery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.errors import MessagingError
from repro.messaging.runtime import MessageSimulator
from repro.runtime.daemons import Daemon, SynchronousDaemon
from repro.runtime.network import Network
from repro.runtime.protocol import Protocol
from repro.runtime.simulator import Simulator

__all__ = ["ConformanceMismatch", "ConformanceResult", "check_message_conformance"]


@dataclass(frozen=True)
class ConformanceMismatch:
    """First step at which the two models disagreed."""

    step: int
    what: str
    shared: object
    message: object

    def pretty(self) -> str:
        return (
            f"step {self.step}: {self.what} diverged — "
            f"shared-memory {self.shared!r} vs message-passing "
            f"{self.message!r}"
        )


@dataclass
class ConformanceResult:
    """Outcome of a lockstep conformance run."""

    ok: bool
    steps_checked: int
    complete: bool
    counterexamples: list[ConformanceMismatch] = field(default_factory=list)
    stats: object = None

    @property
    def configurations_checked(self) -> int:
        return self.steps_checked


def check_message_conformance(
    protocol: Protocol,
    network: Network,
    *,
    daemon_factory: Callable[[], Daemon] = SynchronousDaemon,
    seed: int = 0,
    max_steps: int = 200,
    events: Sequence = (),
    capacity: int | None = None,
    heartbeat: int | None = None,
    model: str = "eager",
) -> ConformanceResult:
    """Check the message-passing transform against its model's oracle.

    ``model="eager"`` (the default) runs shared-memory and
    message-passing simulators in lockstep and reports the first
    divergence — the DESIGN.md §13 equivalence.  ``model="async"`` runs
    the async-delivery simulator alone and checks the weaker contract
    delayed delivery still owes: view authenticity, per-link version
    monotonicity, and drain-to-consistency (see the module docstring).

    ``events`` is an optional sequence of chaos fault events (sorted by
    ``at_step``); under ``eager`` each is applied to *both* simulators
    at its step.  Only model-agnostic events qualify — an event that
    needs channels (the link-fault family) raises
    :class:`MessagingError` because the comparison would be vacuous.
    """
    if model == "async":
        return _check_async_conformance(
            protocol,
            network,
            daemon_factory=daemon_factory,
            seed=seed,
            max_steps=max_steps,
            events=events,
            capacity=capacity,
            heartbeat=heartbeat,
        )
    if model != "eager":
        raise MessagingError(
            f"unknown conformance model {model!r}; expected 'eager' or 'async'"
        )
    shared = Simulator(
        protocol, network, daemon_factory(), seed=seed, engine="incremental"
    )
    message = MessageSimulator(
        protocol,
        network,
        daemon_factory(),
        seed=seed,
        model="eager",
        loss_rate=0.0,
        capacity=capacity,
        heartbeat=heartbeat,
    )

    queue = sorted(events, key=lambda e: e.at_step)
    for event in queue:
        if getattr(event, "link_fault", False):
            raise MessagingError(
                f"conformance cannot mirror link fault {event.kind!r} "
                f"into the shared-memory run"
            )

    mismatches: list[ConformanceMismatch] = []
    steps = 0
    complete = True
    while steps < max_steps:
        while queue and queue[0].at_step <= steps:
            event = queue.pop(0)
            _, followups_a = event.apply(shared)
            _, _ = event.apply(message)
            for extra in followups_a:
                queue.append(extra)
            queue.sort(key=lambda e: e.at_step)
        rec_shared = shared.step()
        rec_message = message.step()
        if rec_shared is None or rec_message is None:
            if (rec_shared is None) != (rec_message is None):
                mismatches.append(
                    ConformanceMismatch(
                        steps,
                        "termination",
                        "terminal" if rec_shared is None else "running",
                        "terminal" if rec_message is None else "running",
                    )
                )
            complete = rec_shared is None and rec_message is None
            break
        steps += 1
        if rec_shared.selection != rec_message.selection:
            mismatches.append(
                ConformanceMismatch(
                    steps - 1,
                    "selection",
                    rec_shared.selection,
                    rec_message.selection,
                )
            )
            break
        if shared.configuration != message.configuration:
            diff = [
                p
                for p in network.nodes
                if shared.configuration[p] != message.configuration[p]
            ]
            mismatches.append(
                ConformanceMismatch(
                    steps - 1,
                    f"configuration (nodes {diff})",
                    tuple(shared.configuration[p] for p in diff),
                    tuple(message.configuration[p] for p in diff),
                )
            )
            break
    return ConformanceResult(
        ok=not mismatches,
        steps_checked=steps,
        complete=complete and not mismatches,
        counterexamples=mismatches,
    )


def _check_async_conformance(
    protocol: Protocol,
    network: Network,
    *,
    daemon_factory: Callable[[], Daemon],
    seed: int,
    max_steps: int,
    events: Sequence,
    capacity: int | None,
    heartbeat: int | None,
) -> ConformanceResult:
    """Async-model contract: authentic, monotone, eventually consistent."""
    message = MessageSimulator(
        protocol,
        network,
        daemon_factory(),
        seed=seed,
        model="async",
        loss_rate=0.0,
        capacity=capacity,
        heartbeat=heartbeat,
    )

    queue = sorted(events, key=lambda e: e.at_step)
    for event in queue:
        if getattr(event, "link_fault", False):
            raise MessagingError(
                f"conformance cannot check link fault {event.kind!r}: it "
                f"breaks the no-loss premise of the async contract"
            )

    # Every ground-truth state each process has ever held — the set a
    # delayed-but-authentic neighbor image must come from.  Fault events
    # (corruption, churn re-domaining) legitimately rewrite truth, so
    # the history is refreshed after each event too.
    history: dict[int, set] = {
        p: {message.configuration[p]} for p in network.nodes
    }

    def record_truth() -> None:
        config = message.configuration
        for p in message.network.nodes:
            history[p].add(config[p])

    floors = dict(message._applied)
    mismatches: list[ConformanceMismatch] = []
    steps = 0

    def check_invariants() -> None:
        config_net = message.network
        for v in config_net.nodes:
            view = message.view(v)
            for u, state in view.items():
                if u == v:
                    continue
                if state not in history[u]:
                    mismatches.append(
                        ConformanceMismatch(
                            steps,
                            f"view authenticity (link ({u}, {v}))",
                            f"some state {u} actually published",
                            state,
                        )
                    )
                    return
        for link, version in message._applied.items():
            floor = floors.get(link)
            if floor is not None and version < floor:
                mismatches.append(
                    ConformanceMismatch(
                        steps,
                        f"version monotonicity (link {link})",
                        floor,
                        version,
                    )
                )
                return
            floors[link] = version

    while steps < max_steps:
        while queue and queue[0].at_step <= steps:
            event = queue.pop(0)
            _, followups = event.apply(message)
            for extra in followups:
                queue.append(extra)
            queue.sort(key=lambda e: e.at_step)
            record_truth()
        record = message.step()
        if record is None:
            break
        steps += 1
        record_truth()
        check_invariants()
        if mismatches:
            break

    complete = not mismatches
    if not mismatches:
        # Drain: stop all executions (recover crashed processes first —
        # a crashed sender cannot retransmit, so its links may be
        # legitimately stale) and let heartbeats flush every channel;
        # afterwards each view must equal the ground truth exactly.
        message.recover()
        message.suppress(message.network.nodes)
        budget = max_steps + 200
        while budget and not message._network_quiet():
            message.step()
            budget -= 1
        if not message._network_quiet():
            complete = False
            mismatches.append(
                ConformanceMismatch(
                    steps,
                    "drain",
                    "a quiet network within the budget",
                    f"{message.in_flight()} message(s) still in flight",
                )
            )
        else:
            truth = message.configuration
            for v in message.network.nodes:
                view = message.view(v)
                for u in message.network.neighbors(v):
                    if view.get(u) != truth[u]:
                        mismatches.append(
                            ConformanceMismatch(
                                steps,
                                f"settled view (link ({u}, {v}))",
                                truth[u],
                                view.get(u),
                            )
                        )
    return ConformanceResult(
        ok=not mismatches,
        steps_checked=steps,
        complete=complete and not mismatches,
        counterexamples=mismatches,
    )
