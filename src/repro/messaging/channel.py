"""Bounded-capacity FIFO link channels.

One :class:`Channel` per directed edge ``(src, dst)`` carries *register
publications*: immutable snapshots of the sender's protocol state,
stamped with a per-sender version number.  The buffer order is the
delivery order, so the link-fault primitives are plain list surgery:

* loss removes seeded positions,
* duplication re-enqueues seeded positions at the tail with fresh
  sequence numbers,
* reordering permutes a bounded prefix window,
* bounded delay pushes due dates into the future for a step window.

Receivers filter by version (:class:`repro.messaging.MessageSimulator`
keeps the highest version applied per link), which is the classic
guard against duplicated and reordered copies regressing a neighbor
view to an older snapshot — Delaët et al. (arXiv:0802.1123) use the
same device.  Capacity overflow drops the *oldest* buffered message
(the newest publication is the one that matters for a register link).
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import Iterator

from repro.errors import MessagingError
from repro.messaging.env import check_positive_int

__all__ = ["Message", "Channel"]


@dataclass(frozen=True, slots=True)
class Message:
    """One in-flight register publication.

    ``seq`` is unique per channel (ascending with send order, so
    ``(link, seq)`` totally orders every delivery in a run); ``version``
    is the sender's publication counter (receivers apply only strictly
    newer versions); ``due_at`` is ``sent_at`` plus any injected link
    delay — the message is handed over by the first delivery phase
    *strictly after* ``due_at``, i.e. at step ``sent_at + 1`` on an
    undelayed link.
    """

    seq: int
    version: int
    sent_at: int
    due_at: int
    payload: object


class Channel:
    """A bounded FIFO buffer for one directed link."""

    __slots__ = (
        "src",
        "dst",
        "capacity",
        "buffer",
        "next_seq",
        "extra_delay",
        "delay_until",
    )

    def __init__(self, src: int, dst: int, capacity: int) -> None:
        self.src = src
        self.dst = dst
        self.capacity = check_positive_int(
            capacity, name="channel capacity", source="argument"
        )
        self.buffer: list[Message] = []
        self.next_seq = 0
        #: Active :class:`~repro.chaos.DelayLink` fault, if any: sends
        #: before ``delay_until`` are postponed by ``extra_delay``.
        self.extra_delay = 0
        self.delay_until = 0

    def __len__(self) -> int:
        return len(self.buffer)

    def __iter__(self) -> Iterator[Message]:
        return iter(self.buffer)

    def send(self, payload: object, version: int, step: int) -> int:
        """Enqueue a publication; return how many overflowed (oldest first)."""
        delay = self.extra_delay if step < self.delay_until else 0
        self.buffer.append(
            Message(self.next_seq, version, step, step + delay, payload)
        )
        self.next_seq += 1
        overflowed = 0
        while len(self.buffer) > self.capacity:
            self.buffer.pop(0)
            overflowed += 1
        return overflowed

    def take_due(
        self, now: int, *, model: str, rng: Random, hold_rate: float = 0.3
    ) -> list[Message]:
        """Remove and return the messages delivered at step ``now``.

        ``eager`` hands over every message with ``due_at < now``.
        ``async`` walks the due messages in buffer order and stops at
        the first seeded hold, preserving FIFO per link while letting
        messages linger an unbounded-but-probability-1-finite time.
        """
        delivered: list[Message] = []
        kept: list[Message] = []
        held = False
        for msg in self.buffer:
            if held or msg.due_at >= now:
                kept.append(msg)
                continue
            if model == "async" and rng.random() < hold_rate:
                held = True
                kept.append(msg)
                continue
            delivered.append(msg)
        if delivered:
            self.buffer = kept
        return delivered

    # ------------------------------------------------------------------
    # Fault surgery (chaos events call these through the simulator).

    def drop(self, count: int, rng: Random) -> int:
        """Remove ``count`` seeded positions; return how many were lost."""
        k = min(count, len(self.buffer))
        if k <= 0:
            return 0
        doomed = sorted(rng.sample(range(len(self.buffer)), k))
        for index in reversed(doomed):
            del self.buffer[index]
        return k

    def duplicate(self, count: int, rng: Random, now: int) -> int:
        """Re-enqueue ``count`` seeded positions at the tail.

        Duplicates get fresh sequence numbers and a due date no earlier
        than the original's — a copy can never overtake its source —
        and compete for capacity like any other send.
        """
        k = min(count, len(self.buffer))
        if k <= 0:
            return 0
        chosen = sorted(rng.sample(range(len(self.buffer)), k))
        for index in chosen:
            orig = self.buffer[index]
            self.buffer.append(
                Message(
                    self.next_seq,
                    orig.version,
                    orig.sent_at,
                    max(orig.due_at, now),
                    orig.payload,
                )
            )
            self.next_seq += 1
        while len(self.buffer) > self.capacity:
            self.buffer.pop(0)
        return k

    def reorder(self, window: int, rng: Random) -> int:
        """Permute the oldest ``window`` buffered messages in place."""
        k = min(window, len(self.buffer))
        if k < 2:
            return 0
        head = self.buffer[:k]
        rng.shuffle(head)
        self.buffer[:k] = head
        return k

    def set_delay(self, delay: int, until: int) -> None:
        """Postpone sends before step ``until`` by ``delay`` extra steps."""
        if isinstance(delay, bool) or not isinstance(delay, int) or delay < 1:
            raise MessagingError(
                f"link delay must be a positive integer, got {delay!r}"
            )
        self.extra_delay = delay
        self.delay_until = until
