"""Knob resolution for the message-passing runtime.

Mirrors :func:`repro.parallel.resolve_jobs`: an explicit argument wins,
otherwise the environment variable, otherwise the documented default.
Every invalid value — zero, negative, non-integer (including bools),
unknown model names, garbage environment strings — raises
:class:`~repro.errors.MessagingError` naming the offending value and
where it came from, so a typo in a CI matrix fails loudly instead of
silently running with a default.
"""

from __future__ import annotations

import os

from repro.errors import MessagingError

__all__ = [
    "MESSAGE_MODELS",
    "DEFAULT_MESSAGE_MODEL",
    "DEFAULT_CHANNEL_CAPACITY",
    "DEFAULT_HEARTBEAT",
    "resolve_message_model",
    "resolve_channel_capacity",
    "resolve_heartbeat",
    "check_positive_int",
    "check_loss_rate",
]

#: Delivery disciplines understood by the runtime.  ``eager`` delivers
#: every in-flight message the step after it was sent (the reliable
#: FIFO regime the conformance theorem of DESIGN.md §13 covers);
#: ``async`` holds each message back with a seeded per-step coin so
#: views lag truth even without injected faults.
MESSAGE_MODELS: tuple[str, ...] = ("eager", "async")

DEFAULT_MESSAGE_MODEL = "eager"
DEFAULT_CHANNEL_CAPACITY = 8
DEFAULT_HEARTBEAT = 4


def check_positive_int(value: object, *, name: str, source: str) -> int:
    """Validate ``value`` as a strictly positive integer.

    ``bool`` is rejected explicitly — ``True`` is an ``int`` subclass
    and would otherwise resolve to capacity 1, which is exactly the
    kind of silent coercion this module exists to refuse.
    """
    if isinstance(value, bool) or not isinstance(value, int):
        raise MessagingError(
            f"{name} must be a positive integer, got {value!r} ({source})"
        )
    if value < 1:
        raise MessagingError(
            f"{name} must be >= 1, got {value} ({source})"
        )
    return value


def _resolve_positive(
    explicit: int | None, *, env_var: str, name: str, default: int
) -> int:
    if explicit is not None:
        return check_positive_int(explicit, name=name, source="argument")
    raw = os.environ.get(env_var, "").strip()
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise MessagingError(
            f"{name} must be a positive integer, got {raw!r} "
            f"(environment variable {env_var})"
        ) from None
    return check_positive_int(
        value, name=name, source=f"environment variable {env_var}"
    )


def resolve_message_model(model: str | None = None) -> str:
    """Resolve the delivery-model knob (``REPRO_MESSAGE_MODEL``)."""
    if model is not None:
        source = "argument"
    else:
        raw = os.environ.get("REPRO_MESSAGE_MODEL", "").strip()
        if not raw:
            return DEFAULT_MESSAGE_MODEL
        model = raw
        source = "environment variable REPRO_MESSAGE_MODEL"
    if not isinstance(model, str) or model not in MESSAGE_MODELS:
        raise MessagingError(
            f"message model must be one of {list(MESSAGE_MODELS)}, "
            f"got {model!r} ({source})"
        )
    return model


def resolve_channel_capacity(capacity: int | None = None) -> int:
    """Resolve the per-link channel capacity (``REPRO_CHANNEL_CAPACITY``)."""
    return _resolve_positive(
        capacity,
        env_var="REPRO_CHANNEL_CAPACITY",
        name="channel capacity",
        default=DEFAULT_CHANNEL_CAPACITY,
    )


def resolve_heartbeat(heartbeat: int | None = None) -> int:
    """Resolve the republish period (``REPRO_MESSAGE_HEARTBEAT``).

    Every ``heartbeat`` steps each alive process re-offers its current
    register state on links whose receiver has not acknowledged the
    latest version — the retransmission that makes views eventually
    consistent under message loss.
    """
    return _resolve_positive(
        heartbeat,
        env_var="REPRO_MESSAGE_HEARTBEAT",
        name="heartbeat period",
        default=DEFAULT_HEARTBEAT,
    )


def check_loss_rate(rate: float) -> float:
    """Validate a publish loss probability (``0.0 <= rate < 1.0``).

    1.0 is excluded: a link that drops everything forever can never
    reach the eventual-delivery assumption the transform relies on.
    """
    if isinstance(rate, bool) or not isinstance(rate, (int, float)):
        raise MessagingError(
            f"loss rate must be a float in [0.0, 1.0), got {rate!r}"
        )
    rate = float(rate)
    if not 0.0 <= rate < 1.0:
        raise MessagingError(
            f"loss rate must be in [0.0, 1.0), got {rate}"
        )
    return rate
