"""The message-passing runtime: shared memory transformed onto links.

:class:`MessageSimulator` runs any existing guarded-action
:class:`~repro.runtime.protocol.Protocol` — SnapPif unmodified — over
per-link bounded-capacity channels, realizing the classic
shared-memory→message-passing transform (Delaët–Devismes–Nesterenko–
Tixeuil, arXiv:0802.1123; Cournier et al., arXiv:0905.2540):

* every process keeps a *local view*: its own register state plus the
  **last received copy** of each neighbor's registers;
* guards are evaluated and statements executed against that view, not
  against the ground truth;
* whenever a process's registers change it *publishes* the new state on
  every outgoing link, and every ``heartbeat`` steps it re-offers its
  state on links whose receiver has not yet applied the latest version
  (the retransmission that makes views eventually consistent under
  message loss);
* publications carry a per-sender version number and receivers apply
  only strictly newer versions, so duplicated and reordered copies can
  never regress a view to an older snapshot.

Each :meth:`MessageSimulator.step` is a fixed phase sequence —
**deliver → evaluate → select/execute → publish** — with every phase
deterministic under the run seed: channels are visited in ascending
``(src, dst)`` order, buffers deliver in ascending sequence order, and
the delivery/loss coins come from *stateless per-step* generators
(``Random(seed·STRIDE + 2·step [+1])``), so dropping a fault-tape entry
never shifts any later step's randomness — the property the ddmin
shrinker's identical-violation oracle relies on — and runs are
bit-identical regardless of process-pool sharding.

Conformance (DESIGN.md §13): under the ``eager`` model with no loss, a
publication sent at the end of step ``k`` is applied at the start of
step ``k+1``, which is exactly when a shared-memory neighbor would
first read the step-``k`` write — so the message run is step-for-step
identical to the shared-memory run (:mod:`repro.messaging.conformance`
checks this in lockstep, faults included).
"""

from __future__ import annotations

import os
from random import Random
from typing import Callable, Iterable, Mapping, Sequence

from repro import telemetry as _telemetry
from repro.errors import MessagingError, ProtocolError, ScheduleError
from repro.messaging.channel import Channel
from repro.messaging.env import (
    check_loss_rate,
    resolve_channel_capacity,
    resolve_heartbeat,
    resolve_message_model,
)
from repro.runtime.daemons import Daemon, SynchronousDaemon
from repro.runtime.network import Network
from repro.runtime.protocol import Action, Context, Protocol
from repro.runtime.rounds import RoundCounter
from repro.runtime.simulator import DEFAULT_MAX_STEPS, Monitor, RunResult
from repro.runtime.state import Configuration, NodeState
from repro.runtime.trace import StepRecord, Trace

__all__ = ["LocalView", "MessageSimulator"]

#: Mixing stride for the per-step stateless generators; the same prime
#: the scenario DSL uses for per-event seeds.
_SEED_STRIDE = 1_000_003

#: Per-message hold probability of the ``async`` delivery model.
_ASYNC_HOLD_RATE = 0.3


class LocalView:
    """What one process can read: itself plus last-received neighbor copies.

    Quacks like a :class:`~repro.runtime.state.Configuration` for the
    one index pattern :class:`~repro.runtime.protocol.Context` uses
    (``configuration[q]``), so guards and statements run unchanged.
    Reading a node without a link copy is a protocol bug (remote read),
    reported as :class:`~repro.errors.ProtocolError`.
    """

    __slots__ = ("node", "_states")

    def __init__(self, node: int, states: dict[int, NodeState]) -> None:
        self.node = node
        self._states = states

    def __getitem__(self, q: int) -> NodeState:
        try:
            return self._states[q]
        except KeyError:
            raise ProtocolError(
                f"node {self.node} read node {q} without a link-local copy"
            ) from None


class MessageSimulator:
    """Drive a protocol over lossy bounded-capacity links.

    Constructor parameters mirror :class:`~repro.runtime.simulator.
    Simulator` (protocol, network, daemon, configuration, seed,
    trace_level, monitors) plus the transport knobs:

    capacity:
        Per-link channel bound (default 8, ``REPRO_CHANNEL_CAPACITY``);
        overflow drops the oldest buffered publication.
    model:
        ``"eager"`` (default, ``REPRO_MESSAGE_MODEL``) delivers every
        in-flight message the step after it was sent; ``"async"`` holds
        each back with a seeded coin, so views lag truth even without
        injected faults.
    heartbeat:
        Republish period (default 4, ``REPRO_MESSAGE_HEARTBEAT``).
    loss_rate:
        Probability in ``[0, 1)`` that any single publication is lost
        at send time (ambient link loss, distinct from the targeted
        :class:`~repro.chaos.DropMessage` fault).

    ``engine`` is accepted for call-site compatibility: guard evaluation
    here is per-node over local views (structurally the incremental
    engine's dirty-set discipline — only nodes whose view changed are
    re-evaluated).  ``"columnar"`` silently maps to this path so suite
    runs under ``REPRO_ENGINE=columnar`` exercise the transport too;
    ``validate_engine`` cross-checks every incremental view refresh
    against a from-scratch recompute of all views.
    """

    def __init__(
        self,
        protocol: Protocol,
        network: Network,
        daemon: Daemon | None = None,
        *,
        configuration: Configuration | None = None,
        seed: int = 0,
        trace_level: str = "none",
        monitors: Iterable[Monitor] = (),
        engine: str | None = None,
        validate_engine: bool | None = None,
        capacity: int | None = None,
        model: str | None = None,
        heartbeat: int | None = None,
        loss_rate: float = 0.0,
    ) -> None:
        if engine is None:
            engine = os.environ.get("REPRO_ENGINE") or "incremental"
        if engine not in ("incremental", "full", "columnar"):
            raise ScheduleError(
                f"unknown engine {engine!r}; expected 'incremental', "
                f"'full' or 'columnar'"
            )
        if validate_engine is None:
            validate_engine = os.environ.get(
                "REPRO_ENGINE_VALIDATE", ""
            ) not in ("", "0")
        self.engine = "incremental" if engine == "columnar" else engine
        self.validate_engine = validate_engine
        self.protocol = protocol
        self.network = network
        self.daemon = daemon if daemon is not None else SynchronousDaemon()
        self.seed = seed
        self.rng = Random(seed)
        self.capacity = resolve_channel_capacity(capacity)
        self.model = resolve_message_model(model)
        self.heartbeat = resolve_heartbeat(heartbeat)
        self.loss_rate = check_loss_rate(loss_rate)

        config = (
            configuration
            if configuration is not None
            else protocol.initial_configuration(network)
        )
        if len(config) != network.n:
            raise ScheduleError(
                f"configuration has {len(config)} states for a "
                f"{network.n}-processor network"
            )
        self._steps = 0
        self._moves = 0
        self._action_counts: dict[str, int] = {}
        self._monitors = list(monitors)
        self._crashed: set[int] = set()
        self._suppressed: set[int] = set()
        self.trace = Trace(config, level=trace_level)
        self.daemon.reset()

        #: Ground truth: the real register state of every process.
        self._truth: list[NodeState] = [config[p] for p in network.nodes]
        #: Per-sender publication version (bumped on every truth change).
        self._version: dict[int, int] = {p: 0 for p in network.nodes}
        #: ``views[p]``: p's own state + last applied copy per neighbor.
        self._views: dict[int, dict[int, NodeState]] = {}
        #: ``applied[(u, v)]``: highest version of ``u`` applied at ``v``
        #: (the transport's delivery-acknowledgement bookkeeping).
        self._applied: dict[tuple[int, int], int] = {}
        self.channels: dict[tuple[int, int], Channel] = {}
        self._build_links(config)

        #: Nodes whose view changed since their guards were evaluated.
        self._stale: set[int] = set(network.nodes)
        #: Per-node macro memo tables, dropped when the view changes.
        self._caches: dict[int, dict] = {}
        #: Nodes whose truth changed this step (must publish).
        self._pending_publish: set[int] = set()
        self._enabled: dict[int, list[Action]] = {}
        self._refresh_enabled()
        self._rounds = RoundCounter(self._enabled)
        self._config_cache: Configuration | None = config

        self.counters: dict[str, int] = {
            "sent": 0,
            "delivered": 0,
            "stale_discarded": 0,
            "dropped_loss": 0,
            "dropped_capacity": 0,
            "dropped_fault": 0,
            "duplicated": 0,
            "reordered": 0,
            "heartbeats": 0,
            "idle_steps": 0,
        }
        for monitor in self._monitors:
            monitor.on_start(config)

    # ------------------------------------------------------------------
    # Link plumbing
    # ------------------------------------------------------------------
    def _build_links(self, config: Configuration) -> None:
        """(Re)create channels and seed views from ``config``.

        Fresh links start *consistent*: the link-establishment handshake
        exchanges current states, so a new neighbor's copy is the
        sender's truth at creation time.
        """
        self.channels = {}
        self._applied = {}
        self._views = {
            p: {p: config[p]} for p in self.network.nodes
        }
        for u in self.network.nodes:
            for v in self.network.neighbors(u):
                self.channels[(u, v)] = Channel(u, v, self.capacity)
                self._applied[(u, v)] = self._version[u]
                self._views[v][u] = config[u]
        self._link_order = sorted(self.channels)

    def channel(self, u: int, v: int) -> Channel:
        """The channel of directed link ``(u, v)`` (fault events use this)."""
        try:
            return self.channels[(u, v)]
        except KeyError:
            raise MessagingError(
                f"no channel for link ({u}, {v}) — not an edge of "
                f"{self.network.name}"
            ) from None

    def in_flight(self) -> int:
        """Total messages currently buffered across all channels."""
        return sum(len(ch) for ch in self.channels.values())

    def _stale_links(self) -> list[tuple[int, int]]:
        """Links whose receiver has not applied the sender's latest version.

        Only live (non-crashed) senders count: a crashed process cannot
        retransmit, so its stale links cannot resolve by themselves.
        """
        return [
            (u, v)
            for (u, v), applied in self._applied.items()
            if applied < self._version[u] and u not in self._crashed
        ]

    def _network_quiet(self) -> bool:
        return (
            not self._pending_publish
            and all(len(ch) == 0 for ch in self.channels.values())
            and not self._stale_links()
        )

    # ------------------------------------------------------------------
    # Introspection (Simulator-compatible surface)
    # ------------------------------------------------------------------
    @property
    def configuration(self) -> Configuration:
        """The ground-truth configuration ``γ`` (not any local view)."""
        if self._config_cache is None:
            self._config_cache = Configuration(tuple(self._truth))
        return self._config_cache

    def view(self, p: int) -> dict[int, NodeState]:
        """A copy of process ``p``'s local view (tests and tooling)."""
        return dict(self._views[p])

    @property
    def steps(self) -> int:
        return self._steps

    @property
    def rounds(self) -> int:
        return self._rounds.completed_rounds

    @property
    def moves(self) -> int:
        return self._moves

    @property
    def action_counts(self) -> dict[str, int]:
        return dict(self._action_counts)

    def enabled(self) -> dict[int, list[Action]]:
        return {p: list(actions) for p, actions in self._enabled.items()}

    def enabled_nodes(self) -> frozenset[int]:
        return frozenset(self._enabled)

    @property
    def crashed(self) -> frozenset[int]:
        return frozenset(self._crashed)

    @property
    def suppressed(self) -> frozenset[int]:
        return frozenset(self._suppressed)

    def is_terminal(self) -> bool:
        """No enabled view-guard anywhere and nothing left in the network."""
        return not self._enabled and self._network_quiet()

    def is_stalled(self) -> bool:
        """Cannot advance: no selectable process and the network is quiet.

        Unlike the shared-memory simulator an empty selectable set alone
        is not a stall — in-flight or retransmittable messages still
        advance the system through idle steps.
        """
        return (
            not self._selectable()
            and self._network_quiet()
            and bool(self._enabled)
        )

    def _selectable(self) -> dict[int, list[Action]]:
        if not self._crashed and not self._suppressed:
            return self._enabled
        excluded = self._crashed | self._suppressed
        return {
            p: actions
            for p, actions in self._enabled.items()
            if p not in excluded
        }

    def add_monitor(self, monitor: Monitor) -> None:
        monitor.on_start(self.configuration)
        self._monitors.append(monitor)

    # ------------------------------------------------------------------
    # Fault-event hooks (chaos campaigns)
    # ------------------------------------------------------------------
    def _mark_fault(self, kind: str, detail: str) -> None:
        self.trace.mark_fault(self._steps, kind, detail)
        if _telemetry.enabled:
            reg = _telemetry.registry
            reg.inc("sim.faults")
            reg.inc(f"sim.faults.{kind}")

    def _sync_views(self, updates: Mapping[int, NodeState]) -> None:
        """Instantly propagate ``updates`` into every neighbor view.

        Transient faults strike *memory* — in the message model that
        includes the published register images, so corruption is visible
        to neighbors exactly as in shared memory (this keeps the
        conformance theorem valid across corruption events).  Stale
        in-flight copies are left buffered; the version bump makes the
        receiver discard them on arrival.
        """
        for p, state in updates.items():
            self._truth[p] = state
            self._version[p] += 1
            self._views[p][p] = state
            self._touch_view(p)
            for q in self.network.neighbors(p):
                self._views[q][p] = state
                self._applied[(p, q)] = self._version[p]
                self._touch_view(q)
        self._config_cache = None

    def _touch_view(self, p: int) -> None:
        self._stale.add(p)
        self._caches.pop(p, None)

    def reset_configuration(self, configuration: Configuration) -> None:
        """Replace every register (and its published image) — a transient fault."""
        if len(configuration) != self.network.n:
            raise ScheduleError(
                f"configuration has {len(configuration)} states for a "
                f"{self.network.n}-processor network"
            )
        updates = {
            p: configuration[p]
            for p in self.network.nodes
            if configuration[p] != self._truth[p]
        }
        self._sync_views(updates)
        self._refresh_enabled()
        self._rounds.restart(frozenset(self._enabled))
        for monitor in self._monitors:
            monitor.on_start(self.configuration)
        self._mark_fault("corrupt", "configuration replaced")

    def perturb_configuration(self, updates: Mapping[int, NodeState]) -> set[int]:
        """Overwrite a subset of registers (and their published images)."""
        for p in updates:
            if p not in self.network.nodes:
                raise ScheduleError(f"perturbation targets unknown node {p}")
        effective = {
            p: state
            for p, state in updates.items()
            if state != self._truth[p]
        }
        if not effective:
            return set()
        self._sync_views(effective)
        self._refresh_enabled()
        self._rounds.restart(frozenset(self._enabled))
        for monitor in self._monitors:
            monitor.on_start(self.configuration)
        self._mark_fault("corrupt", f"nodes {sorted(effective)}")
        return set(effective)

    def crash(self, nodes: Iterable[int]) -> frozenset[int]:
        """Crash processes: they stop acting *and publishing*.

        In-flight publications keep flowing and the crashed process's
        mailbox still accepts deliveries, but nothing new leaves it —
        the message-passing sharpening of the shared-memory crash.
        """
        nodes = frozenset(nodes)
        unknown = nodes - set(self.network.nodes)
        if unknown:
            raise ScheduleError(f"cannot crash unknown nodes {sorted(unknown)}")
        newly = nodes - self._crashed
        if not newly:
            return frozenset()
        self._crashed |= newly
        self._rounds.set_excluded(
            frozenset(self._crashed | self._suppressed),
            frozenset(self._enabled),
        )
        self._mark_fault("crash", f"nodes {sorted(newly)}")
        return newly

    def recover(self, nodes: Iterable[int] | None = None) -> frozenset[int]:
        wanted = self._crashed if nodes is None else frozenset(nodes)
        back = frozenset(wanted) & self._crashed
        if not back:
            return frozenset()
        self._crashed -= back
        self._rounds.set_excluded(
            frozenset(self._crashed | self._suppressed),
            frozenset(self._enabled),
        )
        self._mark_fault("recover", f"nodes {sorted(back)}")
        return back

    def suppress(self, nodes: Iterable[int]) -> frozenset[int]:
        """Suppress processes' moves (they still publish and receive)."""
        nodes = frozenset(nodes)
        unknown = nodes - set(self.network.nodes)
        if unknown:
            raise ScheduleError(
                f"cannot suppress unknown nodes {sorted(unknown)}"
            )
        newly = nodes - self._suppressed
        if not newly:
            return frozenset()
        self._suppressed |= newly
        self._rounds.set_excluded(
            frozenset(self._crashed | self._suppressed),
            frozenset(self._enabled),
        )
        self._mark_fault("suppress", f"nodes {sorted(newly)}")
        return newly

    def release(self, nodes: Iterable[int] | None = None) -> frozenset[int]:
        wanted = self._suppressed if nodes is None else frozenset(nodes)
        back = frozenset(wanted) & self._suppressed
        if not back:
            return frozenset()
        self._suppressed -= back
        self._rounds.set_excluded(
            frozenset(self._crashed | self._suppressed),
            frozenset(self._enabled),
        )
        self._mark_fault("release", f"nodes {sorted(back)}")
        return back

    def apply_topology(self, network: Network) -> frozenset[int]:
        """Swap the network: channels churn with the links."""
        if network.n != self.network.n:
            raise ScheduleError(
                f"topology change must preserve the processor set "
                f"(have {self.network.n}, got {network.n})"
            )
        touched = self.network.changed_nodes(network)
        old = self.network
        updates: dict[int, NodeState] = {}
        for p in touched:
            state = self._truth[p]
            fixed = self.protocol.sanitize_state(p, state, network)
            if fixed != state:
                updates[p] = fixed
        # Removed links lose their channel, their view copy and their
        # bookkeeping; new links handshake to a consistent copy.
        for u in old.nodes:
            for v in old.neighbors(u):
                if not network.has_edge(u, v):
                    del self.channels[(u, v)]
                    del self._applied[(u, v)]
                    self._views[v].pop(u, None)
                    self._touch_view(v)
        for u in network.nodes:
            for v in network.neighbors(u):
                if (u, v) not in self.channels:
                    self.channels[(u, v)] = Channel(u, v, self.capacity)
                    self._applied[(u, v)] = self._version[u]
                    self._views[v][u] = self._truth[u]
                    self._touch_view(v)
        self._link_order = sorted(self.channels)
        self.network = network
        if updates:
            self._sync_views(updates)
        dirty = set(touched) | set(updates)
        for p in dirty:
            self._touch_view(p)
        if dirty:
            self._refresh_enabled()
            self._rounds.restart(frozenset(self._enabled))
        for monitor in self._monitors:
            on_network = getattr(monitor, "on_network", None)
            if on_network is not None:
                on_network(network)
            monitor.on_start(self.configuration)
        self._mark_fault(
            "topology",
            f"{old.name} -> {network.name} (dirty {sorted(dirty)})",
        )
        return frozenset(dirty)

    def swap_daemon(self, daemon: Daemon) -> None:
        self.daemon = daemon
        daemon.reset()
        self._mark_fault("swap-daemon", daemon.name)

    # Link-fault surgery — called by the chaos events -----------------
    def drop_messages(self, u: int, v: int, count: int, rng: Random) -> int:
        lost = self.channel(u, v).drop(count, rng)
        if lost:
            self.counters["dropped_fault"] += lost
            if _telemetry.enabled:
                _telemetry.registry.inc("messaging.dropped.fault", lost)
            self._mark_fault(
                "message-drop", f"link ({u}, {v}) lost {lost} message(s)"
            )
        return lost

    def duplicate_messages(self, u: int, v: int, count: int, rng: Random) -> int:
        copied = self.channel(u, v).duplicate(count, rng, self._steps)
        if copied:
            self.counters["duplicated"] += copied
            if _telemetry.enabled:
                _telemetry.registry.inc("messaging.duplicated", copied)
            self._mark_fault(
                "message-duplicate",
                f"link ({u}, {v}) duplicated {copied} message(s)",
            )
        return copied

    def reorder_window(self, u: int, v: int, window: int, rng: Random) -> int:
        permuted = self.channel(u, v).reorder(window, rng)
        if permuted:
            self.counters["reordered"] += permuted
            if _telemetry.enabled:
                _telemetry.registry.inc("messaging.reordered", permuted)
            self._mark_fault(
                "message-reorder",
                f"link ({u}, {v}) permuted its oldest {permuted} message(s)",
            )
        return permuted

    def delay_link(self, u: int, v: int, delay: int, duration: int) -> None:
        if isinstance(duration, bool) or not isinstance(duration, int) \
                or duration < 1:
            raise MessagingError(
                f"delay duration must be a positive integer, got {duration!r}"
            )
        self.channel(u, v).set_delay(delay, self._steps + duration)
        if _telemetry.enabled:
            _telemetry.registry.inc("messaging.delayed_links")
        self._mark_fault(
            "link-delay",
            f"link ({u}, {v}) +{delay} step(s) until step "
            f"{self._steps + duration}",
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _phase_rng(self, phase: int) -> Random:
        """Stateless per-(step, phase) generator.

        Not derived from ``self.rng``: the daemon stream must consume
        exactly what the shared-memory simulator's does (conformance),
        and per-step independence is what keeps tapes shrinkable —
        removing an event cannot shift any later step's coins.
        """
        return Random(self.seed * _SEED_STRIDE + 2 * self._steps + phase)

    def _deliver(self) -> int:
        """Delivery phase: hand over due messages in ascending link order."""
        now = self._steps
        rng = self._phase_rng(0)
        delivered = 0
        for link in self._link_order:
            ch = self.channels[link]
            if not ch.buffer:
                continue
            for msg in ch.take_due(
                now, model=self.model, rng=rng, hold_rate=_ASYNC_HOLD_RATE
            ):
                delivered += 1
                u, v = link
                if msg.version > self._applied[link]:
                    self._applied[link] = msg.version
                    if self._views[v].get(u) != msg.payload:
                        self._views[v][u] = msg.payload
                        self._touch_view(v)
                else:
                    self.counters["stale_discarded"] += 1
        self.counters["delivered"] += delivered
        return delivered

    def _refresh_enabled(self) -> None:
        """Re-evaluate guards of the nodes whose view changed."""
        if self._stale:
            fresh: dict[int, list[Action] | None] = {}
            for p in self._stale:
                cache: dict = {}
                ctx = Context(
                    p, self.network, LocalView(p, self._views[p]), cache
                )
                actions = [
                    a
                    for a in self.protocol.node_actions(p, self.network)
                    if a.enabled(ctx)
                ]
                fresh[p] = actions or None
                self._caches[p] = cache
            enabled: dict[int, list[Action]] = {}
            for node in self.network.nodes:
                if node in fresh:
                    actions = fresh[node]
                    if actions is not None:
                        enabled[node] = actions
                else:
                    prev = self._enabled.get(node)
                    if prev is not None:
                        enabled[node] = prev
            self._enabled = enabled
            self._stale.clear()
        if self.validate_engine:
            self._check_against_full()

    def _check_against_full(self) -> None:
        from repro.errors import VerificationError

        full: dict[int, list[Action]] = {}
        for node in self.network.nodes:
            ctx = Context(node, self.network, LocalView(node, self._views[node]))
            actions = [
                a
                for a in self.protocol.node_actions(node, self.network)
                if a.enabled(ctx)
            ]
            if actions:
                full[node] = actions
        if full != self._enabled or list(full) != list(self._enabled):
            raise VerificationError(
                f"view-incremental enabled map diverged from full view "
                f"recompute at step {self._steps}: "
                f"{ {p: [a.name for a in v] for p, v in self._enabled.items()} } "
                f"vs { {p: [a.name for a in v] for p, v in full.items()} }"
            )

    def _publish(self, changed: set[int]) -> None:
        """Publish phase: changed nodes always, heartbeat retries on top."""
        now = self._steps
        rng = self._phase_rng(1)
        publishers: set[int] = set(changed)
        if now % self.heartbeat == 0:
            for (u, v) in self._stale_links():
                if u not in publishers and u not in self._crashed:
                    publishers.add(u)
                    self.counters["heartbeats"] += 1
                    if _telemetry.enabled:
                        _telemetry.registry.inc("messaging.heartbeats")
        for p in sorted(publishers):
            if p in self._crashed:
                continue
            version = self._version[p]
            payload = self._truth[p]
            for q in self.network.neighbors(p):
                link = (p, q)
                if self._applied[link] >= version:
                    continue  # the receiver already has this version
                if self.loss_rate and rng.random() < self.loss_rate:
                    self.counters["dropped_loss"] += 1
                    if _telemetry.enabled:
                        _telemetry.registry.inc("messaging.dropped.loss")
                    continue
                overflowed = self.channels[link].send(payload, version, now)
                self.counters["sent"] += 1
                if overflowed:
                    self.counters["dropped_capacity"] += overflowed
                if _telemetry.enabled:
                    _telemetry.registry.inc("messaging.sent")
                    if overflowed:
                        _telemetry.registry.inc(
                            "messaging.dropped.capacity", overflowed
                        )

    def step(self) -> StepRecord | None:
        """One transport step: deliver → evaluate → execute → publish.

        Returns ``None`` when nothing can ever advance again without an
        external event: no selectable process *and* a quiet network (no
        in-flight, no pending publication, no retransmittable stale
        link).  A step with deliveries but no selectable process is an
        *idle step*: it is recorded with an empty selection and counts
        against budgets like any other step.
        """
        before = self.configuration
        delivered = self._deliver()
        self._refresh_enabled()

        selectable = self._selectable()
        if not selectable and self._network_quiet():
            return None

        changed: set[int] = set()
        if selectable:
            selection = self.daemon.select(
                selectable,
                network=self.network,
                step=self._steps,
                ages=self._rounds.ages,
                rng=self.rng,
            )
            self._validate_selection(selection, selectable)
            updates: dict[int, NodeState] = {}
            for p, action in selection.items():
                ctx = Context(
                    p,
                    self.network,
                    LocalView(p, self._views[p]),
                    self._caches.get(p),
                )
                state = action.execute(ctx)
                if state != self._truth[p]:
                    updates[p] = state
            for p, state in updates.items():
                self._truth[p] = state
                self._version[p] += 1
                self._views[p][p] = state
                self._touch_view(p)
            changed = set(updates)
            if changed:
                self._config_cache = None
        else:
            selection = {}
            self.counters["idle_steps"] += 1
            if _telemetry.enabled:
                _telemetry.registry.inc("messaging.idle_steps")

        self._publish(changed)
        self._refresh_enabled()
        rounds_completed = self._rounds.observe_step(
            set(selection), frozenset(self._enabled)
        )

        self._steps += 1
        self._moves += len(selection)
        for action in selection.values():
            self._action_counts[action.name] = (
                self._action_counts.get(action.name, 0) + 1
            )

        if _telemetry.enabled:
            reg = _telemetry.registry
            reg.inc("messaging.steps")
            reg.inc("messaging.delivered", delivered)
            reg.observe("messaging.delivered_per_step", delivered)
            depths = [len(ch) for ch in self.channels.values()]
            reg.observe("messaging.in_flight", sum(depths))
            reg.observe(
                "messaging.max_channel_depth", max(depths) if depths else 0
            )
            reg.inc("sim.steps")
            reg.inc("sim.moves", len(selection))
            reg.inc("sim.rounds", rounds_completed)
            reg.observe("sim.selection_size", len(selection))
            reg.observe("sim.enabled_set_size", len(self._enabled))

        after = self.configuration
        record = StepRecord(
            index=self._steps - 1,
            selection={p: a.name for p, a in selection.items()},
            rounds_completed=rounds_completed,
            after=after,
        )
        self.trace.append(record)
        for monitor in self._monitors:
            monitor.on_step(before, record, after)
        return record

    def run(
        self,
        *,
        until: Callable[[Configuration], bool] | None = None,
        max_steps: int = DEFAULT_MAX_STEPS,
        max_rounds: int | None = None,
    ) -> RunResult:
        """Run until the predicate holds, the system quiesces, or budget."""
        satisfied = False
        terminated = False
        while True:
            if until is not None and until(self.configuration):
                satisfied = True
                break
            if self._steps >= max_steps or (
                max_rounds is not None and self.rounds >= max_rounds
            ):
                break
            if self.step() is None:
                terminated = self.is_terminal()
                break
        return RunResult(
            final=self.configuration,
            steps=self._steps,
            rounds=self.rounds,
            moves=self._moves,
            terminated=terminated,
            satisfied=satisfied,
            trace=self.trace if self.trace.level != "none" else None,
            action_counts=dict(self._action_counts),
        )

    def _validate_selection(
        self,
        selection: dict[int, Action],
        selectable: Mapping[int, Sequence[Action]],
    ) -> None:
        if not selection:
            raise ScheduleError("daemon returned an empty selection")
        for p, action in selection.items():
            enabled_here: Sequence[Action] | None = selectable.get(p)
            if enabled_here is None:
                if p in self._crashed:
                    raise ScheduleError(
                        f"daemon selected crashed processor {p}"
                    )
                if p in self._suppressed:
                    raise ScheduleError(
                        f"daemon selected suppressed processor {p}"
                    )
                raise ScheduleError(
                    f"daemon selected disabled processor {p}"
                )
            if action not in enabled_here:
                raise ScheduleError(
                    f"daemon selected action {action.name!r} not enabled at "
                    f"processor {p}"
                )
