"""Message-passing snap-stabilization runtime.

The shared-memory→message-passing transform: any guarded-action
:class:`~repro.runtime.protocol.Protocol` runs unmodified over per-link
bounded-capacity channels with versioned register publications,
heartbeat retransmission, and a deterministic seeded delivery
scheduler.  See :mod:`repro.messaging.runtime` for the model and
DESIGN.md §13 for the soundness argument; the link-fault family
(``DropMessage``, ``DuplicateMessage``, ``ReorderWindow``,
``DelayLink``) lives in :mod:`repro.chaos`.
"""

from repro.messaging.channel import Channel, Message
from repro.messaging.conformance import (
    ConformanceMismatch,
    ConformanceResult,
    check_message_conformance,
)
from repro.messaging.env import (
    DEFAULT_CHANNEL_CAPACITY,
    DEFAULT_HEARTBEAT,
    DEFAULT_MESSAGE_MODEL,
    MESSAGE_MODELS,
    check_loss_rate,
    resolve_channel_capacity,
    resolve_heartbeat,
    resolve_message_model,
)
from repro.messaging.runtime import LocalView, MessageSimulator

__all__ = [
    "Channel",
    "Message",
    "LocalView",
    "MessageSimulator",
    "ConformanceMismatch",
    "ConformanceResult",
    "check_message_conformance",
    "MESSAGE_MODELS",
    "DEFAULT_MESSAGE_MODEL",
    "DEFAULT_CHANNEL_CAPACITY",
    "DEFAULT_HEARTBEAT",
    "resolve_message_model",
    "resolve_channel_capacity",
    "resolve_heartbeat",
    "check_loss_rate",
]
