"""The actions of Algorithms 1 and 2, assembled into per-node programs.

Statements are pure: they read the executing processor's context (its
own state and its neighbors' states in the *current* configuration) and
return the processor's next state.

Count saturation: ``Count_p`` lives in ``[1, N']``.  From an arbitrary
initial configuration the raw ``Sum_p`` can exceed any fixed ``N'``
(garbage counts add up), so ``Count-action`` writes ``min(Sum_p, N')``
and ``NewCount`` compares against the same saturated value — otherwise a
processor whose count already saturated would stay enabled forever
without changing state, violating progress.  ``GoodCount`` is unaffected
(``min(Sum_p, N') ≤ Sum_p``).
"""

from __future__ import annotations

from repro.core import predicates as pred
from repro.core.macros import potential_members, sum_value
from repro.core.state import Phase, PifConstants, PifState
from repro.errors import ProtocolError
from repro.runtime.protocol import Action, Context

__all__ = ["root_program", "non_root_program", "ACTION_NAMES"]

#: Canonical action labels, matching the paper's listing.
ACTION_NAMES = (
    "B-action",
    "Fok-action",
    "F-action",
    "C-action",
    "Count-action",
    "B-correction",
    "F-correction",
)


def _own(ctx: Context) -> PifState:
    state = ctx.state
    assert isinstance(state, PifState)
    return state


def _saturated_sum(ctx: Context, k: PifConstants) -> int:
    return min(sum_value(ctx, k), k.n_prime)


def _new_count_guard_saturated(ctx: Context, k: PifConstants) -> bool:
    """``NewCount(p)`` against the saturated sum (see module docstring)."""
    own = _own(ctx)
    if own.pif is not Phase.B or own.fok:
        return False
    if own.count >= _saturated_sum(ctx, k):
        return False
    return pred.normal(ctx, k)


def _root_new_count_guard(ctx: Context, k: PifConstants) -> bool:
    """The root's ``NewCount``, extended to raise the Fok flag.

    ``(Pif_r = B) ∧ Normal(r) ∧ ¬Fok_r ∧ (Count_r < Sum_r ∨ Sum_r = N)``

    Interpretation note (DESIGN.md §1.1): the paper prints the same
    ``Count_r < Sum_r`` guard as for other processors, but then the
    configuration «complete counts, ``Count_r = Sum_r = N``, ``Fok_r``
    still false» (reachable as an initial configuration) deadlocks: no
    action of the root is enabled and the Fok wave never starts.  The
    printed root ``GoodFok`` equality (``Fok_r = (Sum_r = N)``) was
    evidently meant to catch this state, but as an invariant it aborts
    every legitimate wave the moment its count completes.  Letting the
    root's Count-action fire exactly once more to execute
    ``Fok_r := (Sum_r = N)`` resolves both: the exhaustive convergence
    and snap-safety checks pass only with this reading.
    """
    own = _own(ctx)
    if own.pif is not Phase.B or own.fok:
        return False
    raw = sum_value(ctx, k)
    if own.count >= min(raw, k.n_prime) and raw != k.n:
        return False
    return pred.normal(ctx, k)


def root_program(k: PifConstants) -> tuple[Action, ...]:
    """Algorithm 1: the program of the root ``r``."""

    def b_statement(ctx: Context) -> PifState:
        return _own(ctx).replace(pif=Phase.B, count=1, fok=(k.n == 1))

    def f_statement(ctx: Context) -> PifState:
        return _own(ctx).replace(pif=Phase.F)

    def c_statement(ctx: Context) -> PifState:
        return _own(ctx).replace(pif=Phase.C)

    def count_statement(ctx: Context) -> PifState:
        raw = sum_value(ctx, k)
        return _own(ctx).replace(
            count=min(raw, k.n_prime), fok=(raw == k.n)
        )

    def correction_statement(ctx: Context) -> PifState:
        return _own(ctx).replace(pif=Phase.C)

    actions = [
        Action(
            "B-action",
            guard=lambda ctx: pred.broadcast_guard(ctx, k),
            statement=b_statement,
        ),
        Action(
            "F-action",
            guard=lambda ctx: pred.feedback_guard(ctx, k),
            statement=f_statement,
        ),
        Action(
            "C-action",
            guard=lambda ctx: pred.cleaning_guard(ctx, k),
            statement=c_statement,
        ),
        Action(
            "Count-action",
            guard=lambda ctx: _root_new_count_guard(ctx, k),
            statement=count_statement,
        ),
    ]
    if k.corrections:
        actions.append(
            Action(
                "B-correction",
                guard=lambda ctx: pred.abnormal_b(ctx, k),
                statement=correction_statement,
                correction=True,
            )
        )
    return tuple(actions)


def non_root_program(k: PifConstants) -> tuple[Action, ...]:
    """Algorithm 2: the program of every processor ``p ≠ r``."""

    def b_statement(ctx: Context) -> PifState:
        candidates = potential_members(ctx, k)
        if not candidates:
            raise ProtocolError(
                f"B-action at node {ctx.node} with empty Potential set"
            )
        parent, parent_state = candidates[0]
        return _own(ctx).replace(
            par=parent,
            level=parent_state.level + 1,
            count=1,
            fok=False,
            pif=Phase.B,
        )

    def fok_statement(ctx: Context) -> PifState:
        return _own(ctx).replace(fok=True)

    def f_statement(ctx: Context) -> PifState:
        return _own(ctx).replace(pif=Phase.F)

    def c_statement(ctx: Context) -> PifState:
        return _own(ctx).replace(pif=Phase.C)

    def count_statement(ctx: Context) -> PifState:
        return _own(ctx).replace(count=_saturated_sum(ctx, k))

    def b_correction_statement(ctx: Context) -> PifState:
        return _own(ctx).replace(pif=Phase.F)

    def f_correction_statement(ctx: Context) -> PifState:
        return _own(ctx).replace(pif=Phase.C)

    actions = [
        Action(
            "B-action",
            guard=lambda ctx: pred.broadcast_guard(ctx, k),
            statement=b_statement,
        ),
        Action(
            "Fok-action",
            guard=lambda ctx: pred.change_fok_guard(ctx, k),
            statement=fok_statement,
        ),
        Action(
            "F-action",
            guard=lambda ctx: pred.feedback_guard(ctx, k),
            statement=f_statement,
        ),
        Action(
            "C-action",
            guard=lambda ctx: pred.cleaning_guard(ctx, k),
            statement=c_statement,
        ),
        Action(
            "Count-action",
            guard=lambda ctx: _new_count_guard_saturated(ctx, k),
            statement=count_statement,
        ),
    ]
    if k.corrections:
        actions.extend(
            (
                Action(
                    "B-correction",
                    guard=lambda ctx: pred.abnormal_b(ctx, k),
                    statement=b_correction_statement,
                    correction=True,
                ),
                Action(
                    "F-correction",
                    guard=lambda ctx: pred.abnormal_f(ctx, k),
                    statement=f_correction_statement,
                    correction=True,
                ),
            )
        )
    return tuple(actions)
