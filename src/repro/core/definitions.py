"""Executable versions of the paper's Definitions 3–16.

These functions classify configurations and expose the tree structure
the proofs reason about: parent paths, the trees rooted at the root and
at abnormal processors, the LegalTree, sources, and the configuration
classes (Normal, B, SB, SBN, EBN, EF, EFN, Good Configuration, GLT).

They are *global* observers — they read the whole configuration — and
are used by invariant checkers, stabilization experiments and tests, not
by the protocol itself (which is strictly local).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import predicates as pred
from repro.core.state import Phase, PifConstants, PifState
from repro.errors import ProtocolError
from repro.runtime.network import Network
from repro.runtime.protocol import Context
from repro.runtime.state import Configuration

__all__ = [
    "pif_state",
    "is_normal_node",
    "abnormal_nodes",
    "parent_path",
    "tree",
    "legal_tree",
    "all_trees",
    "sources",
    "tree_children",
    "subtree_size",
    "legal_tree_height",
    "is_normal_configuration",
    "is_broadcast_configuration",
    "is_sb_configuration",
    "is_sbn_configuration",
    "is_ebn_configuration",
    "is_ef_configuration",
    "is_efn_configuration",
    "is_good_configuration",
    "good_legal_tree",
    "ConfigurationClasses",
    "classify",
]


def pif_state(configuration: Configuration, node: int) -> PifState:
    """Fetch a node's state, typed."""
    state = configuration[node]
    if not isinstance(state, PifState):
        raise ProtocolError(f"node {node} does not carry a PifState: {state!r}")
    return state


def is_normal_node(
    configuration: Configuration, network: Network, k: PifConstants, node: int
) -> bool:
    """``Normal(p)`` evaluated globally (Definition 8 ingredient)."""
    return pred.normal(Context(node, network, configuration), k)


def abnormal_nodes(
    configuration: Configuration, network: Network, k: PifConstants
) -> frozenset[int]:
    """All abnormal processors of the configuration."""
    return frozenset(
        p
        for p in network.nodes
        if not is_normal_node(configuration, network, k, p)
    )


def parent_path(
    configuration: Configuration, network: Network, k: PifConstants, node: int
) -> list[int] | None:
    """``ParentPath(p)`` (Definition 4) or ``None`` when undefined.

    Defined only for ``Pif_p ≠ C``.  Follows parent pointers through
    *normal* processors; the terminal extremity is the root or an
    abnormal processor.  ``GoodLevel`` makes levels strictly decrease
    along the walk, so the path is finite; the length assertion guards
    against a broken predicate implementation.
    """
    state = pif_state(configuration, node)
    if state.pif is Phase.C:
        return None
    path = [node]
    current = node
    while True:
        if current == k.root or not is_normal_node(
            configuration, network, k, current
        ):
            return path
        current_state = pif_state(configuration, current)
        assert current_state.par is not None  # non-root, domain invariant
        current = current_state.par
        path.append(current)
        if len(path) > network.n:
            raise ProtocolError(
                f"parent path from {node} did not terminate: {path}"
            )


def tree(
    configuration: Configuration, network: Network, k: PifConstants, extremity: int
) -> frozenset[int]:
    """``Tree(p)`` (Definition 5): processors whose ParentPath ends at ``extremity``.

    ``extremity`` must be the root or an abnormal processor, the only
    nodes trees are rooted at.
    """
    members = set()
    for q in network.nodes:
        path = parent_path(configuration, network, k, q)
        if path is not None and path[-1] == extremity:
            members.add(q)
    return frozenset(members)


def legal_tree(
    configuration: Configuration, network: Network, k: PifConstants
) -> frozenset[int]:
    """``LegalTree`` (Definition 6): the tree rooted at ``r``.

    Empty when ``Pif_r = C`` (the root's ParentPath is then undefined).
    """
    return tree(configuration, network, k, k.root)


def all_trees(
    configuration: Configuration, network: Network, k: PifConstants
) -> dict[int, frozenset[int]]:
    """Every tree of the configuration, keyed by its extremity.

    Extremities are the root (if active) and all abnormal processors.
    """
    extremities = set(abnormal_nodes(configuration, network, k))
    extremities.add(k.root)
    result: dict[int, frozenset[int]] = {}
    for e in extremities:
        members = tree(configuration, network, k, e)
        if members:
            result[e] = members
    return result


def sources(
    configuration: Configuration,
    network: Network,
    k: PifConstants,
    members: frozenset[int],
) -> frozenset[int]:
    """``Source`` processors of a tree (Definition 7): its childless members."""
    parents = {
        pif_state(configuration, q).par
        for q in members
        if pif_state(configuration, q).pif is not Phase.C
    }
    return frozenset(p for p in members if p not in parents)


def tree_children(
    configuration: Configuration,
    network: Network,
    members: frozenset[int],
    node: int,
) -> frozenset[int]:
    """Members of a tree whose parent pointer designates ``node``."""
    return frozenset(
        q
        for q in members
        if q != node and pif_state(configuration, q).par == node
    )


def subtree_size(
    configuration: Configuration,
    network: Network,
    members: frozenset[int],
    node: int,
) -> int:
    """``#Subtree(p)`` within a tree: the node plus all its descendants."""
    size = 1
    stack = [node]
    seen = {node}
    while stack:
        p = stack.pop()
        for q in tree_children(configuration, network, members, p):
            if q not in seen:
                seen.add(q)
                size += 1
                stack.append(q)
    return size


def legal_tree_height(
    configuration: Configuration, network: Network, k: PifConstants
) -> int:
    """Height of the LegalTree: the maximum level among its members (root = 0)."""
    members = legal_tree(configuration, network, k)
    if not members:
        return 0
    return max(pif_state(configuration, p).level for p in members)


# ----------------------------------------------------------------------
# Configuration classes (Definitions 8–16)
# ----------------------------------------------------------------------
def is_normal_configuration(
    configuration: Configuration, network: Network, k: PifConstants
) -> bool:
    """Definition 8: every processor is normal."""
    return not abnormal_nodes(configuration, network, k)


def is_broadcast_configuration(
    configuration: Configuration, network: Network, k: PifConstants
) -> bool:
    """Definition 9 (B): ``Pif_r = B ∧ ¬Fok_r``."""
    root = pif_state(configuration, k.root)
    return root.pif is Phase.B and not root.fok


def is_sb_configuration(
    configuration: Configuration, network: Network, k: PifConstants
) -> bool:
    """Definition 10 (SB): ``Pif_r = C``."""
    return pif_state(configuration, k.root).pif is Phase.C


def is_sbn_configuration(
    configuration: Configuration, network: Network, k: PifConstants
) -> bool:
    """Definition 11 (SBN): SB and normal — then every ``Pif_p = C``."""
    return is_sb_configuration(
        configuration, network, k
    ) and is_normal_configuration(configuration, network, k)


def is_ebn_configuration(
    configuration: Configuration, network: Network, k: PifConstants
) -> bool:
    """Definition 12 (EBN): normal, ``¬Fok_r`` and every ``Pif_p = B``."""
    root = pif_state(configuration, k.root)
    if root.fok:
        return False
    if any(
        pif_state(configuration, p).pif is not Phase.B for p in network.nodes
    ):
        return False
    return is_normal_configuration(configuration, network, k)


def is_ef_configuration(
    configuration: Configuration, network: Network, k: PifConstants
) -> bool:
    """Definition 13 (EF): ``Pif_r = F``."""
    return pif_state(configuration, k.root).pif is Phase.F


def is_efn_configuration(
    configuration: Configuration, network: Network, k: PifConstants
) -> bool:
    """Definition 14 (EFN): EF and normal."""
    return is_ef_configuration(
        configuration, network, k
    ) and is_normal_configuration(configuration, network, k)


def is_good_configuration(
    configuration: Configuration, network: Network, k: PifConstants
) -> bool:
    """Definition 15 (GC).

    Every active processor outside the LegalTree whose parent is inside
    it satisfies ``GoodCount`` — such a processor is exactly the kind
    that could feed a bogus count into the legal tree.
    """
    members = legal_tree(configuration, network, k)
    for p in network.nodes:
        if p in members:
            continue
        state = pif_state(configuration, p)
        if state.pif is Phase.C or state.par not in members:
            continue
        if not pred.good_count(Context(p, network, configuration), k):
            return False
    return True


def good_legal_tree(
    configuration: Configuration, network: Network, k: PifConstants
) -> frozenset[int] | None:
    """Definition 16 (GLT): the LegalTree of a Good Configuration, else ``None``."""
    if not is_good_configuration(configuration, network, k):
        return None
    return legal_tree(configuration, network, k)


@dataclass(frozen=True, slots=True)
class ConfigurationClasses:
    """All class memberships of one configuration, for experiment logging."""

    normal: bool
    broadcast: bool
    sb: bool
    sbn: bool
    ebn: bool
    ef: bool
    efn: bool
    good: bool
    abnormal_count: int
    legal_tree_size: int


def classify(
    configuration: Configuration, network: Network, k: PifConstants
) -> ConfigurationClasses:
    """Evaluate every configuration class at once."""
    abnormal = abnormal_nodes(configuration, network, k)
    members = legal_tree(configuration, network, k)
    root = pif_state(configuration, k.root)
    normal_cfg = not abnormal
    return ConfigurationClasses(
        normal=normal_cfg,
        broadcast=root.pif is Phase.B and not root.fok,
        sb=root.pif is Phase.C,
        sbn=normal_cfg and root.pif is Phase.C,
        ebn=is_ebn_configuration(configuration, network, k),
        ef=root.pif is Phase.F,
        efn=normal_cfg and root.pif is Phase.F,
        good=is_good_configuration(configuration, network, k),
        abnormal_count=len(abnormal),
        legal_tree_size=len(members),
    )
