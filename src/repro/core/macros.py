"""The macros of Algorithms 1 and 2: ``Sum_Set``, ``Sum``, ``Pre_Potential``, ``Potential``.

All functions take the executing processor's :class:`~repro.runtime.protocol.Context`
plus the protocol :class:`~repro.core.state.PifConstants` and read only
the processor's own state and its neighbors' states, exactly as the
locally shared memory model allows.

Interpretation notes (see DESIGN.md §1.1):

* ``Sum_Set_p`` uses ``¬Fok_q`` — a child whose own Fok flag has risen no
  longer feeds its count to the parent (the paper prints ``¬Fok_p``,
  inconsistent with the other conjuncts which all constrain ``q``).
* ``Potential_p`` minimizes levels over ``Pre_Potential_p`` (the paper's
  ``Set_p`` is read as ``Pre_Potential_p``, the only set in scope).

Performance notes (see docs/API.md «Performance model»):

* The member-set macros return ``(q, state_q)`` pairs internally
  (:func:`sum_members`, :func:`pre_potential_members`,
  :func:`potential_members`), so each neighbor state is read exactly
  once per evaluation — no re-fetch through ``ctx.neighbor_state`` with
  its ``has_edge`` validation on the hot path.
* When the context carries an evaluation cache (``ctx.cache``), results
  are memoized under ``(node, name)`` keys.  Several guards at the same
  node re-derive the same macros against the same configuration (e.g.
  ``NewCount`` needs ``Sum_p`` both directly and via
  ``Normal → GoodCount``); the cache collapses those repeats to one
  evaluation per configuration.
"""

from __future__ import annotations

from repro.core.state import Phase, PifConstants, PifState
from repro.runtime.protocol import Context

__all__ = [
    "sum_set",
    "sum_members",
    "sum_value",
    "pre_potential",
    "pre_potential_members",
    "potential",
    "potential_members",
    "chosen_parent",
]


def sum_members(ctx: Context, k: PifConstants) -> list[tuple[int, PifState]]:
    """``Sum_Set_p`` with states attached: ``[(q, state_q), …]``."""
    cache = ctx.cache
    if cache is not None:
        hit = cache.get((ctx.node, "sum_members"))
        if hit is not None:
            return hit
    own = ctx.state
    assert isinstance(own, PifState)
    child_level = own.level + 1
    members = []
    for q, sq in ctx.neighbor_states():
        assert isinstance(sq, PifState)
        if (
            sq.pif is Phase.B
            and sq.par == ctx.node
            and sq.level == child_level
            and not sq.fok
        ):
            members.append((q, sq))
    if cache is not None:
        cache[(ctx.node, "sum_members")] = members
    return members


def sum_set(ctx: Context, k: PifConstants) -> list[int]:
    """``Sum_Set_p``: broadcasting children one level below, not yet in the Fok wave.

    ``{q ∈ Neig_p :: (Pif_q = B) ∧ (Par_q = p) ∧ (L_q = L_p + 1) ∧ ¬Fok_q}``
    """
    return [q for q, _sq in sum_members(ctx, k)]


def sum_value(ctx: Context, k: PifConstants) -> int:
    """``Sum_p = 1 + Σ_{q ∈ Sum_Set_p} Count_q``."""
    cache = ctx.cache
    if cache is not None:
        hit = cache.get((ctx.node, "sum_value"))
        if hit is not None:
            return hit
    total = 1
    for _q, sq in sum_members(ctx, k):
        total += sq.count
    if cache is not None:
        cache[(ctx.node, "sum_value")] = total
    return total


def pre_potential_members(
    ctx: Context, k: PifConstants
) -> list[tuple[int, PifState]]:
    """``Pre_Potential_p`` with states attached: ``[(q, state_q), …]``."""
    cache = ctx.cache
    if cache is not None:
        hit = cache.get((ctx.node, "pre_potential_members"))
        if hit is not None:
            return hit
    members = []
    for q, sq in ctx.neighbor_states():
        assert isinstance(sq, PifState)
        if sq.pif is not Phase.B:
            continue
        if sq.par == ctx.node:
            continue
        if sq.level >= k.l_max:
            continue
        if k.fok_join_guard and sq.fok:
            continue
        members.append((q, sq))
    if cache is not None:
        cache[(ctx.node, "pre_potential_members")] = members
    return members


def pre_potential(ctx: Context, k: PifConstants) -> list[int]:
    """``Pre_Potential_p``: neighbors ``p`` could accept the broadcast from.

    ``{q ∈ Neig_p :: (Pif_q = B) ∧ (Par_q ≠ p) ∧ (L_q < L_max) ∧ ¬Fok_q}``

    The ``¬Fok_q`` conjunct (removable via the ``fok_join_guard``
    ablation switch) prevents attaching below a subtree whose count has
    already been frozen into the root's total.
    """
    return [q for q, _sq in pre_potential_members(ctx, k)]


def potential_members(
    ctx: Context, k: PifConstants
) -> list[tuple[int, PifState]]:
    """``Potential_p`` with states attached: ``[(q, state_q), …]``."""
    cache = ctx.cache
    if cache is not None:
        hit = cache.get((ctx.node, "potential_members"))
        if hit is not None:
            return hit
    candidates = pre_potential_members(ctx, k)
    if candidates:
        best = min(sq.level for _q, sq in candidates)
        members = [(q, sq) for q, sq in candidates if sq.level == best]
    else:
        members = []
    if cache is not None:
        cache[(ctx.node, "potential_members")] = members
    return members


def potential(ctx: Context, k: PifConstants) -> list[int]:
    """``Potential_p``: the minimum-level members of ``Pre_Potential_p``.

    Choosing a minimum-level parent is what makes every parent path
    chordless (proof of Theorem 4).
    """
    return [q for q, _sq in potential_members(ctx, k)]


def chosen_parent(ctx: Context, k: PifConstants) -> int | None:
    """``min_{≻p}(Potential_p)``: the parent B-action would pick, or ``None``.

    The minimum is taken in the processor's local neighbor order, which
    is the iteration order of ``ctx.neighbors`` — ``potential`` preserves
    it, so the first element is the local minimum.
    """
    candidates = potential_members(ctx, k)
    return candidates[0][0] if candidates else None
