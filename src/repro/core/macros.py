"""The macros of Algorithms 1 and 2: ``Sum_Set``, ``Sum``, ``Pre_Potential``, ``Potential``.

All functions take the executing processor's :class:`~repro.runtime.protocol.Context`
plus the protocol :class:`~repro.core.state.PifConstants` and read only
the processor's own state and its neighbors' states, exactly as the
locally shared memory model allows.

Interpretation notes (see DESIGN.md §1.1):

* ``Sum_Set_p`` uses ``¬Fok_q`` — a child whose own Fok flag has risen no
  longer feeds its count to the parent (the paper prints ``¬Fok_p``,
  inconsistent with the other conjuncts which all constrain ``q``).
* ``Potential_p`` minimizes levels over ``Pre_Potential_p`` (the paper's
  ``Set_p`` is read as ``Pre_Potential_p``, the only set in scope).
"""

from __future__ import annotations

from repro.runtime.protocol import Context
from repro.core.state import Phase, PifConstants, PifState

__all__ = [
    "sum_set",
    "sum_value",
    "pre_potential",
    "potential",
    "chosen_parent",
]


def sum_set(ctx: Context, k: PifConstants) -> list[int]:
    """``Sum_Set_p``: broadcasting children one level below, not yet in the Fok wave.

    ``{q ∈ Neig_p :: (Pif_q = B) ∧ (Par_q = p) ∧ (L_q = L_p + 1) ∧ ¬Fok_q}``
    """
    own: PifState = ctx.state  # type: ignore[assignment]
    members = []
    for q, sq in ctx.neighbor_states():
        assert isinstance(sq, PifState)
        if (
            sq.pif is Phase.B
            and sq.par == ctx.node
            and sq.level == own.level + 1
            and not sq.fok
        ):
            members.append(q)
    return members


def sum_value(ctx: Context, k: PifConstants) -> int:
    """``Sum_p = 1 + Σ_{q ∈ Sum_Set_p} Count_q``."""
    total = 1
    for q in sum_set(ctx, k):
        sq = ctx.neighbor_state(q)
        assert isinstance(sq, PifState)
        total += sq.count
    return total


def pre_potential(ctx: Context, k: PifConstants) -> list[int]:
    """``Pre_Potential_p``: neighbors ``p`` could accept the broadcast from.

    ``{q ∈ Neig_p :: (Pif_q = B) ∧ (Par_q ≠ p) ∧ (L_q < L_max) ∧ ¬Fok_q}``

    The ``¬Fok_q`` conjunct (removable via the ``fok_join_guard``
    ablation switch) prevents attaching below a subtree whose count has
    already been frozen into the root's total.
    """
    members = []
    for q, sq in ctx.neighbor_states():
        assert isinstance(sq, PifState)
        if sq.pif is not Phase.B:
            continue
        if sq.par == ctx.node:
            continue
        if sq.level >= k.l_max:
            continue
        if k.fok_join_guard and sq.fok:
            continue
        members.append(q)
    return members


def potential(ctx: Context, k: PifConstants) -> list[int]:
    """``Potential_p``: the minimum-level members of ``Pre_Potential_p``.

    Choosing a minimum-level parent is what makes every parent path
    chordless (proof of Theorem 4).
    """
    candidates = pre_potential(ctx, k)
    if not candidates:
        return []
    best = min(
        ctx.neighbor_state(q).level  # type: ignore[union-attr]
        for q in candidates
    )
    return [
        q
        for q in candidates
        if ctx.neighbor_state(q).level == best  # type: ignore[union-attr]
    ]


def chosen_parent(ctx: Context, k: PifConstants) -> int | None:
    """``min_{≻p}(Potential_p)``: the parent B-action would pick, or ``None``.

    The minimum is taken in the processor's local neighbor order, which
    is the iteration order of ``ctx.neighbors`` — ``potential`` preserves
    it, so the first element is the local minimum.
    """
    candidates = potential(ctx, k)
    return candidates[0] if candidates else None
