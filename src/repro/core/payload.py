"""Message-carrying PIF: broadcast a value ``V``, aggregate the feedback.

The paper's specification speaks of the root broadcasting a *message*
``m`` and collecting acknowledgments.  The core algorithm
(:mod:`repro.core.pif`) carries no application data — phases and counts
are the message in the shared-memory model.  This module extends it with
an explicit payload, which is what the applications (reliable broadcast,
reset, snapshot, distributed infimum) build on:

* the root's ``B-action`` additionally stamps the wave's value ``V``
  (taken from the protocol's *outbox*) into its ``msg`` variable;
* a joining processor's ``B-action`` copies its chosen parent's ``msg``
  — so ``msg`` provenance follows the B-tree exactly;
* every ``F-action`` computes an aggregated acknowledgment
  ``ack = combine([local_value(p), ack of each child])`` — by the
  ``BLeaf`` guard all children have fed back when a processor does, so
  the fold is well-defined; the root's ``ack`` after its own
  ``F-action`` is the wave's global result (e.g. a distributed infimum
  or a snapshot).

The snap property guarantees that, for every wave the root initiates,
each processor's ``msg`` equals ``V`` and every processor's local value
is folded into the root's ``ack`` exactly once.

Note: the outbox read makes the root's B-action *impure* with respect to
the protocol object (deliberately — applications swap the outbox between
waves).  Use the plain :class:`~repro.core.pif.SnapPif` for model
checking.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import Callable, Sequence

from repro.core.pif import SnapPif, snap_pif_spec
from repro.core.state import Phase, PifConstants, PifState
from repro.runtime.network import Network
from repro.runtime.protocol import Action, Context

__all__ = ["Envelope", "NO_ACK", "PayloadPifState", "PayloadSnapPif", "TaggedAck"]


class _NoAck:
    """Sentinel for 'no acknowledgment computed yet'."""

    _instance: "_NoAck | None" = None

    def __new__(cls) -> "_NoAck":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "NO_ACK"


#: Placeholder stored in ``ack`` before a processor's F-action.
NO_ACK = _NoAck()


class Envelope:
    """The wave's message wrapper, compared by *identity*.

    The root wraps each broadcast value in a fresh ``Envelope``; joiners
    copy the reference along the B-tree.  Holding the current envelope
    object is therefore proof of having received *this* wave's message —
    garbage states cannot forge it even if they happen to contain an
    equal value.
    """

    __slots__ = ("value",)

    def __init__(self, value: object) -> None:
        self.value = value

    def __repr__(self) -> str:
        return f"Envelope({self.value!r})"


@dataclass(frozen=True, slots=True)
class TaggedAck:
    """An acknowledgment stamped with the wave epoch that produced it.

    Stale processors (members of garbage broadcast trees in the initial
    configuration) can legally execute F-actions while a wave is in
    flight; their folds would otherwise feed arbitrary garbage to the
    application's ``combine``.  Acks are therefore tagged with the
    current wave epoch and a fold only consumes child acks carrying the
    *same* epoch — application combine functions never see stale data.
    (The root's result needs no such protection in principle — the snap
    property keeps garbage out of the legal tree — but the stale trees'
    own folds run the same application code.)
    """

    epoch: int
    value: object


@dataclass(frozen=True, slots=True)
class PayloadPifState(PifState):
    """PIF state extended with the broadcast value and the feedback fold."""

    msg: object = None
    ack: object = NO_ACK


def _local_value_default(node: int) -> object:
    return node


def _combine_default(values: Sequence[object]) -> object:
    return tuple(values)


class PayloadSnapPif(SnapPif):
    """Snap PIF carrying a broadcast value and folding feedback values.

    Parameters
    ----------
    constants:
        Protocol constants (see :class:`~repro.core.state.PifConstants`).
    local_value:
        Per-node contribution folded into the feedback (default: the
        node identifier).
    combine:
        Fold over ``[local_value(p), ack_child_1, …]`` computed at each
        F-action (default: tuple packing — a raw collection).
    """

    name = "snap-pif-payload"

    def __init__(
        self,
        constants: PifConstants,
        *,
        local_value: Callable[[int], object] | None = None,
        combine: Callable[[Sequence[object]], object] | None = None,
    ) -> None:
        super().__init__(constants)
        self.local_value = local_value or _local_value_default
        self.combine = combine or _combine_default
        #: Value stamped on the next root B-action.
        self.outbox: object = None
        #: Number of waves the root initiated (application bookkeeping).
        self.waves_started = 0
        #: Envelope of the wave in flight (identity = membership proof).
        self._current_envelope: Envelope | None = None
        self._root_program = tuple(
            self._wrap(a, is_root=True) for a in self._root_program
        )
        self._non_root_program = tuple(
            self._wrap(a, is_root=False) for a in self._non_root_program
        )

    # ------------------------------------------------------------------
    # Program decoration
    # ------------------------------------------------------------------
    def _wrap(self, action: Action, *, is_root: bool) -> Action:
        base = action.statement

        if action.name == "B-action" and is_root:

            def root_b(ctx: Context) -> PayloadPifState:
                state = base(ctx)
                assert isinstance(state, PayloadPifState)
                self.waves_started += 1
                self._current_envelope = Envelope(self.outbox)
                return state.replace(msg=self._current_envelope, ack=NO_ACK)

            return Action(action.name, action.guard, root_b, action.correction)

        if action.name == "B-action":

            def join_b(ctx: Context) -> PayloadPifState:
                state = base(ctx)
                assert isinstance(state, PayloadPifState)
                assert state.par is not None
                parent = ctx.neighbor_state(state.par)
                assert isinstance(parent, PayloadPifState)
                return state.replace(msg=parent.msg, ack=NO_ACK)

            return Action(action.name, action.guard, join_b, action.correction)

        if action.name == "F-action":

            def feedback(ctx: Context) -> PayloadPifState:
                state = base(ctx)
                assert isinstance(state, PayloadPifState)
                epoch = self.waves_started
                # Stale processors (garbage broadcast trees) legally
                # execute F-actions too; only holders of the current
                # wave's envelope (received through B-actions, compared
                # by identity) take part in the application fold —
                # neither ``local_value`` nor ``combine`` runs for
                # anything stale.
                if (
                    self._current_envelope is None
                    or state.msg is not self._current_envelope
                ):
                    return state.replace(ack=NO_ACK)
                values: list[object] = [self.local_value(ctx.node)]
                for _q, sq in ctx.neighbor_states():
                    assert isinstance(sq, PayloadPifState)
                    if (
                        sq.par == ctx.node
                        and sq.pif is Phase.F
                        and isinstance(sq.ack, TaggedAck)
                        and sq.ack.epoch == epoch
                    ):
                        values.append(sq.ack.value)
                return state.replace(
                    ack=TaggedAck(epoch, self.combine(values))
                )

            return Action(action.name, action.guard, feedback, action.correction)

        return action

    # ------------------------------------------------------------------
    # Columnar form
    # ------------------------------------------------------------------
    def columnar_spec(self):
        """The pure PIF core compiled, statements left to the objects.

        Guards are untouched by :meth:`_wrap` — they read only the five
        core PIF columns — so mask evaluation runs fully compiled.
        Statements are impure (outbox reads, identity-compared
        envelopes, wave bookkeeping) and cannot live in integer
        columns, so the spec declares ``object_statements=True``: the
        kernel keeps the authoritative :class:`PayloadPifState` objects
        in a side-car and executes the wrapped object statements,
        encoding only the pure core back into the columns.
        """
        if type(self) is not PayloadSnapPif:
            return None
        return snap_pif_spec(self.constants, object_statements=True)

    # ------------------------------------------------------------------
    # State constructors
    # ------------------------------------------------------------------
    def initial_state(self, node: int, network: Network) -> PayloadPifState:
        base = super().initial_state(node, network)
        return PayloadPifState(
            pif=base.pif,
            par=base.par,
            level=base.level,
            count=base.count,
            fok=base.fok,
            msg=None,
            ack=NO_ACK,
        )

    def random_state(
        self, node: int, network: Network, rng: Random
    ) -> PayloadPifState:
        base = super().random_state(node, network, rng)
        stale_msg = rng.choice((None, "stale-message", -1))
        stale_ack = rng.choice((NO_ACK, "stale-ack", 0))
        return PayloadPifState(
            pif=base.pif,
            par=base.par,
            level=base.level,
            count=base.count,
            fok=base.fok,
            msg=stale_msg,
            ack=stale_ack,
        )

    # ------------------------------------------------------------------
    # Application-facing accessors
    # ------------------------------------------------------------------
    def root_result(self, configuration) -> object:
        """The root's aggregated ``ack`` (valid after its F-action).

        Returns the unwrapped fold value of the most recent wave, or
        :data:`NO_ACK` if the root holds no acknowledgment for it.
        """
        state = configuration[self.constants.root]
        assert isinstance(state, PayloadPifState)
        if (
            isinstance(state.ack, TaggedAck)
            and state.ack.epoch == self.waves_started
        ):
            return state.ack.value
        return NO_ACK

    def delivered_messages(self, configuration) -> dict[int, object]:
        """Each node's currently held ``msg`` (envelopes unwrapped).

        A node that never received a wave (or holds pre-fault garbage)
        reports its raw ``msg`` contents.
        """
        result: dict[int, object] = {}
        for node, state in enumerate(configuration):
            assert isinstance(state, PayloadPifState)
            msg = state.msg
            result[node] = msg.value if isinstance(msg, Envelope) else msg
        return result
