"""Executable specification of the PIF scheme (Definition 2 + Specification 1).

:class:`PifCycleMonitor` observes a simulation and checks, for every
wave the root *initiates* (its ``B-action`` — the computation step the
specification quantifies over), the two PIF-cycle conditions:

* **[PIF1]** every ``p ≠ r`` receives the broadcast message ``m`` — i.e.
  executes a ``B-action`` whose chosen parent already belongs to the
  root's wave (provenance matters: a processor attaching to a *stale*
  broadcast tree has received garbage, not ``m``);
* **[PIF2]** by the time the root feeds back, every ``p ≠ r`` has sent an
  acknowledgment that reached the root through the wave tree — i.e.
  executed its ``F-action`` as a member of the wave.

A *snap-stabilizing* PIF satisfies both conditions for every initiated
wave, from **any** starting configuration.  The monitor therefore is the
oracle used by the randomized falsifier, the exhaustive model checker
and the baseline comparison (where the self-stabilizing PIF visibly
violates PIF1 on its first cycles).

The monitor also measures, per completed cycle, the steps/rounds/moves
between the initiating ``B-action`` and the return to the clean
configuration — the quantity bounded by ``5h + 5`` in Theorem 4 — plus
the height ``h`` of the tree actually built.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol as TypingProtocol

from repro.core.state import Phase, PifState
from repro.errors import SpecificationViolation
from repro.runtime.network import Network
from repro.runtime.protocol import Context
from repro.runtime.state import Configuration
from repro.runtime.trace import StepRecord

__all__ = ["WaveProtocol", "CycleReport", "PifCycleMonitor"]


class WaveProtocol(TypingProtocol):
    """What the monitor needs from a PIF-like protocol."""

    @property
    def root(self) -> int: ...

    def join_parent(self, ctx: Context) -> int | None:
        """The parent the node's B-action would choose in ``ctx``."""


@dataclass
class CycleReport:
    """Measurements and verdicts for one initiated PIF wave."""

    #: Step index of the initiating root B-action.
    start_step: int
    end_step: int | None = None
    #: Rounds elapsed from initiation to cycle completion (back to clean).
    rounds: int = 0
    moves: int = 0
    #: Processors that received ``m`` (root included).
    received: set[int] = field(default_factory=set)
    #: Non-root processors whose acknowledgment joined the feedback.
    acked: set[int] = field(default_factory=set)
    #: Height of the tree built during this wave.
    height: int = 0
    #: Step at which the root executed its F-action, if it did.
    root_feedback_step: int | None = None
    violations: list[str] = field(default_factory=list)
    completed: bool = False

    def pif1_holds(self, n: int) -> bool:
        """[PIF1]: all ``n`` processors received the broadcast."""
        return len(self.received) == n

    def pif2_holds(self, n: int) -> bool:
        """[PIF2]: all ``n - 1`` non-root processors acknowledged."""
        return len(self.acked) == n - 1

    @property
    def ok(self) -> bool:
        """The cycle completed with no recorded violation."""
        return self.completed and not self.violations


class PifCycleMonitor:
    """Online checker of the PIF specification (see module docstring).

    Parameters
    ----------
    protocol, network:
        The observed protocol (supplying root identity and the
        B-action parent-choice function) and its network.
    strict:
        When true, raise :class:`~repro.errors.SpecificationViolation`
        the moment a condition fails; otherwise record violations in the
        cycle reports (used when *measuring* failure rates of the
        non-snap baseline).
    quarantine:
        Nodes excluded from the judged wave subtree — the byzantine
        containment story.  A quarantined node is never admitted to the
        wave membership set, its [PIF1]/[PIF2] obligations are waived,
        and its demotions are not violations; the specification is
        judged *on the rest*.  Because wave membership is provenance
        (``parent ∈ wave``), a processor attaching *through* a
        quarantined relay has not received ``m`` from a trusted path
        and still counts against [PIF1] — quarantine shrinks the
        obligation set, never the evidence bar.  The root cannot be
        quarantined (there would be no waves to judge).
    """

    def __init__(
        self,
        protocol: WaveProtocol,
        network: Network,
        *,
        strict: bool = False,
        quarantine: "frozenset[int] | tuple[int, ...]" = (),
    ) -> None:
        self.protocol = protocol
        self.network = network
        self.strict = strict
        self.quarantine = frozenset(quarantine)
        if protocol.root in self.quarantine:
            raise ValueError(
                f"the root ({protocol.root}) cannot be quarantined — "
                f"no waves would remain to judge"
            )
        self.reports: list[CycleReport] = []
        self._active: CycleReport | None = None
        self._in_wave: set[int] = set()
        self._rounds_seen = 0
        self._feedback_done = False

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    @property
    def active_cycle(self) -> CycleReport | None:
        """The report of the wave in progress, if any."""
        return self._active

    @property
    def completed_cycles(self) -> list[CycleReport]:
        """Reports of all completed cycles so far."""
        return [r for r in self.reports if r.completed]

    def all_cycles_ok(self) -> bool:
        """Every *completed* cycle satisfied PIF1 and PIF2."""
        return all(r.ok for r in self.completed_cycles)

    # ------------------------------------------------------------------
    # Monitor interface
    # ------------------------------------------------------------------
    def on_start(self, configuration: Configuration) -> None:
        """Reset the per-run state (the monitor may be reused)."""
        self._active = None
        self._in_wave = set()
        self._rounds_seen = 0
        self._feedback_done = False

    def on_network(self, network: Network) -> None:
        """Follow a live topology change (chaos campaigns).

        The monitor judges [PIF1]/[PIF2] against ``network.nodes`` and
        reads parent choices through the network, so it must track the
        simulator's current topology.  The simulator restarts monitors
        (:meth:`on_start`) right after calling this — a wave straddling
        a topology change is not judged (the specification quantifies
        over waves initiated in a fixed topology).
        """
        self.network = network

    def on_step(
        self, before: Configuration, record: StepRecord, after: Configuration
    ) -> None:
        self._rounds_seen += record.rounds_completed
        root = self.protocol.root
        selection = record.selection

        if self._active is None:
            if selection.get(root) == "B-action":
                self._begin_wave(record)
            return

        report = self._active
        report.moves += len(selection)
        report.rounds += record.rounds_completed

        # Process the root first: if its action closes the wave (the
        # C-action after feedback, or an abort), the other moves of the
        # same step belong to no wave — a simultaneous non-root B-action
        # can only be attaching to stale garbage, since the root was not
        # broadcasting in the pre-step configuration.
        if root in selection:
            self._observe_root(selection[root], record, after)
        for node, action in sorted(selection.items()):
            if self._active is None:
                break
            if node != root:
                self._observe_non_root(node, action, before, after)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _begin_wave(self, record: StepRecord) -> None:
        report = CycleReport(start_step=record.index)
        report.received.add(self.protocol.root)
        self._in_wave = {self.protocol.root}
        self._feedback_done = False
        self._active = report
        self.reports.append(report)

    def _observe_root(
        self, action: str, record: StepRecord, after: Configuration
    ) -> None:
        assert self._active is not None
        report = self._active
        if action == "F-action":
            report.root_feedback_step = record.index
            expected = set(self.network.nodes) - self.quarantine
            missing = sorted(expected - report.received)
            if missing:
                self._violate(
                    report,
                    f"[PIF1] root fed back but {len(missing)} processor(s) "
                    f"never received m: {missing}",
                )
            missing = sorted(expected - {self.protocol.root} - report.acked)
            if missing:
                self._violate(
                    report,
                    f"[PIF2] root fed back without acknowledgment from "
                    f"{len(missing)} processor(s): {missing}",
                )
            self._feedback_done = True
        elif action == "C-action":
            if self._feedback_done:
                self._finish_wave(record)
            else:
                self._violate(report, "root cleaned without feeding back")
                self._abort_wave(record)
        elif action == "B-correction":
            self._violate(report, "root aborted the initiated wave (B-correction)")
            self._abort_wave(record)
        elif action == "B-action":
            self._violate(report, "root re-broadcast inside an open cycle")

    def _observe_non_root(
        self,
        node: int,
        action: str,
        before: Configuration,
        after: Configuration,
    ) -> None:
        assert self._active is not None
        report = self._active
        if node in self.quarantine:
            # Quarantined processors are outside the judged subtree:
            # they neither join the wave nor owe receipt/acknowledgment,
            # and their demotions are expected, not violations.
            return
        if action == "B-action":
            parent = self.protocol.join_parent(
                Context(node, self.network, before)
            )
            if parent in self._in_wave:
                self._in_wave.add(node)
                report.received.add(node)
                state = after[node]
                if isinstance(state, PifState):
                    report.height = max(report.height, state.level)
            # else: the processor attached to a stale tree — it did not
            # receive m; nothing to record (PIF1 accounting catches it).
        elif action == "F-action":
            if node in self._in_wave:
                report.acked.add(node)
        elif action in ("B-correction", "F-correction"):
            if node in self._in_wave:
                self._violate(
                    report,
                    f"wave member {node} was demoted by {action} "
                    f"(a legitimate wave member must never turn abnormal)",
                )
                self._in_wave.discard(node)

    def _finish_wave(self, record: StepRecord) -> None:
        assert self._active is not None
        self._active.end_step = record.index
        self._active.completed = True
        self._active = None
        self._in_wave = set()

    def _abort_wave(self, record: StepRecord) -> None:
        assert self._active is not None
        self._active.end_step = record.index
        self._active.completed = False
        self._active = None
        self._in_wave = set()

    def _violate(self, report: CycleReport, message: str) -> None:
        report.violations.append(message)
        if self.strict:
            raise SpecificationViolation(message)
