"""The paper's contribution: the snap-stabilizing PIF and its executable spec.

Modules
-------
state
    Variables (``Pif``, ``Par``, ``L``, ``Count``, ``Fok``) and protocol
    constants.
macros
    ``Sum_Set``, ``Sum``, ``Pre_Potential``, ``Potential``.
predicates
    ``Good*``, ``Normal``, ``Leaf``/``BLeaf``/``BFree`` and all guards.
actions
    The root and non-root programs (Algorithms 1 and 2).
pif
    :class:`SnapPif` — the protocol object.
payload
    :class:`PayloadSnapPif` — value-carrying variant for applications.
monitor
    :class:`PifCycleMonitor` — executable PIF1/PIF2 specification.
definitions
    Definitions 3-16 (parent paths, trees, configuration classes).
"""

from repro.core.definitions import (
    ConfigurationClasses,
    abnormal_nodes,
    all_trees,
    classify,
    good_legal_tree,
    is_broadcast_configuration,
    is_ebn_configuration,
    is_ef_configuration,
    is_efn_configuration,
    is_good_configuration,
    is_normal_configuration,
    is_normal_node,
    is_sb_configuration,
    is_sbn_configuration,
    legal_tree,
    legal_tree_height,
    parent_path,
    pif_state,
    sources,
    subtree_size,
    tree,
    tree_children,
)
from repro.core.monitor import CycleReport, PifCycleMonitor
from repro.core.payload import NO_ACK, PayloadPifState, PayloadSnapPif
from repro.core.pif import SnapPif
from repro.core.state import Phase, PifConstants, PifState

__all__ = [
    "ConfigurationClasses",
    "CycleReport",
    "NO_ACK",
    "PayloadPifState",
    "PayloadSnapPif",
    "Phase",
    "PifConstants",
    "PifCycleMonitor",
    "PifState",
    "SnapPif",
    "abnormal_nodes",
    "all_trees",
    "classify",
    "good_legal_tree",
    "is_broadcast_configuration",
    "is_ebn_configuration",
    "is_ef_configuration",
    "is_efn_configuration",
    "is_good_configuration",
    "is_normal_configuration",
    "is_normal_node",
    "is_sb_configuration",
    "is_sbn_configuration",
    "legal_tree",
    "legal_tree_height",
    "parent_path",
    "pif_state",
    "sources",
    "subtree_size",
    "tree",
    "tree_children",
]
