"""The predicates of Algorithms 1 and 2.

Split into *well-formedness* predicates (``GoodPif``, ``GoodLevel``,
``GoodFok``, ``GoodCount``, their conjunction ``Normal``) and *guard*
predicates (``Broadcast``, ``ChangeFok``, ``Feedback``, ``Cleaning``,
``NewCount``, ``AbnormalB``, ``AbnormalF``).  Root and non-root
processors have different definitions where the paper gives them
(Algorithm 1 vs Algorithm 2); the dispatching helpers ``normal``,
``good_count`` and ``good_fok`` pick the right variant.

Interpretation note (DESIGN.md §1.1): the root's ``GoodFok`` is read as
``(Pif_r = B ∧ Fok_r) ⇒ (Count_r = N)`` — the published equality
``Fok_r = (Sum_r = N)`` cannot be an invariant because ``Sum_r``
legitimately drops below ``N`` during the feedback phase while ``Fok_r``
must stay true for ``Feedback(r)`` to fire.
"""

from __future__ import annotations

from repro.core.macros import potential, sum_value
from repro.core.state import Phase, PifConstants, PifState
from repro.runtime.protocol import Context

__all__ = [
    "good_pif",
    "good_level",
    "good_fok",
    "good_count",
    "normal",
    "leaf",
    "b_leaf",
    "b_free",
    "broadcast_guard",
    "change_fok_guard",
    "feedback_guard",
    "cleaning_guard",
    "new_count_guard",
    "abnormal_b",
    "abnormal_f",
]


def _own(ctx: Context) -> PifState:
    state = ctx.state
    assert isinstance(state, PifState)
    return state


def _parent_state(ctx: Context) -> PifState:
    own = _own(ctx)
    assert own.par is not None, "root has no parent"
    ps = ctx.neighbor_state(own.par)
    assert isinstance(ps, PifState)
    return ps


# ----------------------------------------------------------------------
# Well-formedness
# ----------------------------------------------------------------------
def good_pif(ctx: Context, k: PifConstants) -> bool:
    """``GoodPif(p)`` (non-root): the phase is consistent with the parent's.

    ``(Pif_p ≠ C) ⇒ ((Pif_{Par_p} ≠ Pif_p) ⇒ (Pif_{Par_p} = B))`` — a
    broadcasting processor's parent broadcasts; a feeding-back
    processor's parent broadcasts or feeds back.
    """
    own = _own(ctx)
    if own.pif is Phase.C:
        return True
    parent_pif = _parent_state(ctx).pif
    return parent_pif is own.pif or parent_pif is Phase.B


def good_level(ctx: Context, k: PifConstants) -> bool:
    """``GoodLevel(p)`` (non-root): ``(Pif_p ≠ C) ⇒ (L_p = L_{Par_p} + 1)``."""
    own = _own(ctx)
    if own.pif is Phase.C:
        return True
    return own.level == _parent_state(ctx).level + 1


def good_fok(ctx: Context, k: PifConstants) -> bool:
    """``GoodFok(p)``, root and non-root variants.

    Non-root: a broadcasting processor's Fok flag may differ from its
    parent's only by lagging (``¬Fok_p``); a feeding-back processor's
    still-broadcasting parent must have its Fok flag up (feedback starts
    only after the Fok wave passed).

    Root: ``(Pif_r = B ∧ Fok_r) ⇒ (Count_r = N)`` — the Fok wave may only
    be up on a complete count (see module docstring).
    """
    own = _own(ctx)
    if ctx.node == k.root:
        if own.pif is Phase.B and own.fok:
            return own.count == k.n
        return True
    if own.pif is Phase.B:
        ps = _parent_state(ctx)
        if own.fok != ps.fok and own.fok:
            return False
    if own.pif is Phase.F:
        ps = _parent_state(ctx)
        if ps.pif is Phase.B and not ps.fok:
            return False
    return True


def good_count(ctx: Context, k: PifConstants) -> bool:
    """``GoodCount(p)``: ``((Pif_p = B) ∧ ¬Fok_p) ⇒ (Count_p ≤ Sum_p)``.

    Identical for root and non-root processors.
    """
    own = _own(ctx)
    if own.pif is Phase.B and not own.fok:
        return own.count <= sum_value(ctx, k)
    return True


def normal(ctx: Context, k: PifConstants) -> bool:
    """``Normal(p)``: the conjunction of the applicable Good* predicates.

    Memoized per configuration when the context carries an evaluation
    cache — five of the seven guards conjoin ``Normal(p)``, so one
    enabled-map pass would otherwise recompute it up to five times.
    """
    cache = ctx.cache
    if cache is not None:
        hit = cache.get((ctx.node, "normal"))
        if hit is not None:
            return hit
    if ctx.node == k.root:
        result = good_fok(ctx, k) and good_count(ctx, k)
    else:
        result = (
            good_pif(ctx, k)
            and good_level(ctx, k)
            and good_fok(ctx, k)
            and good_count(ctx, k)
        )
    if cache is not None:
        cache[(ctx.node, "normal")] = result
    return result


# ----------------------------------------------------------------------
# Structural neighborhood predicates (non-root)
# ----------------------------------------------------------------------
def leaf(ctx: Context, k: PifConstants) -> bool:
    """``Leaf(p)``: no active neighbor designates ``p`` as its parent.

    ``∀q ∈ Neig_p :: (Pif_q ≠ C) ⇒ (Par_q ≠ p)``

    Memoized per configuration (``Broadcast`` and ``Cleaning`` both
    conjoin it) when the context carries an evaluation cache.
    """
    cache = ctx.cache
    if cache is not None:
        hit = cache.get((ctx.node, "leaf"))
        if hit is not None:
            return hit
    result = True
    for _q, sq in ctx.neighbor_states():
        assert isinstance(sq, PifState)
        if sq.pif is not Phase.C and sq.par == ctx.node:
            result = False
            break
    if cache is not None:
        cache[(ctx.node, "leaf")] = result
    return result


def b_leaf(ctx: Context, k: PifConstants) -> bool:
    """``BLeaf(p)``: all *active* processors designating ``p`` as parent fed back.

    ``(Pif_p = B) ⇒ (∀q ∈ Neig_p :: (Par_q = p ∧ Pif_q ≠ C) ⇒ (Pif_q = F))``

    Interpretation note (DESIGN.md §1.1): the paper prints the condition
    without the ``Pif_q ≠ C`` qualifier, but a *clean* neighbor whose
    stale ``Par`` pointer designates ``p`` must not block the feedback —
    otherwise the configuration «p broadcasting with ``Fok_p``, q clean
    with ``Par_q = p``» deadlocks (q cannot rejoin below a frozen
    subtree, p can never feed back), contradicting Theorems 2/3.  All
    other structural predicates (``Leaf``, the root's ``Feedback``)
    already ignore clean neighbors; this reading makes ``BLeaf``
    consistent with them, and the exhaustive convergence check
    (:mod:`repro.verification.convergence`) passes only with it.
    """
    own = _own(ctx)
    if own.pif is not Phase.B:
        return True
    for _q, sq in ctx.neighbor_states():
        assert isinstance(sq, PifState)
        if sq.par == ctx.node and sq.pif is Phase.B:
            return False
    return True


def b_free(ctx: Context, k: PifConstants) -> bool:
    """``BFree(p)``: no neighbor is broadcasting."""
    for _q, sq in ctx.neighbor_states():
        assert isinstance(sq, PifState)
        if sq.pif is Phase.B:
            return False
    return True


# ----------------------------------------------------------------------
# Guards
# ----------------------------------------------------------------------
def broadcast_guard(ctx: Context, k: PifConstants) -> bool:
    """``Broadcast(p)``.

    Root: ``(Pif_r = C) ∧ (∀q ∈ Neig_r :: Pif_q = C)``.
    Non-root: ``(Pif_p = C) ∧ Leaf(p) ∧ (Potential_p ≠ ∅)`` — the
    ``Leaf(p)`` conjunct is the guard that yields snap-stabilization
    (no processor joins the wave while a stale child still points at it);
    it can be ablated via ``k.leaf_guard``.
    """
    own = _own(ctx)
    if own.pif is not Phase.C:
        return False
    if ctx.node == k.root:
        return all(
            sq.pif is Phase.C  # type: ignore[union-attr]
            for _q, sq in ctx.neighbor_states()
        )
    if k.leaf_guard and not leaf(ctx, k):
        return False
    return bool(potential(ctx, k))


def change_fok_guard(ctx: Context, k: PifConstants) -> bool:
    """``ChangeFok(p)`` (non-root): ``(Pif_p = B) ∧ Normal(p) ∧ (Fok_p ≠ Fok_{Par_p})``."""
    own = _own(ctx)
    if own.pif is not Phase.B:
        return False
    if own.fok == _parent_state(ctx).fok:
        return False
    return normal(ctx, k)


def feedback_guard(ctx: Context, k: PifConstants) -> bool:
    """``Feedback(p)``.

    Root: ``(Pif_r = B) ∧ Normal(r) ∧ (∀q ∈ Neig_r :: Pif_q ≠ B) ∧ Fok_r``.
    Non-root: ``(Pif_p = B) ∧ Normal(p) ∧ BLeaf(p) ∧ Fok_p``.
    """
    own = _own(ctx)
    if own.pif is not Phase.B or not own.fok:
        return False
    if ctx.node == k.root:
        if not b_free(ctx, k):
            return False
    else:
        if not b_leaf(ctx, k):
            return False
    return normal(ctx, k)


def cleaning_guard(ctx: Context, k: PifConstants) -> bool:
    """``Cleaning(p)``.

    Root: ``(Pif_r = F) ∧ (∀q ∈ Neig_r :: Pif_q = C)``.
    Non-root: ``(Pif_p = F) ∧ Normal(p) ∧ Leaf(p) ∧ BFree(p)``.
    """
    own = _own(ctx)
    if own.pif is not Phase.F:
        return False
    if ctx.node == k.root:
        return all(
            sq.pif is Phase.C  # type: ignore[union-attr]
            for _q, sq in ctx.neighbor_states()
        )
    return leaf(ctx, k) and b_free(ctx, k) and normal(ctx, k)


def new_count_guard(ctx: Context, k: PifConstants) -> bool:
    """``NewCount(p)``: ``(Pif_p = B) ∧ Normal(p) ∧ (Count_p < Sum_p) ∧ ¬Fok_p``."""
    own = _own(ctx)
    if own.pif is not Phase.B or own.fok:
        return False
    if own.count >= sum_value(ctx, k):
        return False
    return normal(ctx, k)


def abnormal_b(ctx: Context, k: PifConstants) -> bool:
    """``AbnormalB(p)``: ``¬Normal(p) ∧ (Pif_p = B)``.

    For the root this is the guard of its (only) correction, which fires
    whenever the root is abnormal — the root's Good* predicates only bite
    in phase B, so the phase conjunct is implied.
    """
    own = _own(ctx)
    if own.pif is not Phase.B:
        return False
    return not normal(ctx, k)


def abnormal_f(ctx: Context, k: PifConstants) -> bool:
    """``AbnormalF(p)`` (non-root): ``¬Normal(p) ∧ (Pif_p = F)``."""
    own = _own(ctx)
    if own.pif is not Phase.F:
        return False
    return not normal(ctx, k)
