"""Variables of the snap-stabilizing PIF (Algorithms 1 and 2).

Every processor ``p`` maintains:

* ``Pif_p ∈ {B, F, C}`` — broadcast / feedback / clean phase,
* ``Par_p ∈ Neig_p`` — parent in the dynamically built B-tree
  (the root's parent is the constant ``⊥``, encoded as ``None``),
* ``L_p ∈ [1, L_max]`` — level, i.e. the length of the path the
  broadcast followed from the root (the root's level is the constant 0),
* ``Count_p ∈ [1, N']`` — number of processors counted in ``B-tree_p``,
* ``Fok_p`` — the "feedback OK" wave flag.

:class:`PifConstants` bundles the protocol inputs (``N``, ``N'``,
``L_max``, the root identity) together with the ablation switches used
by experiment E10.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.columnar.schema import ColumnField, ColumnSchema, bool_field
from repro.errors import ProtocolError
from repro.runtime.network import Network
from repro.runtime.state import NodeState

__all__ = [
    "Phase",
    "PHASE_BY_CODE",
    "PHASE_CODES",
    "PIF_COLUMNS",
    "PifState",
    "PifConstants",
    "encode_optional_node",
    "decode_optional_node",
]


class Phase(enum.Enum):
    """The three PIF phases of a processor."""

    B = "B"  #: broadcast: received and forwarded the message
    F = "F"  #: feedback: acknowledged, waiting for the wave to unwind
    C = "C"  #: clean: ready to participate in the next PIF cycle

    def __repr__(self) -> str:  # compact traces
        return self.value


@dataclass(frozen=True, slots=True)
class PifState(NodeState):
    """State of one processor in Algorithms 1/2.

    The root's ``par`` is always ``None`` and its ``level`` always 0
    (the paper's constants ``Par_r = ⊥`` and ``L_r = 0``).

    The hash is computed once and cached: the exhaustive model checker
    hashes the same state objects millions of times (configuration
    interning, visited-set and memo lookups), and a configuration shares
    most of its state objects with its predecessor.
    """

    pif: Phase
    par: int | None
    level: int
    count: int
    fok: bool
    _hash: int | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def __hash__(self) -> int:
        h = self._hash
        if h is None:
            h = hash((self.pif, self.par, self.level, self.count, self.fok))
            object.__setattr__(self, "_hash", h)
        return h

    def brief(self) -> str:
        """Compact single-state rendering used in debug output."""
        par = "⊥" if self.par is None else str(self.par)
        fok = "T" if self.fok else "f"
        return f"{self.pif.value}/p{par}/L{self.level}/c{self.count}/{fok}"


#: Integer phase codes used by the columnar engine.  Fixed — the
#: compiled guard kernels hard-code them.
PHASE_CODES = {Phase.B: 0, Phase.F: 1, Phase.C: 2}
PHASE_BY_CODE = (Phase.B, Phase.F, Phase.C)


def encode_optional_node(node: int | None) -> int:
    """``node | None`` → int column value (``⊥`` becomes ``-1``).

    The shared encoding for every optional-node-pointer column (PIF
    parents, spanning-tree parents, …): node ids are non-negative, so
    ``-1`` is free to mean "no node" — and it is what the columnar IR's
    ``NbrArgMinFirst`` yields for an empty match set.
    """
    return -1 if node is None else node


def decode_optional_node(value: int) -> int | None:
    """Inverse of :func:`encode_optional_node`."""
    return None if value < 0 else value


#: The columnar layout of :class:`PifState` — one flat column per
#: variable of Algorithms 1/2.  ``Par_r = ⊥`` is encoded as ``-1``
#: (node ids are non-negative).
PIF_COLUMNS = ColumnSchema(
    state_type=PifState,
    fields=(
        ColumnField(
            "pif",
            typecode="b",
            encode=PHASE_CODES.__getitem__,
            decode=PHASE_BY_CODE.__getitem__,
        ),
        ColumnField(
            "par", encode=encode_optional_node, decode=decode_optional_node
        ),
        ColumnField("level"),
        ColumnField("count"),
        bool_field("fok"),
    ),
)


@dataclass(frozen=True)
class PifConstants:
    """Protocol inputs and interpretation/ablation switches.

    Parameters
    ----------
    root:
        The initiator ``r``.
    n:
        Exact network size ``N`` — known to the root only; the lever that
        makes snap-stabilization possible (Section 3.1).
    n_prime:
        Upper bound ``N' ≥ N`` on the ``Count`` domain.
    l_max:
        Level bound, must satisfy ``L_max ≥ N - 1``.
    leaf_guard:
        Keep the ``Leaf(p)`` conjunct in ``Broadcast(p)``.  Disabling it
        (ablation E10) lets processors with stale children join the wave
        and breaks the snap property.
    fok_join_guard:
        Keep the ``¬Fok_q`` conjunct in ``Pre_Potential_p`` (no joining
        below an already-counted subtree).  Ablation E10.
    corrections:
        Keep the B-/F-correction actions.  Disabling them (ablation E10)
        removes convergence from arbitrary configurations.
    """

    root: int
    n: int
    n_prime: int
    l_max: int
    leaf_guard: bool = field(default=True)
    fok_join_guard: bool = field(default=True)
    corrections: bool = field(default=True)

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ProtocolError(f"N must be positive, got {self.n}")
        if self.n_prime < self.n:
            raise ProtocolError(
                f"N' must be an upper bound of N: N'={self.n_prime} < N={self.n}"
            )
        if self.l_max < max(1, self.n - 1):
            raise ProtocolError(
                f"L_max must be >= N-1: L_max={self.l_max}, N={self.n}"
            )

    @classmethod
    def for_network(
        cls,
        network: Network,
        root: int = 0,
        *,
        n_prime: int | None = None,
        l_max: int | None = None,
        leaf_guard: bool = True,
        fok_join_guard: bool = True,
        corrections: bool = True,
    ) -> "PifConstants":
        """Build the canonical constants for a network: ``N' = N``, ``L_max = N-1``."""
        if root not in network.nodes:
            raise ProtocolError(f"root {root} is not a node of the network")
        n = network.n
        return cls(
            root=root,
            n=n,
            n_prime=n_prime if n_prime is not None else n,
            l_max=l_max if l_max is not None else max(1, n - 1),
            leaf_guard=leaf_guard,
            fok_join_guard=fok_join_guard,
            corrections=corrections,
        )

    def validate_state(self, node: int, state: PifState, network: Network) -> None:
        """Check a state against the variable domains (used by tests/fuzzers)."""
        if node == self.root:
            if state.par is not None or state.level != 0:
                raise ProtocolError(
                    f"root state must have par=None, level=0, got {state}"
                )
        else:
            if state.par is None or not network.has_edge(node, state.par):
                raise ProtocolError(
                    f"node {node}: par must be a neighbor, got {state.par}"
                )
            if not 1 <= state.level <= self.l_max:
                raise ProtocolError(
                    f"node {node}: level {state.level} outside [1, {self.l_max}]"
                )
        if not 1 <= state.count <= self.n_prime:
            raise ProtocolError(
                f"node {node}: count {state.count} outside [1, {self.n_prime}]"
            )
