"""The snap-stabilizing PIF protocol (the paper's contribution).

:class:`SnapPif` wires the per-node programs of Algorithms 1 and 2 into
the :class:`~repro.runtime.protocol.Protocol` interface so it can run
under any daemon of :mod:`repro.runtime.daemons`, be fuzzed from
arbitrary configurations, and be exhaustively model checked.

Quick start::

    from repro import PifCycleMonitor, Simulator, SnapPif, line

    net = line(8)
    protocol = SnapPif.for_network(net)        # root = 0, N known at root
    monitor = PifCycleMonitor(protocol, net)
    sim = Simulator(protocol, net, monitors=[monitor])
    sim.run(until=lambda c: len(monitor.completed_cycles) >= 1)
"""

from __future__ import annotations

from random import Random
from typing import Sequence

from repro.core.actions import non_root_program, root_program
from repro.core.macros import chosen_parent
from repro.core.state import Phase, PifConstants, PifState
from repro.errors import ProtocolError
from repro.runtime.network import Network
from repro.runtime.protocol import Action, Context, Protocol
from repro.runtime.state import Configuration

__all__ = ["SnapPif"]


class SnapPif(Protocol):
    """Snap-stabilizing PIF for arbitrary rooted networks (ICDCS 2002)."""

    name = "snap-pif"

    def __init__(self, constants: PifConstants) -> None:
        super().__init__()
        self.constants = constants
        self._root_program = root_program(constants)
        self._non_root_program = non_root_program(constants)

    @classmethod
    def for_network(
        cls,
        network: Network,
        root: int = 0,
        *,
        n_prime: int | None = None,
        l_max: int | None = None,
        leaf_guard: bool = True,
        fok_join_guard: bool = True,
        corrections: bool = True,
    ) -> "SnapPif":
        """Instantiate with the canonical constants for ``network``."""
        return cls(
            PifConstants.for_network(
                network,
                root,
                n_prime=n_prime,
                l_max=l_max,
                leaf_guard=leaf_guard,
                fok_join_guard=fok_join_guard,
                corrections=corrections,
            )
        )

    @property
    def root(self) -> int:
        """The initiator ``r``."""
        return self.constants.root

    # ------------------------------------------------------------------
    # Protocol interface
    # ------------------------------------------------------------------
    def actions(self, node: int, network: Network) -> Sequence[Action]:
        self._check_network(network)
        if node == self.constants.root:
            return self._root_program
        return self._non_root_program

    def initial_state(self, node: int, network: Network) -> PifState:
        """The normal starting configuration has ``Pif_p = C`` everywhere.

        The remaining variables are irrelevant in phase ``C``; they are
        set to arbitrary in-domain values (``par`` = locally smallest
        neighbor, ``level`` = 1, ``count`` = 1).
        """
        self._check_network(network)
        if node == self.constants.root:
            return PifState(pif=Phase.C, par=None, level=0, count=1, fok=False)
        return PifState(
            pif=Phase.C,
            par=network.neighbors(node)[0],
            level=1,
            count=1,
            fok=False,
        )

    def random_state(self, node: int, network: Network, rng: Random) -> PifState:
        """Sample uniformly from the full variable domains (fault model)."""
        self._check_network(network)
        k = self.constants
        phase = rng.choice((Phase.B, Phase.F, Phase.C))
        count = rng.randint(1, k.n_prime)
        fok = rng.random() < 0.5
        if node == k.root:
            return PifState(pif=phase, par=None, level=0, count=count, fok=fok)
        return PifState(
            pif=phase,
            par=rng.choice(network.neighbors(node)),
            level=rng.randint(1, k.l_max),
            count=count,
            fok=fok,
        )

    def sanitize_state(
        self, node: int, state: PifState, network: Network
    ) -> PifState:
        """Re-domain a state after topology churn.

        ``Par_p ∈ Neig_p`` is the only topology-dependent domain; a
        parent pointer dangling across a removed edge is re-pointed at
        the locally smallest neighbor.  The value is deliberately
        arbitrary — it is garbage either way, and the snap guarantees
        cover arbitrary garbage — but it must be *in domain* so guards
        can legally read it (``Context.neighbor_state`` refuses
        non-neighbor reads).
        """
        self._check_network(network)
        if node == self.constants.root:
            return state
        if state.par is not None and not network.has_edge(node, state.par):
            return state.replace(par=network.neighbors(node)[0])
        return state

    def compile_columnar(self, network: Network, backend: str):
        """The compiled flat-array kernel (see DESIGN.md §11).

        Only the unmodified :class:`SnapPif` compiles: subclasses
        (e.g. :class:`~repro.core.payload.PayloadSnapPif`) wrap the
        programs with extra state and semantics the kernel does not
        model, so they fall back to the object bridge unless they
        provide their own kernel.
        """
        if type(self) is not SnapPif:
            return None
        self._check_network(network)
        from repro.columnar.snap_pif_kernel import SnapPifKernel

        return SnapPifKernel(self, network, backend)

    # ------------------------------------------------------------------
    # PIF-specific helpers
    # ------------------------------------------------------------------
    def join_parent(self, ctx: Context) -> int | None:
        """The parent ``B-action`` would choose at ``ctx`` (monitor hook)."""
        return chosen_parent(ctx, self.constants)

    def root_state(self, configuration: Configuration) -> PifState:
        """The root's state in ``configuration``."""
        state = configuration[self.constants.root]
        assert isinstance(state, PifState)
        return state

    def all_clean(self, configuration: Configuration) -> bool:
        """``∀p, Pif_p = C`` — the normal starting configuration."""
        return all(
            isinstance(s, PifState) and s.pif is Phase.C for s in configuration
        )

    def _check_network(self, network: Network) -> None:
        if network.n != self.constants.n:
            raise ProtocolError(
                f"protocol configured for N={self.constants.n} but network "
                f"has {network.n} processors"
            )
