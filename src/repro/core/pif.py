"""The snap-stabilizing PIF protocol (the paper's contribution).

:class:`SnapPif` wires the per-node programs of Algorithms 1 and 2 into
the :class:`~repro.runtime.protocol.Protocol` interface so it can run
under any daemon of :mod:`repro.runtime.daemons`, be fuzzed from
arbitrary configurations, and be exhaustively model checked.

Quick start::

    from repro import PifCycleMonitor, Simulator, SnapPif, line

    net = line(8)
    protocol = SnapPif.for_network(net)        # root = 0, N known at root
    monitor = PifCycleMonitor(protocol, net)
    sim = Simulator(protocol, net, monitors=[monitor])
    sim.run(until=lambda c: len(monitor.completed_cycles) >= 1)
"""

from __future__ import annotations

from random import Random
from typing import Sequence

from repro.columnar.expr import (
    ActionSpec,
    Add,
    And,
    ColumnarSpec,
    Const,
    Eq,
    Le,
    Lt,
    Min2,
    Nbr,
    NbrAll,
    NbrArgMinFirst,
    NbrExists,
    NbrMin,
    NbrSum,
    Ne,
    NodeId,
    Not,
    Or,
    Own,
    Ptr,
)
from repro.core.actions import non_root_program, root_program
from repro.core.macros import chosen_parent
from repro.core.state import PIF_COLUMNS, Phase, PifConstants, PifState
from repro.errors import ProtocolError
from repro.runtime.network import Network
from repro.runtime.protocol import Action, Context, Protocol
from repro.runtime.state import Configuration

__all__ = ["SnapPif", "snap_pif_spec"]


def snap_pif_spec(
    constants: PifConstants, *, object_statements: bool = False
) -> ColumnarSpec:
    """Algorithms 1 and 2 as guard-expression IR.

    The declarative form of what ``snap_pif_kernel.py`` used to
    hand-transcribe: every guard is a boolean combination of own reads,
    parent gathers (``Par_p ∈ Neig_p``) and neighborhood folds.
    Subexpressions are shared *as objects* (``Sum_p``, ``Potential_p``
    membership, ``Normal``…) so both evaluators fold each of them once
    per node.  Phase codes are fixed by ``PIF_COLUMNS``: B=0, F=1, C=2.
    """
    k = constants
    B, F, C = 0, 1, 2
    is_b = Eq(Own("pif"), Const(B))
    is_f = Eq(Own("pif"), Const(F))
    is_c = Eq(Own("pif"), Const(C))
    n_is_b = Eq(Nbr("pif"), Const(B))
    child = Eq(Nbr("par"), NodeId())
    # Sum_p = 1 + Σ Count_q over B-children at the right level that have
    # not been counted yet (¬Fok_q).
    sum_member = And(
        n_is_b,
        child,
        Eq(Nbr("level"), Add(Own("level"), Const(1))),
        Not(Nbr("fok")),
    )
    sums = Add(Const(1), NbrSum(Nbr("count"), where=sum_member))
    all_clean = NbrAll(Eq(Nbr("pif"), Const(C)))
    has_b = NbrExists(n_is_b)
    n_prime = Const(k.n_prime)
    count_cap = Min2(sums, n_prime)

    # --- Algorithm 1: the root -------------------------------------
    good_r = And(
        Or(Not(Own("fok")), Eq(Own("count"), Const(k.n))),
        Or(Own("fok"), Le(Own("count"), sums)),
    )
    root_actions = [
        ActionSpec(
            "B-action",
            And(is_c, all_clean),
            {
                "pif": Const(B),
                "count": Const(1),
                "fok": Const(1 if k.n == 1 else 0),
            },
        ),
        ActionSpec(
            "F-action",
            And(is_b, good_r, Own("fok"), Not(has_b)),
            {"pif": Const(F)},
        ),
        ActionSpec("C-action", And(is_f, all_clean), {"pif": Const(C)}),
        ActionSpec(
            "Count-action",
            And(
                is_b,
                good_r,
                Not(Own("fok")),
                Or(Lt(Own("count"), count_cap), Eq(sums, Const(k.n))),
            ),
            {"count": count_cap, "fok": Eq(sums, Const(k.n))},
        ),
    ]
    if k.corrections:
        root_actions.append(
            ActionSpec("B-correction", And(is_b, Not(good_r)), {"pif": Const(C)})
        )

    # --- Algorithm 2: everyone else --------------------------------
    prepot_terms = [n_is_b, Not(child), Lt(Nbr("level"), Const(k.l_max))]
    if k.fok_join_guard:
        prepot_terms.append(Not(Nbr("fok")))
    prepot = And(*prepot_terms)
    has_prepot = NbrExists(prepot)
    has_active_child = NbrExists(And(Ne(Nbr("pif"), Const(C)), child))
    has_b_child = NbrExists(And(n_is_b, child))
    parent_pif = Ptr("par", "pif")
    parent_fok = Ptr("par", "fok")
    good_level = Eq(Own("level"), Add(Ptr("par", "level"), Const(1)))
    normal_b = And(
        Eq(parent_pif, Const(B)),
        good_level,
        Not(And(Own("fok"), Not(parent_fok))),
        Or(Own("fok"), Le(Own("count"), sums)),
    )
    normal_f = And(
        Or(Eq(parent_pif, Const(F)), Eq(parent_pif, Const(B))),
        good_level,
        Not(And(Eq(parent_pif, Const(B)), Not(parent_fok))),
    )
    b_guard = [is_c, has_prepot]
    if k.leaf_guard:
        b_guard.append(Not(has_active_child))
    node_actions = [
        ActionSpec(
            "B-action",
            And(*b_guard),
            {
                "pif": Const(B),
                # min_{≻p}(Potential_p): first minimal-level member in
                # local order, level = that minimum + 1.
                "par": NbrArgMinFirst(Nbr("level"), where=prepot),
                "level": Add(NbrMin(Nbr("level"), where=prepot), Const(1)),
                "count": Const(1),
                "fok": Const(0),
            },
        ),
        ActionSpec(
            "Fok-action",
            And(is_b, normal_b, Ne(Own("fok"), parent_fok)),
            {"fok": Const(1)},
        ),
        ActionSpec(
            "F-action",
            And(is_b, normal_b, Own("fok"), Not(has_b_child)),
            {"pif": Const(F)},
        ),
        ActionSpec(
            "C-action",
            And(is_f, normal_f, Not(has_active_child), Not(has_b)),
            {"pif": Const(C)},
        ),
        ActionSpec(
            "Count-action",
            And(is_b, normal_b, Not(Own("fok")), Lt(Own("count"), count_cap)),
            {"count": count_cap},
        ),
    ]
    if k.corrections:
        node_actions.append(
            ActionSpec(
                "B-correction", And(is_b, Not(normal_b)), {"pif": Const(F)}
            )
        )
        node_actions.append(
            ActionSpec(
                "F-correction", And(is_f, Not(normal_f)), {"pif": Const(C)}
            )
        )

    root = k.root
    return ColumnarSpec(
        schema=PIF_COLUMNS,
        programs={"root": tuple(root_actions), "node": tuple(node_actions)},
        roles=lambda p: "root" if p == root else "node",
        bulk_role="node",
        object_statements=object_statements,
    )


class SnapPif(Protocol):
    """Snap-stabilizing PIF for arbitrary rooted networks (ICDCS 2002)."""

    name = "snap-pif"

    def __init__(self, constants: PifConstants) -> None:
        super().__init__()
        self.constants = constants
        self._root_program = root_program(constants)
        self._non_root_program = non_root_program(constants)

    @classmethod
    def for_network(
        cls,
        network: Network,
        root: int = 0,
        *,
        n_prime: int | None = None,
        l_max: int | None = None,
        leaf_guard: bool = True,
        fok_join_guard: bool = True,
        corrections: bool = True,
    ) -> "SnapPif":
        """Instantiate with the canonical constants for ``network``."""
        return cls(
            PifConstants.for_network(
                network,
                root,
                n_prime=n_prime,
                l_max=l_max,
                leaf_guard=leaf_guard,
                fok_join_guard=fok_join_guard,
                corrections=corrections,
            )
        )

    @property
    def root(self) -> int:
        """The initiator ``r``."""
        return self.constants.root

    # ------------------------------------------------------------------
    # Protocol interface
    # ------------------------------------------------------------------
    def actions(self, node: int, network: Network) -> Sequence[Action]:
        self._check_network(network)
        if node == self.constants.root:
            return self._root_program
        return self._non_root_program

    def initial_state(self, node: int, network: Network) -> PifState:
        """The normal starting configuration has ``Pif_p = C`` everywhere.

        The remaining variables are irrelevant in phase ``C``; they are
        set to arbitrary in-domain values (``par`` = locally smallest
        neighbor, ``level`` = 1, ``count`` = 1).
        """
        self._check_network(network)
        if node == self.constants.root:
            return PifState(pif=Phase.C, par=None, level=0, count=1, fok=False)
        return PifState(
            pif=Phase.C,
            par=network.neighbors(node)[0],
            level=1,
            count=1,
            fok=False,
        )

    def random_state(self, node: int, network: Network, rng: Random) -> PifState:
        """Sample uniformly from the full variable domains (fault model)."""
        self._check_network(network)
        k = self.constants
        phase = rng.choice((Phase.B, Phase.F, Phase.C))
        count = rng.randint(1, k.n_prime)
        fok = rng.random() < 0.5
        if node == k.root:
            return PifState(pif=phase, par=None, level=0, count=count, fok=fok)
        return PifState(
            pif=phase,
            par=rng.choice(network.neighbors(node)),
            level=rng.randint(1, k.l_max),
            count=count,
            fok=fok,
        )

    def sanitize_state(
        self, node: int, state: PifState, network: Network
    ) -> PifState:
        """Re-domain a state after topology churn.

        ``Par_p ∈ Neig_p`` is the only topology-dependent domain; a
        parent pointer dangling across a removed edge is re-pointed at
        the locally smallest neighbor.  The value is deliberately
        arbitrary — it is garbage either way, and the snap guarantees
        cover arbitrary garbage — but it must be *in domain* so guards
        can legally read it (``Context.neighbor_state`` refuses
        non-neighbor reads).
        """
        self._check_network(network)
        if node == self.constants.root:
            return state
        if state.par is not None and not network.has_edge(node, state.par):
            return state.replace(par=network.neighbors(node)[0])
        return state

    def columnar_spec(self):
        """Algorithms 1/2 in guard-expression IR (see DESIGN.md §12).

        Only the unmodified :class:`SnapPif` declares a spec:
        subclasses wrap the programs with extra state and semantics the
        columns do not model, so they fall back to the object bridge
        unless they declare their own spec (as
        :class:`~repro.core.payload.PayloadSnapPif` does).
        """
        if type(self) is not SnapPif:
            return None
        return snap_pif_spec(self.constants)

    # ------------------------------------------------------------------
    # PIF-specific helpers
    # ------------------------------------------------------------------
    def join_parent(self, ctx: Context) -> int | None:
        """The parent ``B-action`` would choose at ``ctx`` (monitor hook)."""
        return chosen_parent(ctx, self.constants)

    def root_state(self, configuration: Configuration) -> PifState:
        """The root's state in ``configuration``."""
        state = configuration[self.constants.root]
        assert isinstance(state, PifState)
        return state

    def all_clean(self, configuration: Configuration) -> bool:
        """``∀p, Pif_p = C`` — the normal starting configuration."""
        return all(
            isinstance(s, PifState) and s.pif is Phase.C for s in configuration
        )

    def _check_network(self, network: Network) -> None:
        if network.n != self.constants.n:
            raise ProtocolError(
                f"protocol configured for N={self.constants.n} but network "
                f"has {network.n} processors"
            )
