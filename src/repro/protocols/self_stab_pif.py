"""Baseline: a self-stabilizing (but **not** snap-stabilizing) PIF.

The paper's *Contribution* section contrasts snap-stabilization with the
prior self-stabilizing PIFs for arbitrary networks [12, 23]: a
self-stabilizing PIF only guarantees that *eventually* the waves it runs
are correct — when a processor starts a wave to propagate a value ``V``
before stabilization has completed, some processors may never receive
``V`` even though the root collects what looks like a complete feedback.

The texts of [12, 23] are not available offline, so this module is a
faithful reconstruction of that *class* of protocol (documented
substitution, DESIGN.md §2): it keeps the same B/F/C wave skeleton,
parent/level variables, minimum-level parent choice and
``GoodPif``/``GoodLevel`` corrections as the snap PIF, but drops the
three mechanisms that produce snap-stabilization:

* no ``Count``/``Fok`` machinery and no knowledge of ``N`` — the root
  feeds back when its local neighborhood looks finished;
* no ``Leaf`` guard on joining — a processor with stale children can
  enter a wave;
* feedback relies on neighbors being "done" (``Pif ≠ C``), which stale F
  processors satisfy *without having received the message*.

Consequences, measured in experiment E7: from a corrupted configuration
the first wave(s) can violate [PIF1]; after the corrections have cleaned
the garbage (self-stabilization), every later wave is a correct PIF
cycle.
"""

from __future__ import annotations

from random import Random
from typing import Sequence

from repro.columnar.expr import (
    ActionSpec,
    Add,
    And,
    ColumnarSpec,
    Const,
    Eq,
    Lt,
    Nbr,
    NbrAll,
    NbrArgMinFirst,
    NbrExists,
    NbrId,
    NbrMin,
    Ne,
    NodeId,
    Not,
    Or,
    Own,
    Ptr,
)
from repro.core.state import PIF_COLUMNS, Phase, PifState
from repro.errors import ProtocolError
from repro.runtime.network import Network
from repro.runtime.protocol import Action, Context, Protocol

__all__ = ["SelfStabPif"]


class SelfStabPif(Protocol):
    """Self-stabilizing PIF for arbitrary rooted networks (non-snap baseline).

    Reuses :class:`~repro.core.state.PifState` with ``count`` pinned to 1
    and ``fok`` pinned to ``False`` (the fields exist but are unused), so
    the fault injector and the cycle monitor work unchanged.
    """

    name = "self-stab-pif"

    def __init__(self, root: int, n: int, l_max: int | None = None) -> None:
        super().__init__()
        if n < 1:
            raise ProtocolError(f"N must be positive, got {n}")
        self.root = root
        self.n = n
        self.l_max = l_max if l_max is not None else max(1, n - 1)
        self._root_program = self._build_root_program()
        self._non_root_program = self._build_non_root_program()

    # ------------------------------------------------------------------
    # State helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _own(ctx: Context) -> PifState:
        state = ctx.state
        assert isinstance(state, PifState)
        return state

    def _parent_state(self, ctx: Context) -> PifState:
        own = self._own(ctx)
        assert own.par is not None
        ps = ctx.neighbor_state(own.par)
        assert isinstance(ps, PifState)
        return ps

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    def _normal(self, ctx: Context) -> bool:
        """``GoodPif ∧ GoodLevel`` — the only well-formedness this baseline checks."""
        if ctx.node == self.root:
            return True
        own = self._own(ctx)
        if own.pif is Phase.C:
            return True
        ps = self._parent_state(ctx)
        if ps.pif is not own.pif and ps.pif is not Phase.B:
            return False
        return own.level == ps.level + 1

    def _potential(self, ctx: Context) -> list[int]:
        """Minimum-level broadcasting neighbors (no Fok filter, no Leaf guard).

        Each neighbor state is read once; the result is memoized in the
        per-configuration evaluation cache when the context carries one.
        """
        cache = ctx.cache
        if cache is not None:
            hit = cache.get((ctx.node, "ss_potential"))
            if hit is not None:
                return hit
        candidates = []
        for q, sq in ctx.neighbor_states():
            assert isinstance(sq, PifState)
            if sq.pif is Phase.B and sq.par != ctx.node and sq.level < self.l_max:
                candidates.append((q, sq.level))
        if candidates:
            best = min(level for _q, level in candidates)
            result = [q for q, level in candidates if level == best]
        else:
            result = []
        if cache is not None:
            cache[(ctx.node, "ss_potential")] = result
        return result

    def join_parent(self, ctx: Context) -> int | None:
        """The parent B-action would pick (cycle-monitor hook)."""
        candidates = self._potential(ctx)
        return candidates[0] if candidates else None

    def _neighborhood_done(self, ctx: Context) -> bool:
        """Every neighbor looks finished with respect to ``p``.

        A neighbor is "done" when it is active (``Pif ≠ C``) and, if it
        designates ``p`` as its parent, it has fed back.  This is the
        guard that a stale F processor satisfies **without ever having
        received the message** — the source of the baseline's first-wave
        delivery failures.
        """
        own = self._own(ctx)
        for q, sq in ctx.neighbor_states():
            assert isinstance(sq, PifState)
            if q == own.par:
                continue
            if sq.pif is Phase.C:
                return False
            if sq.par == ctx.node and sq.pif is not Phase.F:
                return False
        return True

    def _leaf(self, ctx: Context) -> bool:
        for _q, sq in ctx.neighbor_states():
            assert isinstance(sq, PifState)
            if sq.pif is not Phase.C and sq.par == ctx.node:
                return False
        return True

    def _b_free(self, ctx: Context) -> bool:
        return all(
            sq.pif is not Phase.B  # type: ignore[union-attr]
            for _q, sq in ctx.neighbor_states()
        )

    # ------------------------------------------------------------------
    # Programs
    # ------------------------------------------------------------------
    def _build_root_program(self) -> tuple[Action, ...]:
        def broadcast_guard(ctx: Context) -> bool:
            own = self._own(ctx)
            return own.pif is Phase.C and all(
                sq.pif is Phase.C  # type: ignore[union-attr]
                for _q, sq in ctx.neighbor_states()
            )

        def feedback_guard(ctx: Context) -> bool:
            own = self._own(ctx)
            return own.pif is Phase.B and self._neighborhood_done(ctx)

        def cleaning_guard(ctx: Context) -> bool:
            own = self._own(ctx)
            return own.pif is Phase.F and all(
                sq.pif is Phase.C  # type: ignore[union-attr]
                for _q, sq in ctx.neighbor_states()
            )

        return (
            Action(
                "B-action",
                broadcast_guard,
                lambda ctx: self._own(ctx).replace(pif=Phase.B),
            ),
            Action(
                "F-action",
                feedback_guard,
                lambda ctx: self._own(ctx).replace(pif=Phase.F),
            ),
            Action(
                "C-action",
                cleaning_guard,
                lambda ctx: self._own(ctx).replace(pif=Phase.C),
            ),
        )

    def _build_non_root_program(self) -> tuple[Action, ...]:
        def broadcast_guard(ctx: Context) -> bool:
            # No Leaf guard: joining with stale children is allowed —
            # the key difference from the snap PIF.
            return self._own(ctx).pif is Phase.C and bool(self._potential(ctx))

        def broadcast_statement(ctx: Context) -> PifState:
            parent = self.join_parent(ctx)
            if parent is None:
                raise ProtocolError(
                    f"B-action at node {ctx.node} with empty potential set"
                )
            level = ctx.neighbor_state(parent).level + 1  # type: ignore[union-attr]
            return self._own(ctx).replace(
                pif=Phase.B, par=parent, level=level
            )

        def feedback_guard(ctx: Context) -> bool:
            own = self._own(ctx)
            return (
                own.pif is Phase.B
                and self._normal(ctx)
                and self._neighborhood_done(ctx)
            )

        def cleaning_guard(ctx: Context) -> bool:
            own = self._own(ctx)
            return (
                own.pif is Phase.F
                and self._normal(ctx)
                and self._leaf(ctx)
                and self._b_free(ctx)
            )

        def abnormal_b(ctx: Context) -> bool:
            return self._own(ctx).pif is Phase.B and not self._normal(ctx)

        def abnormal_f(ctx: Context) -> bool:
            return self._own(ctx).pif is Phase.F and not self._normal(ctx)

        return (
            Action("B-action", broadcast_guard, broadcast_statement),
            Action(
                "F-action",
                feedback_guard,
                lambda ctx: self._own(ctx).replace(pif=Phase.F),
            ),
            Action(
                "C-action",
                cleaning_guard,
                lambda ctx: self._own(ctx).replace(pif=Phase.C),
            ),
            Action(
                "B-correction",
                abnormal_b,
                lambda ctx: self._own(ctx).replace(pif=Phase.F),
                correction=True,
            ),
            Action(
                "F-correction",
                abnormal_f,
                lambda ctx: self._own(ctx).replace(pif=Phase.C),
                correction=True,
            ),
        )

    # ------------------------------------------------------------------
    # Columnar form
    # ------------------------------------------------------------------
    def columnar_spec(self) -> ColumnarSpec | None:
        """The baseline's guards in guard-expression IR.

        Reuses ``PIF_COLUMNS`` (``count``/``fok`` stay pinned — no
        action ever writes them).  Phase codes: B=0, F=1, C=2.
        """
        if type(self) is not SelfStabPif:
            return None
        B, F, C = 0, 1, 2
        is_b = Eq(Own("pif"), Const(B))
        is_f = Eq(Own("pif"), Const(F))
        is_c = Eq(Own("pif"), Const(C))
        all_c = NbrAll(Eq(Nbr("pif"), Const(C)))
        # Potential_p: broadcasting neighbors not pointing at p, below
        # the level cap (no Fok filter, no Leaf guard — the baseline).
        pot = And(
            Eq(Nbr("pif"), Const(B)),
            Ne(Nbr("par"), NodeId()),
            Lt(Nbr("level"), Const(self.l_max)),
        )
        # _neighborhood_done: every q is either p's parent, or active
        # (Pif ≠ C) and — when it designates p — already fed back.  The
        # root's par encodes as -1, which no neighbor id equals, so the
        # same formula serves both roles.
        done = NbrAll(
            Or(
                Eq(NbrId(), Own("par")),
                And(
                    Ne(Nbr("pif"), Const(C)),
                    Or(Ne(Nbr("par"), NodeId()), Eq(Nbr("pif"), Const(F))),
                ),
            )
        )
        leaf = Not(
            NbrExists(And(Ne(Nbr("pif"), Const(C)), Eq(Nbr("par"), NodeId())))
        )
        b_free = Not(NbrExists(Eq(Nbr("pif"), Const(B))))
        # GoodPif ∧ GoodLevel (trivially true in phase C).
        parent_pif = Ptr("par", "pif")
        normal = Or(
            is_c,
            And(
                Or(Eq(parent_pif, Own("pif")), Eq(parent_pif, Const(B))),
                Eq(Own("level"), Add(Ptr("par", "level"), Const(1))),
            ),
        )
        root_actions = (
            ActionSpec("B-action", And(is_c, all_c), {"pif": Const(B)}),
            ActionSpec("F-action", And(is_b, done), {"pif": Const(F)}),
            ActionSpec("C-action", And(is_f, all_c), {"pif": Const(C)}),
        )
        node_actions = (
            ActionSpec(
                "B-action",
                And(is_c, NbrExists(pot)),
                {
                    "pif": Const(B),
                    "par": NbrArgMinFirst(Nbr("level"), where=pot),
                    "level": Add(NbrMin(Nbr("level"), where=pot), Const(1)),
                },
            ),
            ActionSpec("F-action", And(is_b, normal, done), {"pif": Const(F)}),
            ActionSpec(
                "C-action",
                And(is_f, normal, leaf, b_free),
                {"pif": Const(C)},
            ),
            ActionSpec(
                "B-correction", And(is_b, Not(normal)), {"pif": Const(F)}
            ),
            ActionSpec(
                "F-correction", And(is_f, Not(normal)), {"pif": Const(C)}
            ),
        )
        root = self.root
        return ColumnarSpec(
            schema=PIF_COLUMNS,
            programs={"root": root_actions, "node": node_actions},
            roles=lambda p: "root" if p == root else "node",
            bulk_role="node",
        )

    # ------------------------------------------------------------------
    # Protocol interface
    # ------------------------------------------------------------------
    def actions(self, node: int, network: Network) -> Sequence[Action]:
        self._check_network(network)
        if node == self.root:
            return self._root_program
        return self._non_root_program

    def initial_state(self, node: int, network: Network) -> PifState:
        self._check_network(network)
        if node == self.root:
            return PifState(pif=Phase.C, par=None, level=0, count=1, fok=False)
        return PifState(
            pif=Phase.C,
            par=network.neighbors(node)[0],
            level=1,
            count=1,
            fok=False,
        )

    def random_state(self, node: int, network: Network, rng: Random) -> PifState:
        self._check_network(network)
        phase = rng.choice((Phase.B, Phase.F, Phase.C))
        if node == self.root:
            return PifState(pif=phase, par=None, level=0, count=1, fok=False)
        return PifState(
            pif=phase,
            par=rng.choice(network.neighbors(node)),
            level=rng.randint(1, self.l_max),
            count=1,
            fok=False,
        )

    def _check_network(self, network: Network) -> None:
        if network.n != self.n:
            raise ProtocolError(
                f"protocol configured for N={self.n} but network has "
                f"{network.n} processors"
            )
