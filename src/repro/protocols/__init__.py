"""Baseline protocols: the regimes the paper contrasts itself with."""

from repro.protocols.self_stab_pif import SelfStabPif
from repro.protocols.spanning_tree import SpanningTree, TreeState
from repro.protocols.tree_pif import TreePif, TreeWaveState

__all__ = [
    "SelfStabPif",
    "SpanningTree",
    "TreePif",
    "TreeState",
    "TreeWaveState",
]

from repro.protocols.tree_stack import StackState, TreeStackPif

__all__ += ["StackState", "TreeStackPif"]
