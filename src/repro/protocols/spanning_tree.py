"""Substrate for tree-based PIFs: a self-stabilizing BFS spanning tree.

All prior self-stabilizing PIFs for arbitrary networks except [12, 23]
assume an underlying *rooted spanning tree* built by a self-stabilizing
construction ([1, 3, 4, 11, 15] in the paper's bibliography).  This
module provides such a substrate in the classic Dolev–Israeli–Moran
style: every non-root processor repeatedly sets its distance to
``1 + min(dist of neighbors)`` and its parent to the (locally) smallest
neighbor achieving the minimum; the root pins ``dist = 0``.

The protocol is *silent*: it stabilizes to the unique BFS tree in
``O(diameter)`` rounds and then no action is enabled.  Experiment E11
measures this stabilization delay — the service gap between a tree-based
PIF (which cannot run correct waves before its tree is correct) and the
snap PIF (which needs no tree at all).
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import Sequence

from repro.columnar.expr import (
    ActionSpec,
    Add,
    ColumnarSpec,
    Const,
    Min2,
    Nbr,
    NbrArgMinFirst,
    NbrMin,
    Ne,
    Or,
    Own,
)
from repro.columnar.schema import ColumnField, ColumnSchema
from repro.core.state import decode_optional_node, encode_optional_node
from repro.errors import ProtocolError
from repro.runtime.network import Network
from repro.runtime.protocol import Action, Context, Protocol
from repro.runtime.state import Configuration, NodeState

__all__ = ["TREE_COLUMNS", "TreeState", "SpanningTree"]


@dataclass(frozen=True, slots=True)
class TreeState(NodeState):
    """BFS-tree state: distance estimate and parent pointer."""

    dist: int
    par: int | None


#: Columnar layout of :class:`TreeState` (``par = None`` encodes as -1).
TREE_COLUMNS = ColumnSchema(
    state_type=TreeState,
    fields=(
        ColumnField("dist"),
        ColumnField(
            "par", encode=encode_optional_node, decode=decode_optional_node
        ),
    ),
)


class SpanningTree(Protocol):
    """Self-stabilizing BFS spanning tree (Dolev–Israeli–Moran style)."""

    name = "spanning-tree"

    def __init__(self, root: int, n: int, dist_max: int | None = None) -> None:
        super().__init__()
        if n < 1:
            raise ProtocolError(f"N must be positive, got {n}")
        self.root = root
        self.n = n
        #: Distance cap — bounds garbage distances, must be ≥ N - 1.
        self.dist_max = dist_max if dist_max is not None else max(1, n - 1)

    # ------------------------------------------------------------------
    # Program
    # ------------------------------------------------------------------
    def _target(self, ctx: Context) -> TreeState:
        """The locally correct state: min neighbor distance + 1.

        The parent is the first neighbor in local order achieving the
        minimum; the distance saturates at ``dist_max``.
        """
        neighbor_dists = []
        for q, sq in ctx.neighbor_states():
            assert isinstance(sq, TreeState)
            neighbor_dists.append((q, sq.dist))
        if not neighbor_dists:
            # An isolated node (topology churn can strand one): no
            # neighbor to hang from, so saturate and drop the parent.
            return TreeState(dist=self.dist_max, par=None)
        best_dist = min(d for _q, d in neighbor_dists) + 1
        best_dist = min(best_dist, self.dist_max)
        best_par = next(
            q for q, d in neighbor_dists if min(d + 1, self.dist_max) == best_dist
        )
        return TreeState(dist=best_dist, par=best_par)

    def actions(self, node: int, network: Network) -> Sequence[Action]:
        self._check_network(network)
        if node == self.root:

            def root_guard(ctx: Context) -> bool:
                state = ctx.state
                assert isinstance(state, TreeState)
                return state.dist != 0 or state.par is not None

            return (
                Action(
                    "Fix-root",
                    root_guard,
                    lambda ctx: TreeState(dist=0, par=None),
                    correction=True,
                ),
            )

        def guard(ctx: Context) -> bool:
            state = ctx.state
            assert isinstance(state, TreeState)
            return self._target(ctx) != state

        return (Action("Recompute", guard, self._target),)

    # ------------------------------------------------------------------
    # Columnar form
    # ------------------------------------------------------------------
    def columnar_spec(self) -> ColumnarSpec | None:
        """Dolev–Israeli–Moran in guard-expression IR.

        ``min_q min(dist_q + 1, dist_max) = min(min_q dist_q + 1,
        dist_max)``, and the first neighbor achieving the saturated
        minimum is exactly :meth:`_target`'s parent choice, so the
        target state is one ``NbrMin`` and one ``NbrArgMinFirst`` over
        the saturated per-neighbor distances.  An isolated node folds
        over nothing: ``NbrMin`` falls back to ``dist_max`` and
        ``NbrArgMinFirst`` yields ``-1`` (= no parent), matching
        :meth:`_target`.
        """
        if type(self) is not SpanningTree:
            return None
        dist_max = Const(self.dist_max)
        tgt_dist = Min2(
            Add(NbrMin(Nbr("dist"), default=dist_max), Const(1)), dist_max
        )
        tgt_par = NbrArgMinFirst(Min2(Add(Nbr("dist"), Const(1)), dist_max))
        node_actions = (
            ActionSpec(
                "Recompute",
                Or(Ne(Own("dist"), tgt_dist), Ne(Own("par"), tgt_par)),
                {"dist": tgt_dist, "par": tgt_par},
            ),
        )
        root_actions = (
            ActionSpec(
                "Fix-root",
                Or(Ne(Own("dist"), Const(0)), Ne(Own("par"), Const(-1))),
                {"dist": Const(0), "par": Const(-1)},
            ),
        )
        root = self.root
        return ColumnarSpec(
            schema=TREE_COLUMNS,
            programs={"root": root_actions, "node": node_actions},
            roles=lambda p: "root" if p == root else "node",
            bulk_role="node",
        )

    def initial_state(self, node: int, network: Network) -> TreeState:
        self._check_network(network)
        if node == self.root:
            return TreeState(dist=0, par=None)
        return TreeState(dist=self.dist_max, par=network.neighbors(node)[0])

    def random_state(self, node: int, network: Network, rng: Random) -> TreeState:
        self._check_network(network)
        if node == self.root:
            # The root's variables can be corrupted too; Fix-root repairs them.
            return TreeState(
                dist=rng.randint(0, self.dist_max),
                par=rng.choice((None, *network.neighbors(node))),
            )
        return TreeState(
            dist=rng.randint(0, self.dist_max),
            par=rng.choice(network.neighbors(node)),
        )

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def is_stabilized(self, configuration: Configuration, network: Network) -> bool:
        """True when the configuration is the exact BFS tree (terminal)."""
        levels = network.bfs_levels(self.root)
        for p in network.nodes:
            state = configuration[p]
            assert isinstance(state, TreeState)
            if state.dist != levels[p]:
                return False
            if p == self.root:
                if state.par is not None:
                    return False
            else:
                assert state.par is not None
                parent_state = configuration[state.par]
                assert isinstance(parent_state, TreeState)
                if parent_state.dist != state.dist - 1:
                    return False
        return True

    def parent_map(self, configuration: Configuration) -> dict[int, int | None]:
        """Extract the tree as ``{node: parent}`` (for the tree PIF)."""
        result: dict[int, int | None] = {}
        for node, state in enumerate(configuration):
            assert isinstance(state, TreeState)
            result[node] = state.par
        return result

    def _check_network(self, network: Network) -> None:
        if network.n != self.n:
            raise ProtocolError(
                f"protocol configured for N={self.n} but network has "
                f"{network.n} processors"
            )
