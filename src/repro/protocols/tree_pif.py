"""Baseline: a PIF wave over a pre-constructed rooted spanning tree.

The prior-art regime the paper improves on (Related Work: [7, 8, 9, 16,
18] all assume trees): the wave itself is the classic three-phase
``C → B → F → C`` tree wave — snap-stabilizing *on a correct tree* in
the spirit of [9] (whose text is unavailable offline; documented
substitution, DESIGN.md §2) — but it requires the tree as an **input**.
On an arbitrary network that input must come from a self-stabilizing
spanning-tree construction (:mod:`repro.protocols.spanning_tree`), and
until that substrate has stabilized the waves are meaningless: that
service gap is what experiment E11 measures, and what the snap PIF
eliminates.

The tree is given as a parent map; the network is only used to check
that tree edges are real communication links (a tree-based PIF can only
exchange information along its tree).
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import Mapping, Sequence

from repro.core.state import Phase
from repro.errors import ProtocolError, TopologyError
from repro.runtime.network import Network
from repro.runtime.protocol import Action, Context, Protocol
from repro.runtime.state import NodeState

__all__ = ["TreeWaveState", "TreePif"]


@dataclass(frozen=True, slots=True)
class TreeWaveState(NodeState):
    """Wave phase of one processor (the tree structure is static input)."""

    pif: Phase


class TreePif(Protocol):
    """Three-phase PIF wave over a fixed rooted spanning tree.

    Parameters
    ----------
    root:
        The initiator.
    parents:
        ``{node: parent}`` with ``parents[root] is None``; every edge
        must exist in the network the protocol runs on.
    """

    name = "tree-pif"

    def __init__(self, root: int, parents: Mapping[int, int | None]) -> None:
        super().__init__()
        self.root = root
        self.parents = dict(parents)
        if self.parents.get(root, "missing") is not None:
            raise ProtocolError(f"parents[{root}] must be None (the root)")
        self.children: dict[int, tuple[int, ...]] = {
            p: tuple(
                q for q, par in sorted(self.parents.items()) if par == p
            )
            for p in self.parents
        }
        self._validate_tree()

    def _validate_tree(self) -> None:
        # Every non-root node must reach the root through parent pointers.
        for node in self.parents:
            seen = set()
            cursor: int | None = node
            while cursor is not None and cursor != self.root:
                if cursor in seen:
                    raise ProtocolError(
                        f"parent map contains a cycle through {cursor}"
                    )
                seen.add(cursor)
                cursor = self.parents[cursor]
            if cursor is None and node != self.root:
                raise ProtocolError(
                    f"node {node} does not reach the root in the parent map"
                )

    # ------------------------------------------------------------------
    # Program
    # ------------------------------------------------------------------
    @staticmethod
    def _own(ctx: Context) -> TreeWaveState:
        state = ctx.state
        assert isinstance(state, TreeWaveState)
        return state

    def _phase_of(self, ctx: Context, node: int) -> Phase:
        state = ctx.configuration[node]
        assert isinstance(state, TreeWaveState)
        return state.pif

    def _children_all(self, ctx: Context, node: int, phase: Phase) -> bool:
        return all(
            self._phase_of(ctx, c) is phase for c in self.children[node]
        )

    def actions(self, node: int, network: Network) -> Sequence[Action]:
        self._check_network(network)

        if node == self.root:

            def broadcast_guard(ctx: Context) -> bool:
                return self._own(ctx).pif is Phase.C and self._children_all(
                    ctx, node, Phase.C
                )

            def feedback_guard(ctx: Context) -> bool:
                return self._own(ctx).pif is Phase.B and self._children_all(
                    ctx, node, Phase.F
                )

            def cleaning_guard(ctx: Context) -> bool:
                return self._own(ctx).pif is Phase.F

            return (
                Action(
                    "B-action",
                    broadcast_guard,
                    lambda ctx: TreeWaveState(Phase.B),
                ),
                Action(
                    "F-action",
                    feedback_guard,
                    lambda ctx: TreeWaveState(Phase.F),
                ),
                Action(
                    "C-action",
                    cleaning_guard,
                    lambda ctx: TreeWaveState(Phase.C),
                ),
            )

        parent = self.parents[node]
        assert parent is not None

        def join_guard(ctx: Context) -> bool:
            return (
                self._own(ctx).pif is Phase.C
                and self._phase_of(ctx, parent) is Phase.B
                and self._children_all(ctx, node, Phase.C)
            )

        def feedback_guard(ctx: Context) -> bool:
            return self._own(ctx).pif is Phase.B and self._children_all(
                ctx, node, Phase.F
            )

        def cleaning_guard(ctx: Context) -> bool:
            # Top-down cleaning: reset once the parent has been cleaned,
            # so a fresh parent B unambiguously means a *new* wave.
            return (
                self._own(ctx).pif is Phase.F
                and self._phase_of(ctx, parent) is Phase.C
            )

        def correction_guard(ctx: Context) -> bool:
            # Local consistency with the parent (GoodPif on the tree):
            # B requires the parent to be B; F requires B or F.
            own = self._own(ctx).pif
            parent_phase = self._phase_of(ctx, parent)
            if own is Phase.B and parent_phase is not Phase.B:
                return True
            if own is Phase.F and parent_phase is Phase.C:
                # handled by C-action (top-down cleaning), not an error
                return False
            return False

        return (
            Action("B-action", join_guard, lambda ctx: TreeWaveState(Phase.B)),
            Action(
                "F-action", feedback_guard, lambda ctx: TreeWaveState(Phase.F)
            ),
            Action(
                "C-action", cleaning_guard, lambda ctx: TreeWaveState(Phase.C)
            ),
            Action(
                "B-correction",
                correction_guard,
                lambda ctx: TreeWaveState(Phase.F),
                correction=True,
            ),
        )

    def initial_state(self, node: int, network: Network) -> TreeWaveState:
        self._check_network(network)
        return TreeWaveState(Phase.C)

    def random_state(
        self, node: int, network: Network, rng: Random
    ) -> TreeWaveState:
        self._check_network(network)
        return TreeWaveState(rng.choice((Phase.B, Phase.F, Phase.C)))

    # ------------------------------------------------------------------
    # Monitor hook
    # ------------------------------------------------------------------
    def join_parent(self, ctx: Context) -> int | None:
        """The (fixed) parent a joining node receives the wave from."""
        return self.parents[ctx.node]

    def _check_network(self, network: Network) -> None:
        if set(self.parents) != set(network.nodes):
            raise ProtocolError(
                "parent map does not cover exactly the network's nodes"
            )
        for node, parent in self.parents.items():
            if parent is not None and not network.has_edge(node, parent):
                raise TopologyError(
                    f"tree edge {node}-{parent} is not a network link"
                )
