"""Baseline: a PIF wave over a pre-constructed rooted spanning tree.

The prior-art regime the paper improves on (Related Work: [7, 8, 9, 16,
18] all assume trees): the wave itself is the classic three-phase
``C → B → F → C`` tree wave — snap-stabilizing *on a correct tree* in
the spirit of [9] (whose text is unavailable offline; documented
substitution, DESIGN.md §2) — but it requires the tree as an **input**.
On an arbitrary network that input must come from a self-stabilizing
spanning-tree construction (:mod:`repro.protocols.spanning_tree`), and
until that substrate has stabilized the waves are meaningless: that
service gap is what experiment E11 measures, and what the snap PIF
eliminates.

The tree is given as a parent map; the network is only used to check
that tree edges are real communication links (a tree-based PIF can only
exchange information along its tree).
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import Mapping, Sequence
from weakref import WeakSet

from repro.columnar.expr import (
    ActionSpec,
    And,
    ColumnarSpec,
    Const,
    Eq,
    Nbr,
    NbrAll,
    Ne,
    NodeId,
    Or,
    Own,
    Ptr,
)
from repro.columnar.schema import ColumnField, ColumnSchema
from repro.core.state import PHASE_BY_CODE, PHASE_CODES, Phase, encode_optional_node
from repro.errors import ProtocolError, TopologyError
from repro.runtime.network import Network
from repro.runtime.protocol import Action, Context, Protocol
from repro.runtime.state import NodeState

__all__ = ["TREE_WAVE_COLUMNS", "TreeWaveState", "TreePif"]


@dataclass(frozen=True, slots=True)
class TreeWaveState(NodeState):
    """Wave phase of one processor (the tree structure is static input)."""

    pif: Phase


#: Columnar layout of :class:`TreeWaveState` — the wave phase is the
#: only dynamic variable; the tree itself rides along as a static
#: ``tree_par`` column (see :meth:`TreePif.columnar_spec`).
TREE_WAVE_COLUMNS = ColumnSchema(
    state_type=TreeWaveState,
    fields=(
        ColumnField(
            "pif",
            typecode="b",
            encode=PHASE_CODES.__getitem__,
            decode=PHASE_BY_CODE.__getitem__,
        ),
    ),
)


class TreePif(Protocol):
    """Three-phase PIF wave over a fixed rooted spanning tree.

    Parameters
    ----------
    root:
        The initiator.
    parents:
        ``{node: parent}`` with ``parents[root] is None``; every edge
        must exist in the network the protocol runs on.
    """

    name = "tree-pif"

    def __init__(self, root: int, parents: Mapping[int, int | None]) -> None:
        super().__init__()
        self.root = root
        self.parents = dict(parents)
        if self.parents.get(root, "missing") is not None:
            raise ProtocolError(f"parents[{root}] must be None (the root)")
        # Single pass (the old per-node scan was O(N²) and dominated
        # construction for benchmark-sized trees).
        child_lists: dict[int, list[int]] = {p: [] for p in self.parents}
        for q in sorted(self.parents):
            par = self.parents[q]
            if par is not None and par in child_lists:
                child_lists[par].append(q)
        self.children: dict[int, tuple[int, ...]] = {
            p: tuple(c) for p, c in child_lists.items()
        }
        self._validate_tree()

    def _validate_tree(self) -> None:
        # Every non-root node must reach the root through parent
        # pointers.  Nodes proven to reach the root are shared across
        # walks, so the whole validation is O(N) instead of O(N·depth).
        verified: set[int] = set()
        for node in self.parents:
            seen: set[int] = set()
            path: list[int] = []
            cursor: int | None = node
            while (
                cursor is not None
                and cursor != self.root
                and cursor not in verified
            ):
                if cursor in seen:
                    raise ProtocolError(
                        f"parent map contains a cycle through {cursor}"
                    )
                seen.add(cursor)
                path.append(cursor)
                cursor = self.parents[cursor]
            if cursor is None and node != self.root:
                raise ProtocolError(
                    f"node {node} does not reach the root in the parent map"
                )
            verified.update(path)

    # ------------------------------------------------------------------
    # Program
    # ------------------------------------------------------------------
    @staticmethod
    def _own(ctx: Context) -> TreeWaveState:
        state = ctx.state
        assert isinstance(state, TreeWaveState)
        return state

    def _phase_of(self, ctx: Context, node: int) -> Phase:
        state = ctx.configuration[node]
        assert isinstance(state, TreeWaveState)
        return state.pif

    def _children_all(self, ctx: Context, node: int, phase: Phase) -> bool:
        return all(
            self._phase_of(ctx, c) is phase for c in self.children[node]
        )

    def actions(self, node: int, network: Network) -> Sequence[Action]:
        self._check_network(network)

        if node == self.root:

            def broadcast_guard(ctx: Context) -> bool:
                return self._own(ctx).pif is Phase.C and self._children_all(
                    ctx, node, Phase.C
                )

            def feedback_guard(ctx: Context) -> bool:
                return self._own(ctx).pif is Phase.B and self._children_all(
                    ctx, node, Phase.F
                )

            def cleaning_guard(ctx: Context) -> bool:
                return self._own(ctx).pif is Phase.F

            return (
                Action(
                    "B-action",
                    broadcast_guard,
                    lambda ctx: TreeWaveState(Phase.B),
                ),
                Action(
                    "F-action",
                    feedback_guard,
                    lambda ctx: TreeWaveState(Phase.F),
                ),
                Action(
                    "C-action",
                    cleaning_guard,
                    lambda ctx: TreeWaveState(Phase.C),
                ),
            )

        parent = self.parents[node]
        assert parent is not None

        def join_guard(ctx: Context) -> bool:
            return (
                self._own(ctx).pif is Phase.C
                and self._phase_of(ctx, parent) is Phase.B
                and self._children_all(ctx, node, Phase.C)
            )

        def feedback_guard(ctx: Context) -> bool:
            return self._own(ctx).pif is Phase.B and self._children_all(
                ctx, node, Phase.F
            )

        def cleaning_guard(ctx: Context) -> bool:
            # Top-down cleaning: reset once the parent has been cleaned,
            # so a fresh parent B unambiguously means a *new* wave.
            return (
                self._own(ctx).pif is Phase.F
                and self._phase_of(ctx, parent) is Phase.C
            )

        def correction_guard(ctx: Context) -> bool:
            # Local consistency with the parent (GoodPif on the tree):
            # B requires the parent to be B; F requires B or F.
            own = self._own(ctx).pif
            parent_phase = self._phase_of(ctx, parent)
            if own is Phase.B and parent_phase is not Phase.B:
                return True
            if own is Phase.F and parent_phase is Phase.C:
                # handled by C-action (top-down cleaning), not an error
                return False
            return False

        return (
            Action("B-action", join_guard, lambda ctx: TreeWaveState(Phase.B)),
            Action(
                "F-action", feedback_guard, lambda ctx: TreeWaveState(Phase.F)
            ),
            Action(
                "C-action", cleaning_guard, lambda ctx: TreeWaveState(Phase.C)
            ),
            Action(
                "B-correction",
                correction_guard,
                lambda ctx: TreeWaveState(Phase.F),
                correction=True,
            ),
        )

    # ------------------------------------------------------------------
    # Columnar form
    # ------------------------------------------------------------------
    def columnar_spec(self) -> ColumnarSpec | None:
        """The tree wave in guard-expression IR.

        The fixed tree enters as a static ``tree_par`` column (the
        root's ``None`` encodes as ``-1``).  Every tree edge is a
        network link (checked by :meth:`_check_network`), so "children
        of p" is exactly "neighbors q with ``tree_par_q = p``" and the
        per-child conjunctions become neighborhood folds.
        """
        if type(self) is not TreePif:
            return None
        B, F, C = 0, 1, 2
        is_b = Eq(Own("pif"), Const(B))
        is_f = Eq(Own("pif"), Const(F))
        is_c = Eq(Own("pif"), Const(C))

        def ch_all(phase: int) -> NbrAll:
            return NbrAll(
                Or(
                    Ne(Nbr("tree_par"), NodeId()),
                    Eq(Nbr("pif"), Const(phase)),
                )
            )

        parent_pif = Ptr("tree_par", "pif")
        root_actions = (
            ActionSpec("B-action", And(is_c, ch_all(C)), {"pif": Const(B)}),
            ActionSpec("F-action", And(is_b, ch_all(F)), {"pif": Const(F)}),
            ActionSpec("C-action", is_f, {"pif": Const(C)}),
        )
        node_actions = (
            ActionSpec(
                "B-action",
                And(is_c, Eq(parent_pif, Const(B)), ch_all(C)),
                {"pif": Const(B)},
            ),
            ActionSpec("F-action", And(is_b, ch_all(F)), {"pif": Const(F)}),
            ActionSpec(
                "C-action",
                And(is_f, Eq(parent_pif, Const(C))),
                {"pif": Const(C)},
            ),
            ActionSpec(
                "B-correction",
                And(is_b, Ne(parent_pif, Const(B))),
                {"pif": Const(F)},
            ),
        )
        parents = self.parents
        root = self.root
        return ColumnarSpec(
            schema=TREE_WAVE_COLUMNS,
            programs={"root": root_actions, "node": node_actions},
            roles=lambda p: "root" if p == root else "node",
            bulk_role="node",
            statics={
                "tree_par": lambda net: [
                    encode_optional_node(parents[p]) for p in range(net.n)
                ]
            },
        )

    def initial_state(self, node: int, network: Network) -> TreeWaveState:
        self._check_network(network)
        return TreeWaveState(Phase.C)

    def random_state(
        self, node: int, network: Network, rng: Random
    ) -> TreeWaveState:
        self._check_network(network)
        return TreeWaveState(rng.choice((Phase.B, Phase.F, Phase.C)))

    # ------------------------------------------------------------------
    # Monitor hook
    # ------------------------------------------------------------------
    def join_parent(self, ctx: Context) -> int | None:
        """The (fixed) parent a joining node receives the wave from."""
        return self.parents[ctx.node]

    def _check_network(self, network: Network) -> None:
        # O(N) per network, not per actions() call: node_actions() hits
        # this once per node, which would otherwise cost O(N²) on
        # benchmark-sized trees.  Protocols never cross the pickle
        # boundary (workers rebuild from factories), so a WeakSet memo
        # on the instance is safe.
        checked = self.__dict__.get("_checked_networks")
        if checked is None:
            checked = self.__dict__["_checked_networks"] = WeakSet()
        if network in checked:
            return
        if set(self.parents) != set(network.nodes):
            raise ProtocolError(
                "parent map does not cover exactly the network's nodes"
            )
        for node, parent in self.parents.items():
            if parent is not None and not network.has_edge(node, parent):
                raise TopologyError(
                    f"tree edge {node}-{parent} is not a network link"
                )
        checked.add(network)
