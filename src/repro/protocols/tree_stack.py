"""The full prior-art stack: spanning-tree construction *under* a tree PIF.

:mod:`repro.protocols.tree_pif` takes the tree as a frozen input; real
tree-based self-stabilizing PIFs run *on top of a live, self-stabilizing
spanning-tree layer* (fair composition).  This module implements that
stack as one protocol — the wave layer reads the tree layer's *current*
parent pointers, which is exactly what makes the stack only
self-stabilizing and not snap:

while the tree layer is still stabilizing, the wave layer happily runs
waves over a wrong forest; those waves can complete at the root without
reaching every processor.  Experiment E11 measures this window against
the snap PIF, which has no substrate to wait for.

The per-node state stacks the BFS-tree variables (``dist``, ``par``)
with the wave phase; tree actions are named ``Tree-…`` and wave actions
keep the canonical ``B-action``/``F-action``/``C-action`` names so the
:class:`~repro.core.monitor.PifCycleMonitor` applies unchanged (its
``join_parent`` hook reports the tree parent the wave was accepted
from).
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import Sequence

from repro.core.state import Phase
from repro.errors import ProtocolError
from repro.runtime.network import Network
from repro.runtime.protocol import Action, Context, Protocol
from repro.runtime.state import NodeState

__all__ = ["StackState", "TreeStackPif"]


@dataclass(frozen=True, slots=True)
class StackState(NodeState):
    """BFS-tree variables plus the wave phase."""

    dist: int
    par: int | None
    wave: Phase


class TreeStackPif(Protocol):
    """Self-stabilizing spanning tree with a tree PIF wave layered on top."""

    name = "tree-stack-pif"

    def __init__(self, root: int, n: int, dist_max: int | None = None) -> None:
        super().__init__()
        if n < 1:
            raise ProtocolError(f"N must be positive, got {n}")
        self.root = root
        self.n = n
        self.dist_max = dist_max if dist_max is not None else max(1, n - 1)

    # ------------------------------------------------------------------
    # State helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _own(ctx: Context) -> StackState:
        state = ctx.state
        assert isinstance(state, StackState)
        return state

    @staticmethod
    def _state_of(ctx: Context, node: int) -> StackState:
        state = ctx.configuration[node]
        assert isinstance(state, StackState)
        return state

    def _children(self, ctx: Context) -> list[int]:
        """Neighbors whose *current* tree parent is this node."""
        return [
            q
            for q, sq in ctx.neighbor_states()
            if isinstance(sq, StackState) and sq.par == ctx.node
        ]

    def _children_all(self, ctx: Context, phase: Phase) -> bool:
        return all(
            self._state_of(ctx, q).wave is phase for q in self._children(ctx)
        )

    # ------------------------------------------------------------------
    # Tree layer (same rule as repro.protocols.spanning_tree)
    # ------------------------------------------------------------------
    def _tree_target(self, ctx: Context) -> tuple[int, int]:
        dists = [
            (q, self._state_of(ctx, q).dist) for q in ctx.neighbors
        ]
        best = min(min(d + 1, self.dist_max) for _q, d in dists)
        par = next(q for q, d in dists if min(d + 1, self.dist_max) == best)
        return best, par

    # ------------------------------------------------------------------
    # Protocol interface
    # ------------------------------------------------------------------
    def actions(self, node: int, network: Network) -> Sequence[Action]:
        self._check_network(network)

        if node == self.root:

            def fix_root_guard(ctx: Context) -> bool:
                own = self._own(ctx)
                return own.dist != 0 or own.par is not None

            def broadcast_guard(ctx: Context) -> bool:
                return self._own(ctx).wave is Phase.C and self._children_all(
                    ctx, Phase.C
                )

            def feedback_guard(ctx: Context) -> bool:
                return self._own(ctx).wave is Phase.B and self._children_all(
                    ctx, Phase.F
                )

            return (
                Action(
                    "Tree-fix-root",
                    fix_root_guard,
                    lambda ctx: self._own(ctx).replace(dist=0, par=None),
                    correction=True,
                ),
                Action(
                    "B-action",
                    broadcast_guard,
                    lambda ctx: self._own(ctx).replace(wave=Phase.B),
                ),
                Action(
                    "F-action",
                    feedback_guard,
                    lambda ctx: self._own(ctx).replace(wave=Phase.F),
                ),
                Action(
                    "C-action",
                    lambda ctx: self._own(ctx).wave is Phase.F,
                    lambda ctx: self._own(ctx).replace(wave=Phase.C),
                ),
            )

        def recompute_guard(ctx: Context) -> bool:
            own = self._own(ctx)
            return self._tree_target(ctx) != (own.dist, own.par)

        def recompute(ctx: Context) -> StackState:
            dist, par = self._tree_target(ctx)
            return self._own(ctx).replace(dist=dist, par=par)

        def parent_wave(ctx: Context) -> Phase | None:
            own = self._own(ctx)
            if own.par is None:
                return None
            return self._state_of(ctx, own.par).wave

        def join_guard(ctx: Context) -> bool:
            return (
                self._own(ctx).wave is Phase.C
                and parent_wave(ctx) is Phase.B
                and self._children_all(ctx, Phase.C)
            )

        def feedback_guard(ctx: Context) -> bool:
            return self._own(ctx).wave is Phase.B and self._children_all(
                ctx, Phase.F
            )

        def cleaning_guard(ctx: Context) -> bool:
            return (
                self._own(ctx).wave is Phase.F
                and parent_wave(ctx) is Phase.C
            )

        def correction_guard(ctx: Context) -> bool:
            # A broadcasting node whose (current) parent no longer
            # broadcasts is inconsistent.
            return (
                self._own(ctx).wave is Phase.B
                and parent_wave(ctx) is not Phase.B
            )

        return (
            Action("Tree-recompute", recompute_guard, recompute),
            Action(
                "B-action",
                join_guard,
                lambda ctx: self._own(ctx).replace(wave=Phase.B),
            ),
            Action(
                "F-action",
                feedback_guard,
                lambda ctx: self._own(ctx).replace(wave=Phase.F),
            ),
            Action(
                "C-action",
                cleaning_guard,
                lambda ctx: self._own(ctx).replace(wave=Phase.C),
            ),
            Action(
                "B-correction",
                correction_guard,
                lambda ctx: self._own(ctx).replace(wave=Phase.F),
                correction=True,
            ),
        )

    def initial_state(self, node: int, network: Network) -> StackState:
        self._check_network(network)
        if node == self.root:
            return StackState(dist=0, par=None, wave=Phase.C)
        return StackState(
            dist=self.dist_max,
            par=network.neighbors(node)[0],
            wave=Phase.C,
        )

    def random_state(
        self, node: int, network: Network, rng: Random
    ) -> StackState:
        self._check_network(network)
        wave = rng.choice((Phase.B, Phase.F, Phase.C))
        if node == self.root:
            return StackState(
                dist=rng.randint(0, self.dist_max),
                par=rng.choice((None, *network.neighbors(node))),
                wave=wave,
            )
        return StackState(
            dist=rng.randint(0, self.dist_max),
            par=rng.choice(network.neighbors(node)),
            wave=wave,
        )

    # ------------------------------------------------------------------
    # Monitor hook and diagnostics
    # ------------------------------------------------------------------
    def join_parent(self, ctx: Context) -> int | None:
        """The (current) tree parent a joining node accepts the wave from."""
        return self._own(ctx).par

    def tree_is_correct(self, configuration, network: Network) -> bool:
        """Whether the tree layer currently is the exact BFS tree."""
        levels = network.bfs_levels(self.root)
        for p in network.nodes:
            state = configuration[p]
            assert isinstance(state, StackState)
            if state.dist != levels[p]:
                return False
            if p == self.root:
                if state.par is not None:
                    return False
            elif state.par is None or levels[state.par] != levels[p] - 1:
                return False
        return True

    def _check_network(self, network: Network) -> None:
        if network.n != self.n:
            raise ProtocolError(
                f"protocol configured for N={self.n} but network has "
                f"{network.n} processors"
            )
